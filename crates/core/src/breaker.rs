//! Per-device circuit breakers: cordon a flapping device before it burns
//! more jobs.
//!
//! Each device gets a classic three-state breaker:
//!
//! ```text
//!             too many failures                    open_ticks elapse
//!   Closed ──────────────────────────→ Open ──────────────────────────→
//!      ↑                                 ↑                      HalfOpen
//!      │   probe_jobs successes          │    any probe failure     │
//!      └─────────────────────────────────┴──────────────────────────┘
//! ```
//!
//! A breaker trips either on `consecutive_failures` failures in a row or
//! when the failure rate over the last `window` outcomes reaches
//! `failure_rate`. While `Open` the device is cordoned — the scheduler will
//! not bind new work to it. After `open_ticks` virtual-time ticks the
//! breaker moves to `HalfOpen` and the device is uncordoned on probation:
//! `probe_jobs` consecutive successes close it again, any failure re-trips
//! it immediately.
//!
//! Everything here is integer- and tick-driven — no randomness — so breaker
//! trips replay byte-identically from the journal after a crash. The board
//! also contributes a *health penalty* to each device's
//! [`qrio_meta::DeviceTelemetry`], letting ranking strategies steer work
//! away from recently-flaky devices even after the breaker closes.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Thresholds shared by every device breaker on a board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Trip after this many consecutive failures (0 disables this trigger).
    pub consecutive_failures: u32,
    /// Trip when the failure rate over the last `window` outcomes reaches
    /// this fraction (`1.1` or any value above 1 effectively disables it).
    pub failure_rate: f64,
    /// Number of recent outcomes the failure rate is computed over; the
    /// rate trigger only fires once the window is full.
    pub window: u32,
    /// Virtual-time ticks an `Open` breaker waits before probing.
    pub open_ticks: u64,
    /// Consecutive successes required in `HalfOpen` to close the breaker.
    pub probe_jobs: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            consecutive_failures: 3,
            failure_rate: 0.6,
            window: 8,
            open_ticks: 10,
            probe_jobs: 2,
        }
    }
}

/// The state of one device's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: work flows normally.
    Closed,
    /// Tripped: the device is cordoned until the given virtual tick.
    Open {
        /// First tick at which the breaker may move to `HalfOpen`.
        until: u64,
    },
    /// Probation: the device takes work again; `successes` probes have
    /// passed so far.
    HalfOpen {
        /// Consecutive successful probes observed so far.
        successes: u32,
    },
}

impl BreakerState {
    /// The state's name, for events and reports.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen { .. } => "half-open",
        }
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One breaker transition, appended to the board's event log.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerEvent {
    /// Virtual tick of the transition.
    pub at: u64,
    /// The device whose breaker transitioned.
    pub device: String,
    /// State before the transition.
    pub from: BreakerState,
    /// State after the transition.
    pub to: BreakerState,
    /// Why (trip cause, probe verdict, timer expiry).
    pub reason: String,
}

/// One device's breaker: state plus the outcome bookkeeping that drives it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DeviceBreaker {
    pub(crate) state: BreakerState,
    /// Recent outcomes, `true` = failure, newest last; capped at `window`.
    pub(crate) outcomes: VecDeque<bool>,
    /// Current run of consecutive failures.
    pub(crate) consecutive: u32,
    /// Total number of times this breaker has tripped.
    pub(crate) trips: u64,
}

impl DeviceBreaker {
    fn new() -> Self {
        DeviceBreaker {
            state: BreakerState::Closed,
            outcomes: VecDeque::new(),
            consecutive: 0,
            trips: 0,
        }
    }

    fn push_outcome(&mut self, failed: bool, window: u32) {
        self.outcomes.push_back(failed);
        while self.outcomes.len() > window as usize {
            self.outcomes.pop_front();
        }
        if failed {
            self.consecutive += 1;
        } else {
            self.consecutive = 0;
        }
    }

    fn failure_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let failures = self.outcomes.iter().filter(|f| **f).count();
        failures as f64 / self.outcomes.len() as f64
    }
}

/// What the board wants the orchestrator to do to a device after an
/// outcome or a tick was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerAction {
    /// The breaker tripped: cordon the device.
    Cordon,
    /// The breaker closed or started probing: uncordon the device.
    Uncordon,
}

/// The fleet-wide breaker board: one per-device breaker plus the
/// transition log.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerBoard {
    pub(crate) config: BreakerConfig,
    pub(crate) breakers: BTreeMap<String, DeviceBreaker>,
    pub(crate) events: Vec<BreakerEvent>,
}

impl BreakerBoard {
    /// A board with the given thresholds and no devices yet (devices appear
    /// lazily on their first recorded outcome).
    pub fn new(config: BreakerConfig) -> Self {
        BreakerBoard {
            config,
            breakers: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// The board's thresholds.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// The transition log, oldest first.
    pub fn events(&self) -> &[BreakerEvent] {
        &self.events
    }

    /// The current state of a device's breaker (`Closed` if the device has
    /// never reported an outcome).
    pub fn state(&self, device: &str) -> BreakerState {
        self.breakers
            .get(device)
            .map_or(BreakerState::Closed, |b| b.state)
    }

    /// How many times the device's breaker has tripped.
    pub fn trip_count(&self, device: &str) -> u64 {
        self.breakers.get(device).map_or(0, |b| b.trips)
    }

    /// Total trips across the fleet.
    pub fn total_trips(&self) -> u64 {
        self.breakers.values().map(|b| b.trips).sum()
    }

    /// The health penalty the device contributes to its telemetry: `1.0`
    /// while open (cordoned), `0.5` on probation, and while closed the
    /// fraction of recent outcomes that failed.
    pub fn health_penalty(&self, device: &str) -> f64 {
        match self.breakers.get(device) {
            None => 0.0,
            Some(b) => match b.state {
                BreakerState::Open { .. } => 1.0,
                BreakerState::HalfOpen { .. } => 0.5,
                BreakerState::Closed => b.failure_rate(),
            },
        }
    }

    fn transition(&mut self, device: &str, at: u64, to: BreakerState, reason: String) {
        let breaker = self
            .breakers
            .get_mut(device)
            .expect("transitioned breakers exist");
        let from = breaker.state;
        breaker.state = to;
        if matches!(to, BreakerState::Open { .. }) {
            breaker.trips += 1;
        }
        self.events.push(BreakerEvent {
            at,
            device: device.to_string(),
            from,
            to,
            reason,
        });
    }

    /// Record one execution outcome for a device at the given tick.
    /// Returns the action (cordon / uncordon) the caller must apply, if any.
    pub fn record_outcome(&mut self, device: &str, failed: bool, at: u64) -> Option<BreakerAction> {
        let config = self.config;
        let breaker = self
            .breakers
            .entry(device.to_string())
            .or_insert_with(DeviceBreaker::new);
        match breaker.state {
            BreakerState::Closed => {
                breaker.push_outcome(failed, config.window);
                if !failed {
                    return None;
                }
                let run_trip = config.consecutive_failures > 0
                    && breaker.consecutive >= config.consecutive_failures;
                let rate_trip = breaker.outcomes.len() >= config.window as usize
                    && breaker.failure_rate() >= config.failure_rate;
                if run_trip || rate_trip {
                    let cause = if run_trip {
                        format!("{} consecutive failures", breaker.consecutive)
                    } else {
                        format!(
                            "failure rate {:.2} over the last {} jobs",
                            breaker.failure_rate(),
                            breaker.outcomes.len()
                        )
                    };
                    let until = at.saturating_add(config.open_ticks);
                    self.transition(device, at, BreakerState::Open { until }, cause);
                    return Some(BreakerAction::Cordon);
                }
                None
            }
            BreakerState::HalfOpen { successes } => {
                breaker.push_outcome(failed, config.window);
                if failed {
                    let until = at.saturating_add(config.open_ticks);
                    self.transition(
                        device,
                        at,
                        BreakerState::Open { until },
                        "probe failed".to_string(),
                    );
                    Some(BreakerAction::Cordon)
                } else if successes + 1 >= config.probe_jobs {
                    self.transition(
                        device,
                        at,
                        BreakerState::Closed,
                        format!("{} probes passed", successes + 1),
                    );
                    // The device was already uncordoned when probation
                    // began; closing changes bookkeeping only.
                    None
                } else {
                    breaker.state = BreakerState::HalfOpen {
                        successes: successes + 1,
                    };
                    None
                }
            }
            // A cordoned device should not be executing, but recovery replay
            // may deliver a straggler outcome; it neither trips nor heals.
            BreakerState::Open { .. } => None,
        }
    }

    /// Advance the board to the given tick: every `Open` breaker whose
    /// timer expired moves to `HalfOpen`. Returns the devices to uncordon
    /// for probation, in name order.
    pub fn tick(&mut self, now: u64) -> Vec<String> {
        let due: Vec<String> = self
            .breakers
            .iter()
            .filter_map(|(name, b)| match b.state {
                BreakerState::Open { until } if now >= until => Some(name.clone()),
                _ => None,
            })
            .collect();
        for device in &due {
            self.transition(
                device,
                now,
                BreakerState::HalfOpen { successes: 0 },
                "open interval elapsed; probing".to_string(),
            );
        }
        due
    }

    /// Force a device straight to probation (the explicit probe command of
    /// virtual-time drivers that never call `tick`). Returns `true` when
    /// the device was `Open` and is now probing.
    pub fn force_probe(&mut self, device: &str, at: u64) -> bool {
        match self.state(device) {
            BreakerState::Open { .. } => {
                self.transition(
                    device,
                    at,
                    BreakerState::HalfOpen { successes: 0 },
                    "probe forced".to_string(),
                );
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> BreakerBoard {
        BreakerBoard::new(BreakerConfig {
            consecutive_failures: 3,
            failure_rate: 2.0, // rate trigger disabled
            window: 8,
            open_ticks: 5,
            probe_jobs: 2,
        })
    }

    #[test]
    fn consecutive_failures_trip_and_probation_closes() {
        let mut board = board();
        assert_eq!(board.record_outcome("dev", true, 1), None);
        assert_eq!(board.record_outcome("dev", true, 2), None);
        assert_eq!(
            board.record_outcome("dev", true, 3),
            Some(BreakerAction::Cordon)
        );
        assert_eq!(board.state("dev"), BreakerState::Open { until: 8 });
        assert_eq!(board.trip_count("dev"), 1);

        // Too early: still open.
        assert!(board.tick(7).is_empty());
        // Timer expiry → probation, device uncordoned.
        assert_eq!(board.tick(8), vec!["dev".to_string()]);
        assert_eq!(board.state("dev"), BreakerState::HalfOpen { successes: 0 });

        // Two successful probes close the breaker.
        assert_eq!(board.record_outcome("dev", false, 9), None);
        assert_eq!(board.record_outcome("dev", false, 10), None);
        assert_eq!(board.state("dev"), BreakerState::Closed);
        // The log captured every transition.
        let kinds: Vec<(&str, &str)> = board
            .events()
            .iter()
            .map(|e| (e.from.name(), e.to.name()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("closed", "open"),
                ("open", "half-open"),
                ("half-open", "closed")
            ]
        );
    }

    #[test]
    fn probe_failure_reopens() {
        let mut board = board();
        for t in 1..=3 {
            board.record_outcome("dev", true, t);
        }
        board.tick(8);
        assert_eq!(
            board.record_outcome("dev", true, 9),
            Some(BreakerAction::Cordon)
        );
        assert_eq!(board.state("dev"), BreakerState::Open { until: 14 });
        assert_eq!(board.trip_count("dev"), 2);
    }

    #[test]
    fn failure_rate_trips_once_window_fills() {
        let mut board = BreakerBoard::new(BreakerConfig {
            consecutive_failures: 0, // run trigger disabled
            failure_rate: 0.5,
            window: 4,
            open_ticks: 3,
            probe_jobs: 1,
        });
        // Alternating outcomes: rate 0.5 but window not yet full.
        assert_eq!(board.record_outcome("dev", true, 1), None);
        assert_eq!(board.record_outcome("dev", false, 2), None);
        assert_eq!(board.record_outcome("dev", true, 3), None);
        // Window fills at rate 0.5 ≥ 0.5 — but the last outcome must be a
        // failure to trip (successes never trip).
        assert_eq!(board.record_outcome("dev", false, 4), None);
        assert_eq!(
            board.record_outcome("dev", true, 5),
            Some(BreakerAction::Cordon)
        );
    }

    #[test]
    fn health_penalty_tracks_state() {
        let mut board = board();
        assert_eq!(board.health_penalty("dev"), 0.0);
        board.record_outcome("dev", true, 1);
        board.record_outcome("dev", false, 2);
        assert_eq!(board.health_penalty("dev"), 0.5, "1 failure of 2 outcomes");
        board.record_outcome("dev", true, 3);
        board.record_outcome("dev", true, 4);
        board.record_outcome("dev", true, 5);
        assert_eq!(board.health_penalty("dev"), 1.0, "open");
        board.tick(10);
        assert_eq!(board.health_penalty("dev"), 0.5, "probing");
    }

    #[test]
    fn force_probe_only_acts_on_open_breakers() {
        let mut board = board();
        assert!(!board.force_probe("dev", 1), "closed: no-op");
        for t in 1..=3 {
            board.record_outcome("dev", true, t);
        }
        assert!(board.force_probe("dev", 4));
        assert_eq!(board.state("dev"), BreakerState::HalfOpen { successes: 0 });
        assert!(!board.force_probe("dev", 5), "already probing");
    }

    #[test]
    fn outcomes_while_open_are_inert() {
        let mut board = board();
        for t in 1..=3 {
            board.record_outcome("dev", true, t);
        }
        let trips = board.trip_count("dev");
        assert_eq!(board.record_outcome("dev", true, 4), None);
        assert_eq!(board.record_outcome("dev", false, 5), None);
        assert_eq!(board.trip_count("dev"), trips);
        assert!(matches!(board.state("dev"), BreakerState::Open { .. }));
    }
}
