//! Durable, crash-recoverable orchestrator state: the domain layer over the
//! `qrio-journal` write-ahead log.
//!
//! The paper's QRIO deployment inherits crash recovery from Kubernetes' etcd;
//! this reproduction provides the same guarantee natively. When durability is
//! enabled ([`crate::Qrio::enable_durability`]), every successful mutation of
//! the orchestrator is appended to an on-disk journal *after* it is applied
//! in memory and *before* it is acknowledged to the caller. Recovery
//! ([`crate::Qrio::recover`]) rebuilds the orchestrator to its exact
//! pre-crash state by restoring the most recent snapshot and replaying the
//! command tail.
//!
//! # Record kinds
//!
//! The journal carries three record kinds, all at [`RECORD_VERSION`]:
//!
//! * [`RECORD_COMMAND`] — one journaled mutation ([`Command`]), e.g. a tick,
//!   an enqueue, a cancellation. Replayed verbatim during recovery.
//! * [`RECORD_EVENTS`] — the watch-log [`JobEvent`]s the preceding command
//!   produced. Never replayed (replay regenerates them); used to *verify*
//!   that replay reproduced the pre-crash history bit-for-bit.
//! * [`RECORD_SNAPSHOT`] — the full orchestrator state (cluster, meta
//!   server, lifecycle store, runner seed, configuration). The payload
//!   begins with a `u64` event cursor: the length of the watch log at
//!   snapshot time. Recovery starts from the last snapshot in the log.
//!
//! # Encoding conventions
//!
//! All scalars use the `qrio-journal` codec (little-endian, `f64` by bit
//! pattern, length-prefixed strings, one-byte tags for options and enums).
//! Backends are embedded as their `backend.spec` text and circuits as their
//! OpenQASM text — both formats round-trip exactly, and keep the journal
//! greppable where it matters most.
//!
//! # What is *not* journaled
//!
//! Custom ranking strategies and admission gates are live trait objects and
//! cannot be serialized. Recovery accepts a setup hook
//! ([`crate::Qrio::recover_with`]) that re-registers them before replay; a
//! deployment that installs either must recover through that hook. The
//! failure cause of a terminal job is persisted as a cluster-level error:
//! non-cluster failures survive with their message intact but re-surface as
//! [`ClusterError::ExecutionFailed`] after a snapshot restore.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use qrio_backend::{spec as backend_spec, Backend};
use qrio_circuit::{qasm, Circuit};
use qrio_cluster::{
    BackoffPolicy, ClusterError, ClusterEvent, ClusterState, DeviceRequirements, FaultInjector,
    FaultKind, ImageBundle, JobPhase, JobSnapshot, JobSpec, NodeState, NodeStatus, ParamValue,
    RegistryState, Resources, RetryOn, RetryPolicy, ScheduleDecision, StrategyParams, StrategySpec,
};
use qrio_journal::{ByteReader, ByteWriter, CodecError, Journal, JournalError, Record};
use qrio_meta::{DeviceTelemetry, FidelityRankingConfig, MetaState};
use qrio_sim::ParallelConfig;

use crate::breaker::{BreakerBoard, BreakerConfig, BreakerEvent, BreakerState, DeviceBreaker};
use crate::lifecycle::{JobEvent, JobId, JobState, JobStatus, LifecycleStore, Tracked};
use crate::visualizer::JobRequest;

/// Record kind: one journaled orchestrator mutation ([`Command`]).
pub const RECORD_COMMAND: u8 = 1;
/// Record kind: the watch-log events a command produced.
pub const RECORD_EVENTS: u8 = 2;
/// Record kind: a full orchestrator state snapshot.
pub const RECORD_SNAPSHOT: u8 = 3;
/// The payload version this build reads and writes for all record kinds.
/// Version 2 added fault-tolerance state: retry policies and deadlines on
/// job specs and requests, the `Retrying` lifecycle state, per-job attempt
/// counters, the dead-letter queue, circuit-breaker boards, telemetry
/// health penalties, and the fault-injection / breaker / retry commands.
pub const RECORD_VERSION: u16 = 2;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors surfaced by the durability layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DurabilityError {
    /// The underlying journal failed (I/O, bad header, oversized record).
    Journal(JournalError),
    /// A record payload failed to decode.
    Codec(CodecError),
    /// A payload decoded structurally but held an invalid domain value
    /// (unparsable backend spec or QASM text, unknown enum tag).
    Malformed(String),
    /// The journal holds no snapshot record, so there is nothing to recover
    /// from.
    NoSnapshot,
    /// A record kind/version combination this build does not understand.
    UnsupportedRecord {
        /// The record's kind byte.
        kind: u8,
        /// The record's payload version.
        version: u16,
    },
    /// Replaying the command tail did not reproduce the journaled event
    /// history — the journal and the code that wrote it disagree.
    ReplayDivergence(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Journal(err) => write!(f, "journal error: {err}"),
            DurabilityError::Codec(err) => write!(f, "record codec error: {err}"),
            DurabilityError::Malformed(detail) => write!(f, "malformed journal payload: {detail}"),
            DurabilityError::NoSnapshot => {
                write!(f, "the journal holds no snapshot to recover from")
            }
            DurabilityError::UnsupportedRecord { kind, version } => write!(
                f,
                "unsupported journal record: kind {kind} version {version} \
                 (this build supports version {RECORD_VERSION})"
            ),
            DurabilityError::ReplayDivergence(detail) => {
                write!(f, "replay diverged from the journaled history: {detail}")
            }
        }
    }
}

impl Error for DurabilityError {}

impl From<JournalError> for DurabilityError {
    fn from(err: JournalError) -> Self {
        DurabilityError::Journal(err)
    }
}

impl From<CodecError> for DurabilityError {
    fn from(err: CodecError) -> Self {
        DurabilityError::Codec(err)
    }
}

// ---------------------------------------------------------------------------
// Configuration and recovery reporting
// ---------------------------------------------------------------------------

/// Configuration for [`crate::Qrio::enable_durability`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Write a fresh snapshot after this many journaled commands
    /// (`0` = only the genesis snapshot, never again). Snapshots bound the
    /// replay work recovery has to do; commands since the last snapshot are
    /// replayed one by one.
    pub snapshot_every: u64,
    /// Force the journal down to the storage device (`fdatasync`) after this
    /// many journaled commands (`0` = never automatically; only explicit
    /// [`crate::Qrio::sync_journal`] calls sync). Every command is still
    /// write-through to the OS before it is acknowledged — batching the
    /// sync trades power-loss durability of the last `n-1` commands for
    /// fewer device flushes; no acknowledged command is ever lost to a mere
    /// process crash.
    pub sync_every_n_commands: u64,
    /// Compact the journal after writing a snapshot whenever the file has
    /// grown beyond this many bytes (`0` = never compact). Compaction drops
    /// every record before the just-written snapshot in a torn-tail-safe
    /// rewrite (temp file + fsync + atomic rename); recovery from a
    /// compacted journal is byte-identical to recovery from the uncompacted
    /// one, because replay never needs records older than the last snapshot.
    pub compact_above_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            snapshot_every: 64,
            sync_every_n_commands: 0,
            compact_above_bytes: 0,
        }
    }
}

/// What [`crate::Qrio::recover`] did, in deterministic (byte-reproducible)
/// terms: two recoveries of the same journal render identical reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Watch-log length at the snapshot recovery started from.
    pub snapshot_cursor: u64,
    /// Commands replayed after the snapshot.
    pub commands_replayed: u64,
    /// Post-snapshot events found journaled (in `RECORD_EVENTS` records).
    pub events_journaled: u64,
    /// Post-snapshot events regenerated by replay.
    pub events_regenerated: u64,
    /// Events regenerated by replay that the journal had not yet captured
    /// (lost with a torn tail) and were re-journaled during recovery.
    pub events_healed: u64,
    /// Torn tail truncated on open, as `(file offset, bytes discarded)`.
    pub torn_tail: Option<(u64, u64)>,
    /// Jobs tracked by the recovered lifecycle store.
    pub jobs: u64,
    /// Of those, jobs already in a terminal state.
    pub terminal_jobs: u64,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "recovery report")?;
        writeln!(f, "  snapshot_cursor    = {}", self.snapshot_cursor)?;
        writeln!(f, "  commands_replayed  = {}", self.commands_replayed)?;
        writeln!(f, "  events_journaled   = {}", self.events_journaled)?;
        writeln!(f, "  events_regenerated = {}", self.events_regenerated)?;
        writeln!(f, "  events_healed      = {}", self.events_healed)?;
        match self.torn_tail {
            Some((offset, trailing)) => writeln!(
                f,
                "  torn_tail          = offset {offset}, {trailing} bytes"
            )?,
            None => writeln!(f, "  torn_tail          = none")?,
        }
        writeln!(f, "  jobs               = {}", self.jobs)?;
        write!(f, "  terminal_jobs      = {}", self.terminal_jobs)
    }
}

/// Where [`crate::Qrio::replay_to`] actually stopped. Commands are atomic, so
/// replay lands on the first command boundary at or after the requested
/// cursor — `reached_cursor` tells the caller which one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayCheckpoint {
    /// The watch-log cursor the caller asked for.
    pub target_cursor: u64,
    /// Watch-log length at the snapshot replay started from — the latest
    /// snapshot at or before the target.
    pub snapshot_cursor: u64,
    /// Commands replayed after that snapshot.
    pub commands_replayed: u64,
    /// Watch-log length where replay stopped: the smallest command boundary
    /// `>= target_cursor`, or the journal's end if the target lies beyond it.
    pub reached_cursor: u64,
}

impl fmt::Display for ReplayCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "replay checkpoint")?;
        writeln!(f, "  target_cursor      = {}", self.target_cursor)?;
        writeln!(f, "  snapshot_cursor    = {}", self.snapshot_cursor)?;
        writeln!(f, "  commands_replayed  = {}", self.commands_replayed)?;
        write!(f, "  reached_cursor     = {}", self.reached_cursor)
    }
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

/// One journaled orchestrator mutation. Replaying the command sequence from a
/// snapshot deterministically reproduces the orchestrator's state: every
/// source of nondeterminism (runner seed, clock, admission order) is part of
/// the snapshot, not the environment.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// [`crate::Qrio::add_device_with_resources`] — backend as spec text.
    AddDevice {
        /// The device's `backend.spec` serialization.
        spec_text: String,
        /// Classical capacity of the device's node.
        resources: Resources,
    },
    /// [`crate::Qrio::recalibrate_device`] — backend as spec text.
    Recalibrate {
        /// The refreshed `backend.spec` serialization.
        spec_text: String,
    },
    /// [`crate::Qrio::report_telemetry`] with the materialized reports.
    Telemetry {
        /// `(device, telemetry)` pairs, in the order reported.
        reports: Vec<(String, DeviceTelemetry)>,
    },
    /// A successful [`crate::Qrio::enqueue`].
    Enqueue {
        /// The full job request (boxed: it dwarfs every other variant).
        request: Box<JobRequest>,
    },
    /// [`crate::Qrio::cancel`].
    Cancel {
        /// The cancelled job's name.
        job: String,
    },
    /// One [`crate::Qrio::tick`] service cycle.
    Tick,
    /// A forced admission verdict for one straggler (the fixed-point arm of
    /// `run_until_idle` / `submit`).
    ForceAdmit {
        /// The straggler's name.
        job: String,
    },
    /// [`crate::Qrio::schedule`].
    Schedule {
        /// The job to bind.
        job: String,
    },
    /// [`crate::Qrio::execute`].
    Execute {
        /// The job to run.
        job: String,
    },
    /// [`crate::Qrio::rebind`].
    Rebind {
        /// The job to migrate.
        job: String,
        /// The target device.
        target: String,
    },
    /// [`crate::Qrio::cordon_device`].
    Cordon {
        /// The node to cordon.
        node: String,
    },
    /// [`crate::Qrio::uncordon_device`].
    Uncordon {
        /// The node to uncordon.
        node: String,
    },
    /// [`crate::Qrio::heal_devices`].
    Heal,
    /// [`crate::Qrio::configure_faults`] — install or clear the cluster's
    /// deterministic fault injector.
    ConfigureFaults {
        /// The injector to install, or `None` to clear it.
        injector: Option<FaultInjector>,
    },
    /// [`crate::Qrio::configure_breakers`] — install or clear the per-device
    /// circuit-breaker board (installing resets all breaker state).
    ConfigureBreakers {
        /// The breaker thresholds, or `None` to remove the board.
        config: Option<BreakerConfig>,
    },
    /// [`crate::Qrio::kick_retry`] — promote a `Retrying` job back to
    /// `Queued` without waiting out its backoff.
    KickRetry {
        /// The job to re-queue.
        job: String,
    },
    /// [`crate::Qrio::interrupt`] — fail a `Scheduled` job with a device
    /// flap, as a mid-run outage would.
    Interrupt {
        /// The job to interrupt.
        job: String,
    },
    /// [`crate::Qrio::probe_device`] — force an `Open` breaker straight to
    /// probation.
    Probe {
        /// The device to probe.
        device: String,
    },
}

// ---------------------------------------------------------------------------
// Scalar / option helpers
// ---------------------------------------------------------------------------

fn put_opt_str(w: &mut ByteWriter, value: Option<&str>) {
    match value {
        Some(text) => {
            w.put_bool(true);
            w.put_str(text);
        }
        None => w.put_bool(false),
    }
}

fn take_opt_str(r: &mut ByteReader<'_>) -> Result<Option<String>, DurabilityError> {
    Ok(if r.take_bool()? {
        Some(r.take_str()?)
    } else {
        None
    })
}

fn put_opt_f64(w: &mut ByteWriter, value: Option<f64>) {
    match value {
        Some(v) => {
            w.put_bool(true);
            w.put_f64(v);
        }
        None => w.put_bool(false),
    }
}

fn take_opt_f64(r: &mut ByteReader<'_>) -> Result<Option<f64>, DurabilityError> {
    Ok(if r.take_bool()? {
        Some(r.take_f64()?)
    } else {
        None
    })
}

fn put_opt_u64(w: &mut ByteWriter, value: Option<u64>) {
    match value {
        Some(v) => {
            w.put_bool(true);
            w.put_u64(v);
        }
        None => w.put_bool(false),
    }
}

fn take_opt_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>, DurabilityError> {
    Ok(if r.take_bool()? {
        Some(r.take_u64()?)
    } else {
        None
    })
}

fn put_opt_usize(w: &mut ByteWriter, value: Option<usize>) {
    match value {
        Some(v) => {
            w.put_bool(true);
            w.put_usize(v);
        }
        None => w.put_bool(false),
    }
}

fn take_opt_usize(r: &mut ByteReader<'_>) -> Result<Option<usize>, DurabilityError> {
    Ok(if r.take_bool()? {
        Some(r.take_usize()?)
    } else {
        None
    })
}

fn put_str_vec(w: &mut ByteWriter, values: &[String]) {
    w.put_usize(values.len());
    for value in values {
        w.put_str(value);
    }
}

fn take_str_vec(r: &mut ByteReader<'_>) -> Result<Vec<String>, DurabilityError> {
    let len = r.take_usize()?;
    let mut out = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        out.push(r.take_str()?);
    }
    Ok(out)
}

fn bad_tag(what: &'static str, tag: u8) -> DurabilityError {
    DurabilityError::Codec(CodecError::InvalidTag {
        what,
        tag: u64::from(tag),
    })
}

fn take_backend(r: &mut ByteReader<'_>) -> Result<Backend, DurabilityError> {
    let text = r.take_str()?;
    backend_spec::from_spec(&text)
        .map_err(|err| DurabilityError::Malformed(format!("backend spec: {err}")))
}

fn take_circuit(r: &mut ByteReader<'_>) -> Result<Circuit, DurabilityError> {
    let text = r.take_str()?;
    qasm::parse_qasm(&text).map_err(|err| DurabilityError::Malformed(format!("qasm: {err}")))
}

// ---------------------------------------------------------------------------
// Domain codecs
// ---------------------------------------------------------------------------

fn put_resources(w: &mut ByteWriter, value: &Resources) {
    w.put_u64(value.cpu_millis);
    w.put_u64(value.memory_mib);
}

fn take_resources(r: &mut ByteReader<'_>) -> Result<Resources, DurabilityError> {
    Ok(Resources {
        cpu_millis: r.take_u64()?,
        memory_mib: r.take_u64()?,
    })
}

fn put_requirements(w: &mut ByteWriter, value: &DeviceRequirements) {
    put_opt_usize(w, value.min_qubits);
    put_opt_f64(w, value.max_two_qubit_error);
    put_opt_f64(w, value.max_readout_error);
    put_opt_f64(w, value.min_t1_us);
    put_opt_f64(w, value.min_t2_us);
}

fn take_requirements(r: &mut ByteReader<'_>) -> Result<DeviceRequirements, DurabilityError> {
    Ok(DeviceRequirements {
        min_qubits: take_opt_usize(r)?,
        max_two_qubit_error: take_opt_f64(r)?,
        max_readout_error: take_opt_f64(r)?,
        min_t1_us: take_opt_f64(r)?,
        min_t2_us: take_opt_f64(r)?,
    })
}

fn put_param_value(w: &mut ByteWriter, value: &ParamValue) {
    match value {
        ParamValue::Float(v) => {
            w.put_u8(0);
            w.put_f64(*v);
        }
        ParamValue::Int(v) => {
            w.put_u8(1);
            w.put_u64(*v);
        }
        ParamValue::Text(v) => {
            w.put_u8(2);
            w.put_str(v);
        }
        ParamValue::Edges(edges) => {
            w.put_u8(3);
            w.put_usize(edges.len());
            for &(a, b) in edges {
                w.put_usize(a);
                w.put_usize(b);
            }
        }
    }
}

fn take_param_value(r: &mut ByteReader<'_>) -> Result<ParamValue, DurabilityError> {
    Ok(match r.take_u8()? {
        0 => ParamValue::Float(r.take_f64()?),
        1 => ParamValue::Int(r.take_u64()?),
        2 => ParamValue::Text(r.take_str()?),
        3 => {
            let len = r.take_usize()?;
            let mut edges = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                edges.push((r.take_usize()?, r.take_usize()?));
            }
            ParamValue::Edges(edges)
        }
        tag => return Err(bad_tag("ParamValue", tag)),
    })
}

fn put_strategy_spec(w: &mut ByteWriter, value: &StrategySpec) {
    w.put_str(&value.name);
    let params: Vec<(&str, &ParamValue)> = value.params.iter().collect();
    w.put_usize(params.len());
    for (key, param) in params {
        w.put_str(key);
        put_param_value(w, param);
    }
}

fn take_strategy_spec(r: &mut ByteReader<'_>) -> Result<StrategySpec, DurabilityError> {
    let name = r.take_str()?;
    let len = r.take_usize()?;
    let mut params = StrategyParams::new();
    for _ in 0..len {
        let key = r.take_str()?;
        params.set(key, take_param_value(r)?);
    }
    Ok(StrategySpec { name, params })
}

fn put_job_request(w: &mut ByteWriter, value: &JobRequest) {
    w.put_str(&value.job_name);
    w.put_str(&value.image_name);
    w.put_str(&value.qasm);
    w.put_usize(value.num_qubits);
    put_resources(w, &value.resources);
    put_requirements(w, &value.requirements);
    put_strategy_spec(w, &value.strategy);
    w.put_u8(value.priority);
    w.put_u64(value.shots);
    w.put_usize(value.parallel.threads());
    put_opt_retry_policy(w, value.retry.as_ref());
    put_opt_u64(w, value.deadline);
}

fn take_job_request(r: &mut ByteReader<'_>) -> Result<JobRequest, DurabilityError> {
    Ok(JobRequest {
        job_name: r.take_str()?,
        image_name: r.take_str()?,
        qasm: r.take_str()?,
        num_qubits: r.take_usize()?,
        resources: take_resources(r)?,
        requirements: take_requirements(r)?,
        strategy: take_strategy_spec(r)?,
        priority: r.take_u8()?,
        shots: r.take_u64()?,
        parallel: ParallelConfig::with_threads(r.take_usize()?),
        retry: take_opt_retry_policy(r)?,
        deadline: take_opt_u64(r)?,
    })
}

fn put_telemetry(w: &mut ByteWriter, value: &DeviceTelemetry) {
    w.put_usize(value.queue_depth);
    w.put_f64(value.utilization);
    w.put_f64(value.health_penalty);
}

fn take_telemetry(r: &mut ByteReader<'_>) -> Result<DeviceTelemetry, DurabilityError> {
    Ok(DeviceTelemetry {
        queue_depth: r.take_usize()?,
        utilization: r.take_f64()?,
        health_penalty: r.take_f64()?,
    })
}

// ---------------------------------------------------------------------------
// Fault-tolerance codecs: injector, retry policy, circuit breakers
// ---------------------------------------------------------------------------

fn fault_kind_tag(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::TransientExecution => 0,
        FaultKind::CalibrationGlitch => 1,
        FaultKind::SlowJob => 2,
        FaultKind::DeviceFlap => 3,
    }
}

fn take_fault_kind(r: &mut ByteReader<'_>) -> Result<FaultKind, DurabilityError> {
    Ok(match r.take_u8()? {
        0 => FaultKind::TransientExecution,
        1 => FaultKind::CalibrationGlitch,
        2 => FaultKind::SlowJob,
        3 => FaultKind::DeviceFlap,
        tag => return Err(bad_tag("FaultKind", tag)),
    })
}

fn put_opt_fault_injector(w: &mut ByteWriter, value: Option<&FaultInjector>) {
    match value {
        Some(injector) => {
            w.put_bool(true);
            w.put_u64(injector.seed);
            w.put_f64(injector.transient_rate);
            w.put_f64(injector.calibration_rate);
            w.put_f64(injector.slow_rate);
            w.put_f64(injector.flap_rate);
        }
        None => w.put_bool(false),
    }
}

fn take_opt_fault_injector(
    r: &mut ByteReader<'_>,
) -> Result<Option<FaultInjector>, DurabilityError> {
    Ok(if r.take_bool()? {
        Some(FaultInjector {
            seed: r.take_u64()?,
            transient_rate: r.take_f64()?,
            calibration_rate: r.take_f64()?,
            slow_rate: r.take_f64()?,
            flap_rate: r.take_f64()?,
        })
    } else {
        None
    })
}

fn put_backoff(w: &mut ByteWriter, value: &BackoffPolicy) {
    match *value {
        BackoffPolicy::Fixed { delay } => {
            w.put_u8(0);
            w.put_u64(delay);
        }
        BackoffPolicy::Exponential { base, max, jitter } => {
            w.put_u8(1);
            w.put_u64(base);
            w.put_u64(max);
            w.put_bool(jitter);
        }
    }
}

fn take_backoff(r: &mut ByteReader<'_>) -> Result<BackoffPolicy, DurabilityError> {
    Ok(match r.take_u8()? {
        0 => BackoffPolicy::Fixed {
            delay: r.take_u64()?,
        },
        1 => BackoffPolicy::Exponential {
            base: r.take_u64()?,
            max: r.take_u64()?,
            jitter: r.take_bool()?,
        },
        tag => return Err(bad_tag("BackoffPolicy", tag)),
    })
}

fn put_opt_retry_policy(w: &mut ByteWriter, value: Option<&RetryPolicy>) {
    match value {
        Some(policy) => {
            w.put_bool(true);
            w.put_u64(u64::from(policy.max_attempts));
            put_backoff(w, &policy.backoff);
            w.put_bool(policy.retry_on.transient);
            w.put_bool(policy.retry_on.calibration);
            w.put_bool(policy.retry_on.slow);
            w.put_bool(policy.retry_on.flap);
            w.put_bool(policy.retry_on.execution);
        }
        None => w.put_bool(false),
    }
}

fn take_opt_retry_policy(r: &mut ByteReader<'_>) -> Result<Option<RetryPolicy>, DurabilityError> {
    if !r.take_bool()? {
        return Ok(None);
    }
    let max_attempts = u32::try_from(r.take_u64()?)
        .map_err(|_| DurabilityError::Malformed("retry max_attempts exceeds u32".into()))?;
    Ok(Some(RetryPolicy {
        max_attempts,
        backoff: take_backoff(r)?,
        retry_on: RetryOn {
            transient: r.take_bool()?,
            calibration: r.take_bool()?,
            slow: r.take_bool()?,
            flap: r.take_bool()?,
            execution: r.take_bool()?,
        },
    }))
}

fn put_breaker_config(w: &mut ByteWriter, config: &BreakerConfig) {
    w.put_u64(u64::from(config.consecutive_failures));
    w.put_f64(config.failure_rate);
    w.put_u64(u64::from(config.window));
    w.put_u64(config.open_ticks);
    w.put_u64(u64::from(config.probe_jobs));
}

fn take_u32(r: &mut ByteReader<'_>, what: &'static str) -> Result<u32, DurabilityError> {
    u32::try_from(r.take_u64()?)
        .map_err(|_| DurabilityError::Malformed(format!("{what} exceeds u32")))
}

fn take_breaker_config(r: &mut ByteReader<'_>) -> Result<BreakerConfig, DurabilityError> {
    Ok(BreakerConfig {
        consecutive_failures: take_u32(r, "breaker consecutive_failures")?,
        failure_rate: r.take_f64()?,
        window: take_u32(r, "breaker window")?,
        open_ticks: r.take_u64()?,
        probe_jobs: take_u32(r, "breaker probe_jobs")?,
    })
}

fn put_breaker_state(w: &mut ByteWriter, state: BreakerState) {
    match state {
        BreakerState::Closed => w.put_u8(0),
        BreakerState::Open { until } => {
            w.put_u8(1);
            w.put_u64(until);
        }
        BreakerState::HalfOpen { successes } => {
            w.put_u8(2);
            w.put_u64(u64::from(successes));
        }
    }
}

fn take_breaker_state(r: &mut ByteReader<'_>) -> Result<BreakerState, DurabilityError> {
    Ok(match r.take_u8()? {
        0 => BreakerState::Closed,
        1 => BreakerState::Open {
            until: r.take_u64()?,
        },
        2 => BreakerState::HalfOpen {
            successes: take_u32(r, "breaker probe successes")?,
        },
        tag => return Err(bad_tag("BreakerState", tag)),
    })
}

fn put_opt_breaker_board(w: &mut ByteWriter, value: Option<&BreakerBoard>) {
    let Some(board) = value else {
        w.put_bool(false);
        return;
    };
    w.put_bool(true);
    put_breaker_config(w, &board.config);
    w.put_usize(board.breakers.len());
    for (device, breaker) in &board.breakers {
        w.put_str(device);
        put_breaker_state(w, breaker.state);
        w.put_usize(breaker.outcomes.len());
        for failed in &breaker.outcomes {
            w.put_bool(*failed);
        }
        w.put_u64(u64::from(breaker.consecutive));
        w.put_u64(breaker.trips);
    }
    w.put_usize(board.events.len());
    for event in &board.events {
        w.put_u64(event.at);
        w.put_str(&event.device);
        put_breaker_state(w, event.from);
        put_breaker_state(w, event.to);
        w.put_str(&event.reason);
    }
}

fn take_opt_breaker_board(r: &mut ByteReader<'_>) -> Result<Option<BreakerBoard>, DurabilityError> {
    if !r.take_bool()? {
        return Ok(None);
    }
    let config = take_breaker_config(r)?;
    let len = r.take_usize()?;
    let mut breakers = BTreeMap::new();
    for _ in 0..len {
        let device = r.take_str()?;
        let state = take_breaker_state(r)?;
        let outcomes_len = r.take_usize()?;
        let mut outcomes = std::collections::VecDeque::with_capacity(outcomes_len.min(4096));
        for _ in 0..outcomes_len {
            outcomes.push_back(r.take_bool()?);
        }
        let consecutive = take_u32(r, "breaker consecutive run")?;
        breakers.insert(
            device,
            DeviceBreaker {
                state,
                outcomes,
                consecutive,
                trips: r.take_u64()?,
            },
        );
    }
    let len = r.take_usize()?;
    let mut events = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        events.push(BreakerEvent {
            at: r.take_u64()?,
            device: r.take_str()?,
            from: take_breaker_state(r)?,
            to: take_breaker_state(r)?,
            reason: r.take_str()?,
        });
    }
    Ok(Some(BreakerBoard {
        config,
        breakers,
        events,
    }))
}

fn job_state_tag(state: JobState) -> u8 {
    match state {
        JobState::Submitted => 0,
        JobState::Queued => 1,
        JobState::Scheduled => 2,
        JobState::Running => 3,
        JobState::Succeeded => 4,
        JobState::Failed => 5,
        JobState::Cancelled => 6,
        JobState::Retrying => 7,
    }
}

fn take_job_state(r: &mut ByteReader<'_>) -> Result<JobState, DurabilityError> {
    Ok(match r.take_u8()? {
        0 => JobState::Submitted,
        1 => JobState::Queued,
        2 => JobState::Scheduled,
        3 => JobState::Running,
        4 => JobState::Succeeded,
        5 => JobState::Failed,
        6 => JobState::Cancelled,
        7 => JobState::Retrying,
        tag => return Err(bad_tag("JobState", tag)),
    })
}

fn put_opt_job_state(w: &mut ByteWriter, value: Option<JobState>) {
    match value {
        Some(state) => {
            w.put_bool(true);
            w.put_u8(job_state_tag(state));
        }
        None => w.put_bool(false),
    }
}

fn take_opt_job_state(r: &mut ByteReader<'_>) -> Result<Option<JobState>, DurabilityError> {
    Ok(if r.take_bool()? {
        Some(take_job_state(r)?)
    } else {
        None
    })
}

fn put_job_event(w: &mut ByteWriter, event: &JobEvent) {
    w.put_u64(event.seq);
    w.put_u64(event.at);
    w.put_str(event.job.as_str());
    put_opt_job_state(w, event.from);
    w.put_u8(job_state_tag(event.to));
    put_opt_str(w, event.node.as_deref());
    put_opt_str(w, event.reason.as_deref());
}

fn take_job_event(r: &mut ByteReader<'_>) -> Result<JobEvent, DurabilityError> {
    Ok(JobEvent {
        seq: r.take_u64()?,
        at: r.take_u64()?,
        job: JobId::new(&r.take_str()?),
        from: take_opt_job_state(r)?,
        to: take_job_state(r)?,
        node: take_opt_str(r)?,
        reason: take_opt_str(r)?,
    })
}

fn put_job_status(w: &mut ByteWriter, status: &JobStatus) {
    w.put_u8(job_state_tag(status.state));
    put_opt_str(w, status.node.as_deref());
    put_opt_str(w, status.reason.as_deref());
    w.put_u8(status.priority);
    w.put_usize(status.history.len());
    for &(at, state) in &status.history {
        w.put_u64(at);
        w.put_u8(job_state_tag(state));
    }
}

fn take_job_status(r: &mut ByteReader<'_>) -> Result<JobStatus, DurabilityError> {
    let state = take_job_state(r)?;
    let node = take_opt_str(r)?;
    let reason = take_opt_str(r)?;
    let priority = r.take_u8()?;
    let len = r.take_usize()?;
    let mut history = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let at = r.take_u64()?;
        history.push((at, take_job_state(r)?));
    }
    Ok(JobStatus {
        state,
        node,
        reason,
        priority,
        history,
    })
}

fn put_schedule_decision(w: &mut ByteWriter, decision: &ScheduleDecision) {
    w.put_str(&decision.job);
    w.put_str(&decision.node);
    w.put_f64(decision.score);
    w.put_usize(decision.candidates.len());
    for (node, score) in &decision.candidates {
        w.put_str(node);
        w.put_f64(*score);
    }
    w.put_usize(decision.filtered_out.len());
    for (node, reason) in &decision.filtered_out {
        w.put_str(node);
        w.put_str(reason);
    }
}

fn take_schedule_decision(r: &mut ByteReader<'_>) -> Result<ScheduleDecision, DurabilityError> {
    let job = r.take_str()?;
    let node = r.take_str()?;
    let score = r.take_f64()?;
    let len = r.take_usize()?;
    let mut candidates = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let name = r.take_str()?;
        candidates.push((name, r.take_f64()?));
    }
    let len = r.take_usize()?;
    let mut filtered_out = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let name = r.take_str()?;
        filtered_out.push((name, r.take_str()?));
    }
    Ok(ScheduleDecision {
        job,
        node,
        score,
        candidates,
        filtered_out,
    })
}

fn put_cluster_error(w: &mut ByteWriter, err: &ClusterError) {
    match err {
        ClusterError::DuplicateNode(name) => {
            w.put_u8(0);
            w.put_str(name);
        }
        ClusterError::UnknownNode(name) => {
            w.put_u8(1);
            w.put_str(name);
        }
        ClusterError::DuplicateJob(name) => {
            w.put_u8(2);
            w.put_str(name);
        }
        ClusterError::UnknownJob(name) => {
            w.put_u8(3);
            w.put_str(name);
        }
        ClusterError::ImageNotFound(name) => {
            w.put_u8(4);
            w.put_str(name);
        }
        ClusterError::BindingRejected { job, node, reason } => {
            w.put_u8(5);
            w.put_str(job);
            w.put_str(node);
            w.put_str(reason);
        }
        ClusterError::Unschedulable { job, reason } => {
            w.put_u8(6);
            w.put_str(job);
            w.put_str(reason);
        }
        ClusterError::SpecParse { line, message } => {
            w.put_u8(7);
            w.put_usize(*line);
            w.put_str(message);
        }
        ClusterError::ExecutionFailed { job, reason } => {
            w.put_u8(8);
            w.put_str(job);
            w.put_str(reason);
        }
        ClusterError::PhaseConflict { job, action, phase } => {
            w.put_u8(9);
            w.put_str(job);
            w.put_str(action);
            w.put_str(phase);
        }
        ClusterError::InjectedFault {
            job,
            node,
            kind,
            attempt,
        } => {
            w.put_u8(10);
            w.put_str(job);
            w.put_str(node);
            w.put_u8(fault_kind_tag(*kind));
            w.put_u64(u64::from(*attempt));
        }
        ClusterError::DeadlineExceeded { job, deadline } => {
            w.put_u8(11);
            w.put_str(job);
            w.put_u64(*deadline);
        }
    }
}

fn take_cluster_error(r: &mut ByteReader<'_>) -> Result<ClusterError, DurabilityError> {
    Ok(match r.take_u8()? {
        0 => ClusterError::DuplicateNode(r.take_str()?),
        1 => ClusterError::UnknownNode(r.take_str()?),
        2 => ClusterError::DuplicateJob(r.take_str()?),
        3 => ClusterError::UnknownJob(r.take_str()?),
        4 => ClusterError::ImageNotFound(r.take_str()?),
        5 => ClusterError::BindingRejected {
            job: r.take_str()?,
            node: r.take_str()?,
            reason: r.take_str()?,
        },
        6 => ClusterError::Unschedulable {
            job: r.take_str()?,
            reason: r.take_str()?,
        },
        7 => ClusterError::SpecParse {
            line: r.take_usize()?,
            message: r.take_str()?,
        },
        8 => ClusterError::ExecutionFailed {
            job: r.take_str()?,
            reason: r.take_str()?,
        },
        9 => ClusterError::PhaseConflict {
            job: r.take_str()?,
            action: r.take_str()?,
            phase: r.take_str()?,
        },
        10 => ClusterError::InjectedFault {
            job: r.take_str()?,
            node: r.take_str()?,
            kind: take_fault_kind(r)?,
            attempt: take_u32(r, "fault attempt")?,
        },
        11 => ClusterError::DeadlineExceeded {
            job: r.take_str()?,
            deadline: r.take_u64()?,
        },
        tag => return Err(bad_tag("ClusterError", tag)),
    })
}

/// Project a lifecycle failure onto the persistable [`ClusterError`] space.
/// Cluster failures survive exactly; anything else (meta, scheduler, ...)
/// keeps its rendered message under `ExecutionFailed`.
fn failure_as_cluster(job: &str, err: &crate::QrioError) -> ClusterError {
    match err {
        crate::QrioError::Cluster(inner) => inner.clone(),
        other => ClusterError::ExecutionFailed {
            job: job.to_string(),
            reason: other.to_string(),
        },
    }
}

fn put_job_phase(w: &mut ByteWriter, phase: &JobPhase) {
    match phase {
        JobPhase::Pending => w.put_u8(0),
        JobPhase::Scheduled { node } => {
            w.put_u8(1);
            w.put_str(node);
        }
        JobPhase::Running { node } => {
            w.put_u8(2);
            w.put_str(node);
        }
        JobPhase::Succeeded { node } => {
            w.put_u8(3);
            w.put_str(node);
        }
        JobPhase::Failed { reason } => {
            w.put_u8(4);
            w.put_str(reason);
        }
        JobPhase::Cancelled { reason } => {
            w.put_u8(5);
            w.put_str(reason);
        }
    }
}

fn take_job_phase(r: &mut ByteReader<'_>) -> Result<JobPhase, DurabilityError> {
    Ok(match r.take_u8()? {
        0 => JobPhase::Pending,
        1 => JobPhase::Scheduled {
            node: r.take_str()?,
        },
        2 => JobPhase::Running {
            node: r.take_str()?,
        },
        3 => JobPhase::Succeeded {
            node: r.take_str()?,
        },
        4 => JobPhase::Failed {
            reason: r.take_str()?,
        },
        5 => JobPhase::Cancelled {
            reason: r.take_str()?,
        },
        tag => return Err(bad_tag("JobPhase", tag)),
    })
}

fn put_job_spec(w: &mut ByteWriter, spec: &JobSpec) {
    w.put_str(&spec.name);
    w.put_str(&spec.image);
    w.put_str(&spec.qasm);
    w.put_usize(spec.num_qubits);
    put_resources(w, &spec.resources);
    put_requirements(w, &spec.requirements);
    put_strategy_spec(w, &spec.strategy);
    w.put_u8(spec.priority);
    w.put_u64(spec.shots);
    w.put_usize(spec.threads);
    put_opt_retry_policy(w, spec.retry.as_ref());
    put_opt_u64(w, spec.deadline);
}

fn take_job_spec(r: &mut ByteReader<'_>) -> Result<JobSpec, DurabilityError> {
    Ok(JobSpec {
        name: r.take_str()?,
        image: r.take_str()?,
        qasm: r.take_str()?,
        num_qubits: r.take_usize()?,
        resources: take_resources(r)?,
        requirements: take_requirements(r)?,
        strategy: take_strategy_spec(r)?,
        priority: r.take_u8()?,
        shots: r.take_u64()?,
        threads: r.take_usize()?,
        retry: take_opt_retry_policy(r)?,
        deadline: take_opt_u64(r)?,
    })
}

fn put_job_snapshot(w: &mut ByteWriter, job: &JobSnapshot) {
    put_job_spec(w, &job.spec);
    put_job_phase(w, &job.phase);
    put_str_vec(w, &job.logs);
    w.put_usize(job.result_counts.len());
    for (bitstring, count) in &job.result_counts {
        w.put_str(bitstring);
        w.put_u64(*count);
    }
    put_opt_f64(w, job.achieved_fidelity);
}

fn take_job_snapshot(r: &mut ByteReader<'_>) -> Result<JobSnapshot, DurabilityError> {
    let spec = take_job_spec(r)?;
    let phase = take_job_phase(r)?;
    let logs = take_str_vec(r)?;
    let len = r.take_usize()?;
    let mut result_counts = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let bitstring = r.take_str()?;
        result_counts.push((bitstring, r.take_u64()?));
    }
    Ok(JobSnapshot {
        spec,
        phase,
        logs,
        result_counts,
        achieved_fidelity: take_opt_f64(r)?,
    })
}

fn put_node_state(w: &mut ByteWriter, node: &NodeState) {
    w.put_str(&backend_spec::to_spec(&node.backend));
    w.put_usize(node.labels.len());
    for (key, value) in &node.labels {
        w.put_str(key);
        w.put_str(value);
    }
    put_resources(w, &node.capacity);
    put_resources(w, &node.allocated);
    w.put_u8(match node.status {
        NodeStatus::Ready => 0,
        NodeStatus::NotReady => 1,
        NodeStatus::Cordoned => 2,
    });
    w.put_u64(node.restart_count);
}

fn take_node_state(r: &mut ByteReader<'_>) -> Result<NodeState, DurabilityError> {
    let backend = take_backend(r)?;
    let len = r.take_usize()?;
    let mut labels = BTreeMap::new();
    for _ in 0..len {
        let key = r.take_str()?;
        labels.insert(key, r.take_str()?);
    }
    let capacity = take_resources(r)?;
    let allocated = take_resources(r)?;
    let status = match r.take_u8()? {
        0 => NodeStatus::Ready,
        1 => NodeStatus::NotReady,
        2 => NodeStatus::Cordoned,
        tag => return Err(bad_tag("NodeStatus", tag)),
    };
    Ok(NodeState {
        backend,
        labels,
        capacity,
        allocated,
        status,
        restart_count: r.take_u64()?,
    })
}

fn put_registry_state(w: &mut ByteWriter, registry: &RegistryState) {
    w.put_usize(registry.images.len());
    for image in &registry.images {
        w.put_str(image.name());
        w.put_usize(image.len());
        for (path, contents) in image.files() {
            w.put_str(path);
            w.put_str(contents);
        }
    }
    w.put_u64(registry.push_count);
    w.put_u64(registry.pull_count);
}

fn take_registry_state(r: &mut ByteReader<'_>) -> Result<RegistryState, DurabilityError> {
    let len = r.take_usize()?;
    let mut images = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let mut image = ImageBundle::new(r.take_str()?);
        let files = r.take_usize()?;
        for _ in 0..files {
            let path = r.take_str()?;
            image.add_file(path, r.take_str()?);
        }
        images.push(image);
    }
    Ok(RegistryState {
        images,
        push_count: r.take_u64()?,
        pull_count: r.take_u64()?,
    })
}

fn put_cluster_state(w: &mut ByteWriter, cluster: &ClusterState) {
    w.put_usize(cluster.nodes.len());
    for node in &cluster.nodes {
        put_node_state(w, node);
    }
    w.put_usize(cluster.jobs.len());
    for job in &cluster.jobs {
        put_job_snapshot(w, job);
    }
    put_registry_state(w, &cluster.registry);
    w.put_usize(cluster.events.len());
    for event in &cluster.events {
        w.put_str(&event.kind);
        w.put_str(&event.message);
    }
    put_str_vec(w, &cluster.queue);
    put_opt_fault_injector(w, cluster.fault_injector.as_ref());
}

fn take_cluster_state(r: &mut ByteReader<'_>) -> Result<ClusterState, DurabilityError> {
    let len = r.take_usize()?;
    let mut nodes = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        nodes.push(take_node_state(r)?);
    }
    let len = r.take_usize()?;
    let mut jobs = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        jobs.push(take_job_snapshot(r)?);
    }
    let registry = take_registry_state(r)?;
    let len = r.take_usize()?;
    let mut events = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let kind = r.take_str()?;
        events.push(ClusterEvent {
            kind,
            message: r.take_str()?,
        });
    }
    let queue = take_str_vec(r)?;
    Ok(ClusterState {
        nodes,
        jobs,
        registry,
        events,
        queue,
        fault_injector: take_opt_fault_injector(r)?,
    })
}

fn put_meta_state(w: &mut ByteWriter, meta: &MetaState) {
    w.put_u64(meta.fidelity_config.shots);
    w.put_u64(meta.fidelity_config.seed);
    w.put_f64(meta.fidelity_config.shortfall_weight);
    w.put_usize(meta.backends.len());
    for (backend, revision) in &meta.backends {
        w.put_str(&backend_spec::to_spec(backend));
        w.put_u64(*revision);
    }
    w.put_usize(meta.jobs.len());
    for (job, strategy, circuit) in &meta.jobs {
        w.put_str(job);
        put_strategy_spec(w, strategy);
        match circuit {
            Some(circuit) => {
                w.put_bool(true);
                w.put_str(&qasm::to_qasm(circuit));
            }
            None => w.put_bool(false),
        }
    }
    w.put_usize(meta.telemetry.len());
    for (device, telemetry) in &meta.telemetry {
        w.put_str(device);
        put_telemetry(w, telemetry);
    }
}

fn take_meta_state(r: &mut ByteReader<'_>) -> Result<MetaState, DurabilityError> {
    let fidelity_config = FidelityRankingConfig {
        shots: r.take_u64()?,
        seed: r.take_u64()?,
        shortfall_weight: r.take_f64()?,
    };
    let len = r.take_usize()?;
    let mut backends = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let backend = take_backend(r)?;
        backends.push((backend, r.take_u64()?));
    }
    let len = r.take_usize()?;
    let mut jobs = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let job = r.take_str()?;
        let strategy = take_strategy_spec(r)?;
        let circuit = if r.take_bool()? {
            Some(take_circuit(r)?)
        } else {
            None
        };
        jobs.push((job, strategy, circuit));
    }
    let len = r.take_usize()?;
    let mut telemetry = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let device = r.take_str()?;
        telemetry.push((device, take_telemetry(r)?));
    }
    Ok(MetaState {
        fidelity_config,
        backends,
        jobs,
        telemetry,
    })
}

fn put_lifecycle(w: &mut ByteWriter, store: &LifecycleStore) {
    w.put_u64(store.clock);
    w.put_usize(store.events.len());
    for event in &store.events {
        put_job_event(w, event);
    }
    w.put_usize(store.jobs.len());
    for (name, tracked) in &store.jobs {
        w.put_str(name);
        put_job_status(w, &tracked.status);
        match &tracked.decision {
            Some(decision) => {
                w.put_bool(true);
                put_schedule_decision(w, decision);
            }
            None => w.put_bool(false),
        }
        match &tracked.failure {
            Some(failure) => {
                w.put_bool(true);
                put_cluster_error(w, &failure_as_cluster(name, failure));
            }
            None => w.put_bool(false),
        }
        w.put_u64(u64::from(tracked.attempt));
        w.put_u64(tracked.not_before);
        put_opt_u64(w, tracked.deadline_at);
    }
    w.put_u64(store.admit_seq);
    w.put_usize(store.pending.len());
    for (priority, seq, name) in &store.pending {
        w.put_u8(*priority);
        w.put_u64(*seq);
        w.put_str(name);
    }
    w.put_usize(store.device_queues.len());
    for (device, queue) in &store.device_queues {
        w.put_str(device);
        w.put_usize(queue.len());
        for name in queue {
            w.put_str(name);
        }
    }
    put_str_vec(w, &store.dead_letters);
}

fn take_lifecycle(r: &mut ByteReader<'_>) -> Result<LifecycleStore, DurabilityError> {
    let clock = r.take_u64()?;
    let len = r.take_usize()?;
    let mut events = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        events.push(take_job_event(r)?);
    }
    let len = r.take_usize()?;
    let mut jobs = BTreeMap::new();
    for _ in 0..len {
        let name = r.take_str()?;
        let status = take_job_status(r)?;
        let decision = if r.take_bool()? {
            Some(take_schedule_decision(r)?)
        } else {
            None
        };
        let failure = if r.take_bool()? {
            Some(crate::QrioError::Cluster(take_cluster_error(r)?))
        } else {
            None
        };
        let attempt = take_u32(r, "job attempt counter")?;
        let not_before = r.take_u64()?;
        let deadline_at = take_opt_u64(r)?;
        jobs.insert(
            name,
            Tracked {
                status,
                decision,
                failure,
                attempt,
                not_before,
                deadline_at,
            },
        );
    }
    let admit_seq = r.take_u64()?;
    let len = r.take_usize()?;
    let mut pending = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let priority = r.take_u8()?;
        let seq = r.take_u64()?;
        pending.push((priority, seq, r.take_str()?));
    }
    let len = r.take_usize()?;
    let mut device_queues = BTreeMap::new();
    for _ in 0..len {
        let device = r.take_str()?;
        let jobs_len = r.take_usize()?;
        let mut queue = std::collections::VecDeque::with_capacity(jobs_len.min(4096));
        for _ in 0..jobs_len {
            queue.push_back(r.take_str()?);
        }
        device_queues.insert(device, queue);
    }
    let dead_letters = take_str_vec(r)?;
    Ok(LifecycleStore {
        clock,
        events,
        jobs,
        admit_seq,
        pending,
        device_queues,
        dead_letters,
    })
}

// ---------------------------------------------------------------------------
// Record-level encode / decode (public: the analyzer lints over these)
// ---------------------------------------------------------------------------

/// Encode a [`Command`] as a framed journal record.
pub fn encode_command_record(cmd: &Command) -> Record {
    let mut w = ByteWriter::new();
    match cmd {
        Command::AddDevice {
            spec_text,
            resources,
        } => {
            w.put_u8(0);
            w.put_str(spec_text);
            put_resources(&mut w, resources);
        }
        Command::Recalibrate { spec_text } => {
            w.put_u8(1);
            w.put_str(spec_text);
        }
        Command::Telemetry { reports } => {
            w.put_u8(2);
            w.put_usize(reports.len());
            for (device, telemetry) in reports {
                w.put_str(device);
                put_telemetry(&mut w, telemetry);
            }
        }
        Command::Enqueue { request } => {
            w.put_u8(3);
            put_job_request(&mut w, request);
        }
        Command::Cancel { job } => {
            w.put_u8(4);
            w.put_str(job);
        }
        Command::Tick => w.put_u8(5),
        Command::ForceAdmit { job } => {
            w.put_u8(6);
            w.put_str(job);
        }
        Command::Schedule { job } => {
            w.put_u8(7);
            w.put_str(job);
        }
        Command::Execute { job } => {
            w.put_u8(8);
            w.put_str(job);
        }
        Command::Rebind { job, target } => {
            w.put_u8(9);
            w.put_str(job);
            w.put_str(target);
        }
        Command::Cordon { node } => {
            w.put_u8(10);
            w.put_str(node);
        }
        Command::Uncordon { node } => {
            w.put_u8(11);
            w.put_str(node);
        }
        Command::Heal => w.put_u8(12),
        Command::ConfigureFaults { injector } => {
            w.put_u8(13);
            put_opt_fault_injector(&mut w, injector.as_ref());
        }
        Command::ConfigureBreakers { config } => {
            w.put_u8(14);
            match config {
                Some(config) => {
                    w.put_bool(true);
                    put_breaker_config(&mut w, config);
                }
                None => w.put_bool(false),
            }
        }
        Command::KickRetry { job } => {
            w.put_u8(15);
            w.put_str(job);
        }
        Command::Interrupt { job } => {
            w.put_u8(16);
            w.put_str(job);
        }
        Command::Probe { device } => {
            w.put_u8(17);
            w.put_str(device);
        }
    }
    Record::new(RECORD_COMMAND, RECORD_VERSION, w.into_bytes())
}

/// Decode the payload of a [`RECORD_COMMAND`] record.
///
/// # Errors
///
/// Returns a codec error on truncated or trailing bytes and a
/// [`DurabilityError::Codec`] invalid-tag error on unknown command tags.
pub fn decode_command(payload: &[u8]) -> Result<Command, DurabilityError> {
    let mut r = ByteReader::new(payload);
    let cmd = match r.take_u8()? {
        0 => {
            let spec_text = r.take_str()?;
            Command::AddDevice {
                spec_text,
                resources: take_resources(&mut r)?,
            }
        }
        1 => Command::Recalibrate {
            spec_text: r.take_str()?,
        },
        2 => {
            let len = r.take_usize()?;
            let mut reports = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                let device = r.take_str()?;
                reports.push((device, take_telemetry(&mut r)?));
            }
            Command::Telemetry { reports }
        }
        3 => Command::Enqueue {
            request: Box::new(take_job_request(&mut r)?),
        },
        4 => Command::Cancel { job: r.take_str()? },
        5 => Command::Tick,
        6 => Command::ForceAdmit { job: r.take_str()? },
        7 => Command::Schedule { job: r.take_str()? },
        8 => Command::Execute { job: r.take_str()? },
        9 => {
            let job = r.take_str()?;
            Command::Rebind {
                job,
                target: r.take_str()?,
            }
        }
        10 => Command::Cordon {
            node: r.take_str()?,
        },
        11 => Command::Uncordon {
            node: r.take_str()?,
        },
        12 => Command::Heal,
        13 => Command::ConfigureFaults {
            injector: take_opt_fault_injector(&mut r)?,
        },
        14 => Command::ConfigureBreakers {
            config: if r.take_bool()? {
                Some(take_breaker_config(&mut r)?)
            } else {
                None
            },
        },
        15 => Command::KickRetry { job: r.take_str()? },
        16 => Command::Interrupt { job: r.take_str()? },
        17 => Command::Probe {
            device: r.take_str()?,
        },
        tag => return Err(bad_tag("Command", tag)),
    };
    r.finish()?;
    Ok(cmd)
}

/// Encode a slice of watch-log events as a framed journal record.
pub fn encode_events_record(events: &[JobEvent]) -> Record {
    let mut w = ByteWriter::new();
    w.put_usize(events.len());
    for event in events {
        put_job_event(&mut w, event);
    }
    Record::new(RECORD_EVENTS, RECORD_VERSION, w.into_bytes())
}

/// Decode the payload of a [`RECORD_EVENTS`] record.
///
/// # Errors
///
/// Returns a codec error on truncated payloads or unknown state tags.
pub fn decode_events(payload: &[u8]) -> Result<Vec<JobEvent>, DurabilityError> {
    let mut r = ByteReader::new(payload);
    let len = r.take_usize()?;
    let mut events = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        events.push(take_job_event(&mut r)?);
    }
    r.finish()?;
    Ok(events)
}

/// Read the event cursor a [`RECORD_SNAPSHOT`] payload starts with — the
/// watch-log length at snapshot time — without decoding the rest. The
/// analyzer's journal lints use this to cross-check snapshots against the
/// event records around them.
///
/// # Errors
///
/// Returns a codec error when the payload is shorter than the cursor.
pub fn snapshot_cursor(payload: &[u8]) -> Result<u64, DurabilityError> {
    let mut r = ByteReader::new(payload);
    Ok(r.take_u64()?)
}

/// The full orchestrator state captured by a snapshot record.
#[derive(Debug, Clone)]
pub(crate) struct SnapshotState {
    /// Watch-log length at snapshot time (`lifecycle.events.len()`).
    pub(crate) cursor: u64,
    pub(crate) lifecycle: LifecycleStore,
    pub(crate) cluster: ClusterState,
    pub(crate) meta: MetaState,
    pub(crate) runner_seed: u64,
    pub(crate) default_node_resources: Resources,
    pub(crate) snapshot_every: u64,
    pub(crate) sync_every: u64,
    pub(crate) compact_above: u64,
    pub(crate) breakers: Option<BreakerBoard>,
}

pub(crate) fn encode_snapshot_record(snap: &SnapshotState) -> Record {
    let mut w = ByteWriter::new();
    w.put_u64(snap.cursor);
    put_lifecycle(&mut w, &snap.lifecycle);
    put_cluster_state(&mut w, &snap.cluster);
    put_meta_state(&mut w, &snap.meta);
    w.put_u64(snap.runner_seed);
    put_resources(&mut w, &snap.default_node_resources);
    w.put_u64(snap.snapshot_every);
    w.put_u64(snap.sync_every);
    w.put_u64(snap.compact_above);
    put_opt_breaker_board(&mut w, snap.breakers.as_ref());
    Record::new(RECORD_SNAPSHOT, RECORD_VERSION, w.into_bytes())
}

pub(crate) fn decode_snapshot(payload: &[u8]) -> Result<SnapshotState, DurabilityError> {
    let mut r = ByteReader::new(payload);
    let cursor = r.take_u64()?;
    let lifecycle = take_lifecycle(&mut r)?;
    let cluster = take_cluster_state(&mut r)?;
    let meta = take_meta_state(&mut r)?;
    let runner_seed = r.take_u64()?;
    let default_node_resources = take_resources(&mut r)?;
    let snapshot_every = r.take_u64()?;
    let sync_every = r.take_u64()?;
    let compact_above = r.take_u64()?;
    let breakers = take_opt_breaker_board(&mut r)?;
    r.finish()?;
    Ok(SnapshotState {
        cursor,
        lifecycle,
        cluster,
        meta,
        runner_seed,
        default_node_resources,
        snapshot_every,
        sync_every,
        compact_above,
        breakers,
    })
}

// ---------------------------------------------------------------------------
// The attached journal
// ---------------------------------------------------------------------------

/// The journaling half of a durable [`crate::Qrio`]: owns the open journal,
/// tracks which watch-log events are already on disk, counts commands toward
/// the next snapshot, and turns the first I/O failure into a sticky poison so
/// the in-memory state can never silently outrun the log.
#[derive(Debug)]
pub(crate) struct Durability {
    journal: Journal,
    snapshot_every: u64,
    sync_every: u64,
    compact_above: u64,
    commands_since_snapshot: u64,
    commands_since_sync: u64,
    journaled_events: u64,
    error: Option<DurabilityError>,
}

impl Durability {
    pub(crate) fn new(
        journal: Journal,
        snapshot_every: u64,
        sync_every: u64,
        compact_above: u64,
        journaled_events: u64,
    ) -> Self {
        Durability {
            journal,
            snapshot_every,
            sync_every,
            compact_above,
            commands_since_snapshot: 0,
            commands_since_sync: 0,
            journaled_events,
            error: None,
        }
    }

    pub(crate) fn snapshot_every(&self) -> u64 {
        self.snapshot_every
    }

    pub(crate) fn sync_every(&self) -> u64 {
        self.sync_every
    }

    pub(crate) fn compact_above(&self) -> u64 {
        self.compact_above
    }

    pub(crate) fn error(&self) -> Option<&DurabilityError> {
        self.error.as_ref()
    }

    pub(crate) fn poison(&mut self, err: DurabilityError) {
        if self.error.is_none() {
            self.error = Some(err);
        }
    }

    /// Append one command record plus the events it produced, then flush.
    pub(crate) fn log_command(
        &mut self,
        cmd: &Command,
        all_events: &[JobEvent],
    ) -> Result<(), DurabilityError> {
        if let Some(err) = &self.error {
            return Err(err.clone());
        }
        let result = self.log_command_inner(cmd, all_events);
        if let Err(err) = &result {
            self.poison(err.clone());
        }
        result
    }

    fn log_command_inner(
        &mut self,
        cmd: &Command,
        all_events: &[JobEvent],
    ) -> Result<(), DurabilityError> {
        self.journal.append(&encode_command_record(cmd))?;
        self.append_event_tail(all_events)?;
        self.journal.flush()?;
        self.commands_since_snapshot += 1;
        // Batched fdatasync: every command is already write-through to the
        // OS (flush above), so a process crash loses nothing acknowledged;
        // the periodic sync additionally bounds what power loss could lose.
        if self.sync_every > 0 {
            self.commands_since_sync += 1;
            if self.commands_since_sync >= self.sync_every {
                self.journal.sync()?;
                self.commands_since_sync = 0;
            }
        }
        Ok(())
    }

    /// Journal any watch-log events not yet on disk.
    pub(crate) fn append_event_tail(
        &mut self,
        all_events: &[JobEvent],
    ) -> Result<(), DurabilityError> {
        let start = self.journaled_events as usize;
        if start >= all_events.len() {
            return Ok(());
        }
        self.journal
            .append(&encode_events_record(&all_events[start..]))?;
        self.journaled_events = all_events.len() as u64;
        Ok(())
    }

    pub(crate) fn snapshot_due(&self) -> bool {
        self.error.is_none()
            && self.snapshot_every > 0
            && self.commands_since_snapshot >= self.snapshot_every
    }

    /// Append a snapshot record and reset the command counter. When the
    /// journal has outgrown [`DurabilityConfig::compact_above_bytes`], the
    /// records made obsolete by this snapshot are compacted away — recovery
    /// never reads past the last snapshot, so replay is unaffected.
    pub(crate) fn log_snapshot(&mut self, snap: &SnapshotState) -> Result<(), DurabilityError> {
        if let Some(err) = &self.error {
            return Err(err.clone());
        }
        let result: Result<(), DurabilityError> = (|| {
            let snapshot_offset = self.journal.byte_len()?;
            self.journal.append(&encode_snapshot_record(snap))?;
            self.journal.flush()?;
            if self.compact_above > 0 && self.journal.byte_len()? > self.compact_above {
                self.journal.compact(snapshot_offset)?;
            }
            Ok(())
        })();
        match &result {
            Ok(()) => self.commands_since_snapshot = 0,
            Err(err) => self.poison(err.clone()),
        }
        result
    }

    /// Force the journal down to the storage device (`fdatasync`).
    pub(crate) fn sync(&mut self) -> Result<(), DurabilityError> {
        if let Some(err) = &self.error {
            return Err(err.clone());
        }
        let result = self.journal.sync().map_err(DurabilityError::from);
        match &result {
            Ok(()) => self.commands_since_sync = 0,
            Err(err) => self.poison(err.clone()),
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> JobRequest {
        JobRequest {
            job_name: "bv".into(),
            image_name: "qrio/bv:latest".into(),
            qasm: "OPENQASM 2.0;\n".into(),
            num_qubits: 5,
            resources: Resources::new(500, 256),
            requirements: DeviceRequirements {
                min_qubits: Some(5),
                max_two_qubit_error: Some(0.05),
                max_readout_error: None,
                min_t1_us: Some(80.0),
                min_t2_us: None,
            },
            strategy: StrategySpec::fidelity(0.9),
            priority: 3,
            shots: 256,
            parallel: ParallelConfig::with_threads(2),
            retry: Some(RetryPolicy {
                max_attempts: 3,
                backoff: BackoffPolicy::Exponential {
                    base: 2,
                    max: 32,
                    jitter: true,
                },
                retry_on: RetryOn::faults_only(),
            }),
            deadline: Some(120),
        }
    }

    fn sample_event(seq: u64) -> JobEvent {
        JobEvent {
            seq,
            at: seq / 2,
            job: JobId::new("bv"),
            from: if seq == 0 {
                None
            } else {
                Some(JobState::Queued)
            },
            to: JobState::Scheduled,
            node: Some("clean".into()),
            reason: None,
        }
    }

    #[test]
    fn every_command_variant_round_trips() {
        let backend =
            qrio_backend::Backend::uniform("dev", qrio_backend::topology::line(3), 0.01, 0.02);
        let commands = vec![
            Command::AddDevice {
                spec_text: backend_spec::to_spec(&backend),
                resources: Resources::new(4000, 8192),
            },
            Command::Recalibrate {
                spec_text: backend_spec::to_spec(&backend),
            },
            Command::Telemetry {
                reports: vec![(
                    "dev".into(),
                    DeviceTelemetry {
                        queue_depth: 3,
                        utilization: 0.75,
                        health_penalty: 0.25,
                    },
                )],
            },
            Command::Enqueue {
                request: Box::new(sample_request()),
            },
            Command::Cancel { job: "bv".into() },
            Command::Tick,
            Command::ForceAdmit { job: "bv".into() },
            Command::Schedule { job: "bv".into() },
            Command::Execute { job: "bv".into() },
            Command::Rebind {
                job: "bv".into(),
                target: "dev".into(),
            },
            Command::Cordon { node: "dev".into() },
            Command::Uncordon { node: "dev".into() },
            Command::Heal,
            Command::ConfigureFaults {
                injector: Some(FaultInjector {
                    seed: 7,
                    transient_rate: 0.25,
                    calibration_rate: 0.1,
                    slow_rate: 0.05,
                    flap_rate: 0.02,
                }),
            },
            Command::ConfigureFaults { injector: None },
            Command::ConfigureBreakers {
                config: Some(BreakerConfig::default()),
            },
            Command::ConfigureBreakers { config: None },
            Command::KickRetry { job: "bv".into() },
            Command::Interrupt { job: "bv".into() },
            Command::Probe {
                device: "dev".into(),
            },
        ];
        for cmd in commands {
            let record = encode_command_record(&cmd);
            assert_eq!(record.kind, RECORD_COMMAND);
            assert_eq!(record.version, RECORD_VERSION);
            let decoded = decode_command(&record.payload).unwrap();
            assert_eq!(decoded, cmd);
            // Byte-identical fixed point.
            assert_eq!(encode_command_record(&decoded).payload, record.payload);
        }
    }

    #[test]
    fn events_round_trip_and_cursor_reads() {
        let events = vec![sample_event(0), sample_event(7)];
        let record = encode_events_record(&events);
        assert_eq!(record.kind, RECORD_EVENTS);
        assert_eq!(decode_events(&record.payload).unwrap(), events);

        let snap_payload = {
            let mut w = ByteWriter::new();
            w.put_u64(42);
            w.put_u8(0xFF); // trailing bytes are fine for cursor reads
            w.into_bytes()
        };
        assert_eq!(snapshot_cursor(&snap_payload).unwrap(), 42);
        assert!(snapshot_cursor(&[1, 2]).is_err());
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        let mut w = ByteWriter::new();
        w.put_u8(200);
        assert!(matches!(
            decode_command(&w.into_bytes()),
            Err(DurabilityError::Codec(CodecError::InvalidTag { .. }))
        ));
    }

    #[test]
    fn cluster_error_variants_round_trip() {
        let errors = vec![
            ClusterError::DuplicateNode("a".into()),
            ClusterError::UnknownNode("b".into()),
            ClusterError::DuplicateJob("c".into()),
            ClusterError::UnknownJob("d".into()),
            ClusterError::ImageNotFound("e".into()),
            ClusterError::BindingRejected {
                job: "j".into(),
                node: "n".into(),
                reason: "full".into(),
            },
            ClusterError::Unschedulable {
                job: "j".into(),
                reason: "no device".into(),
            },
            ClusterError::SpecParse {
                line: 7,
                message: "bad".into(),
            },
            ClusterError::ExecutionFailed {
                job: "j".into(),
                reason: "boom".into(),
            },
            ClusterError::PhaseConflict {
                job: "j".into(),
                action: "cancel".into(),
                phase: "Running".into(),
            },
            ClusterError::InjectedFault {
                job: "j".into(),
                node: "n".into(),
                kind: FaultKind::CalibrationGlitch,
                attempt: 2,
            },
            ClusterError::DeadlineExceeded {
                job: "j".into(),
                deadline: 44,
            },
        ];
        for err in errors {
            let mut w = ByteWriter::new();
            put_cluster_error(&mut w, &err);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(take_cluster_error(&mut r).unwrap(), err);
            r.finish().unwrap();
        }
    }

    #[test]
    fn breaker_board_round_trips_mid_probation() {
        let mut board = BreakerBoard::new(BreakerConfig {
            consecutive_failures: 2,
            failure_rate: 0.5,
            window: 4,
            open_ticks: 6,
            probe_jobs: 3,
        });
        board.record_outcome("flaky", true, 1);
        board.record_outcome("flaky", true, 2); // trips
        board.record_outcome("steady", false, 3);
        board.tick(8); // flaky → half-open
        board.record_outcome("flaky", false, 9); // one probe passed

        let mut w = ByteWriter::new();
        put_opt_breaker_board(&mut w, Some(&board));
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = take_opt_breaker_board(&mut r).unwrap().unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, board);
        assert_eq!(
            decoded.state("flaky"),
            BreakerState::HalfOpen { successes: 1 }
        );
        assert_eq!(decoded.trip_count("flaky"), 1);

        // And the absent board is one byte.
        let mut w = ByteWriter::new();
        put_opt_breaker_board(&mut w, None);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(take_opt_breaker_board(&mut r).unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn non_cluster_failures_project_to_execution_failed() {
        let err = crate::QrioError::UnknownJob("ghost".into());
        let projected = failure_as_cluster("ghost", &err);
        assert!(matches!(
            projected,
            ClusterError::ExecutionFailed { ref job, .. } if job == "ghost"
        ));
        let cluster = crate::QrioError::Cluster(ClusterError::UnknownNode("n".into()));
        assert_eq!(
            failure_as_cluster("x", &cluster),
            ClusterError::UnknownNode("n".into())
        );
    }

    #[test]
    fn display_is_informative() {
        assert!(DurabilityError::NoSnapshot.to_string().contains("snapshot"));
        assert!(DurabilityError::UnsupportedRecord {
            kind: 9,
            version: 3
        }
        .to_string()
        .contains("kind 9"));
        assert!(DurabilityError::ReplayDivergence("seq 4".into())
            .to_string()
            .contains("seq 4"));
    }
}
