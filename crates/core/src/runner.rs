//! The in-process job runner: the Rust equivalent of the generated Python
//! script that executes inside each job container (§3.3).
//!
//! When a job lands on a node, the runner reads the circuit from the
//! container image, transpiles it to the node's backend, executes it under the
//! backend's noise model, and reports the histogram, achieved fidelity and a
//! transcript of what it did (the job logs the visualizer later shows).

use qrio_backend::Backend;
use qrio_circuit::qasm;
use qrio_cluster::{ExecutionOutcome, ImageBundle, JobRunner, JobSpec};
use qrio_sim::{executor, NoiseModel, ParallelConfig, SEED_STREAM_STRIDE};
use qrio_transpiler::{deflate, transpile};

use crate::master_server::CIRCUIT_FILE;

/// Executes jobs by simulating them on the node's backend.
#[derive(Debug, Clone, Copy)]
pub struct SimJobRunner {
    /// Seed mixed into every execution for reproducibility.
    pub seed: u64,
}

impl SimJobRunner {
    /// A runner with the given base seed.
    pub fn new(seed: u64) -> Self {
        SimJobRunner { seed }
    }
}

impl Default for SimJobRunner {
    fn default() -> Self {
        SimJobRunner { seed: 0x51D0 }
    }
}

impl JobRunner for SimJobRunner {
    fn run(
        &self,
        spec: &JobSpec,
        image: &ImageBundle,
        backend: &Backend,
    ) -> Result<ExecutionOutcome, String> {
        let mut logs = Vec::new();
        // 1. Read the circuit from the container image (fall back to the spec
        //    payload, which the master server also includes).
        let qasm_text = image
            .file(CIRCUIT_FILE)
            .map(str::to_string)
            .filter(|text| !text.is_empty())
            .or_else(|| {
                if spec.qasm.is_empty() {
                    None
                } else {
                    Some(spec.qasm.clone())
                }
            })
            .ok_or_else(|| format!("image '{}' contains no circuit", image.name()))?;
        let circuit =
            qasm::parse_qasm(&qasm_text).map_err(|e| format!("cannot parse circuit: {e}"))?;
        let mut circuit = circuit;
        if circuit.measurement_count() == 0 {
            circuit.measure_all().map_err(|e| e.to_string())?;
        }
        logs.push(format!(
            "loaded circuit '{}' with {} qubits, {} two-qubit gates",
            spec.name,
            circuit.num_qubits(),
            circuit.two_qubit_gate_count()
        ));

        // 2. Transpile to the node's backend.
        let transpiled =
            transpile(&circuit, backend).map_err(|e| format!("transpilation failed: {e}"))?;
        logs.push(format!(
            "transpiled to backend '{}': {} swaps inserted, depth {}",
            backend.name(),
            transpiled.swaps_inserted,
            transpiled.circuit.depth()
        ));

        // 3. Execute under the backend noise model (deflated to active qubits).
        let deflated =
            deflate(&transpiled.circuit, backend).map_err(|e| format!("deflation failed: {e}"))?;
        let noise = NoiseModel::from_backend(&deflated.backend);
        let seed = self.seed ^ fnv(&spec.name) ^ fnv(backend.name());
        let parallel = ParallelConfig::with_threads(spec.threads);
        let noisy = executor::run_with_noise_parallel(
            &deflated.circuit,
            &noise,
            spec.shots,
            seed,
            &parallel,
        )
        .map_err(|e| format!("execution failed: {e}"))?;
        // 4. Noise-free reference for the achieved fidelity, when tractable.
        // Runs a full seed stride away so it never shares a shard RNG stream
        // with the noisy run.
        let fidelity = executor::run_ideal_parallel(
            &deflated.circuit,
            spec.shots,
            seed.wrapping_add(SEED_STREAM_STRIDE),
            &parallel,
        )
        .ok()
        .map(|ideal| ideal.hellinger_fidelity(&noisy));
        logs.push(format!(
            "executed {} shots on '{}'",
            spec.shots,
            backend.name()
        ));
        if let Some(f) = fidelity {
            logs.push(format!(
                "achieved fidelity {f:.4} against the noise-free reference"
            ));
        }

        let counts: Vec<(String, u64)> = noisy
            .iter()
            .map(|(outcome, count)| (noisy.bitstring(outcome), count))
            .collect();
        Ok(ExecutionOutcome {
            counts,
            fidelity,
            logs,
        })
    }
}

fn fnv(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use qrio_circuit::library;
    use qrio_cluster::{DeviceRequirements, Resources, StrategySpec};

    fn spec_and_image(shots: u64) -> (JobSpec, ImageBundle) {
        let bv = library::bernstein_vazirani(5, 0b10110).unwrap();
        let qasm_text = qasm::to_qasm(&bv);
        let mut image = ImageBundle::new("qrio/bv:test");
        image.add_file(CIRCUIT_FILE, qasm_text.clone());
        let spec = JobSpec {
            name: "bv-runner".into(),
            image: "qrio/bv:test".into(),
            qasm: qasm_text,
            num_qubits: 5,
            resources: Resources::new(100, 128),
            requirements: DeviceRequirements::none(),
            strategy: StrategySpec::fidelity(0.9),
            priority: 0,
            shots,
            threads: 0,
            retry: None,
            deadline: None,
        };
        (spec, image)
    }

    #[test]
    fn runner_executes_and_reports_fidelity() {
        let (spec, image) = spec_and_image(512);
        let backend = Backend::uniform("clean", topology::line(8), 0.0, 0.0);
        let outcome = SimJobRunner::new(1).run(&spec, &image, &backend).unwrap();
        assert!(!outcome.counts.is_empty());
        assert!(outcome.fidelity.unwrap() > 0.95);
        assert!(outcome.logs.iter().any(|l| l.contains("transpiled")));
        // The dominant outcome is the BV secret (bit-reversed rendering).
        let top = outcome.counts.iter().max_by_key(|(_, c)| *c).unwrap();
        assert_eq!(top.0, "10110");
    }

    #[test]
    fn noisy_backend_reduces_fidelity() {
        let (spec, image) = spec_and_image(256);
        let clean = Backend::uniform("clean", topology::line(8), 0.0, 0.0);
        let noisy = Backend::uniform("noisy", topology::line(8), 0.05, 0.3);
        let runner = SimJobRunner::new(2);
        let f_clean = runner.run(&spec, &image, &clean).unwrap().fidelity.unwrap();
        let f_noisy = runner.run(&spec, &image, &noisy).unwrap().fidelity.unwrap();
        assert!(f_clean > f_noisy);
    }

    #[test]
    fn missing_or_bad_circuit_is_an_error() {
        let (mut spec, _) = spec_and_image(64);
        spec.qasm.clear();
        let empty_image = ImageBundle::new("empty");
        let backend = Backend::uniform("dev", topology::line(5), 0.0, 0.0);
        assert!(SimJobRunner::new(0)
            .run(&spec, &empty_image, &backend)
            .is_err());

        let mut bad_image = ImageBundle::new("bad");
        bad_image.add_file(CIRCUIT_FILE, "garbage $");
        assert!(SimJobRunner::new(0)
            .run(&spec, &bad_image, &backend)
            .is_err());
    }

    #[test]
    fn oversized_circuits_fail_cleanly() {
        let (spec, image) = spec_and_image(64);
        let tiny = Backend::uniform("tiny", topology::line(2), 0.0, 0.0);
        let err = SimJobRunner::new(0).run(&spec, &image, &tiny).unwrap_err();
        assert!(err.contains("transpilation failed"));
    }
}
