//! The QRIO Visualizer model (§3.2).
//!
//! The paper's visualizer is a React web application; its role in the system
//! is to collect the user's inputs through a three-step form — job details,
//! requested device characteristics, and the fidelity-or-topology strategy —
//! and to upload the resulting metadata to the meta server and master server
//! (Table 1). This module models that workflow as a typed builder, including
//! the topology-drawing canvas (edges between qubits → topology circuit).

use qrio_circuit::{library, qasm, Circuit};
use qrio_cluster::{strategy_names, DeviceRequirements, Resources, RetryPolicy, StrategySpec};
use qrio_sim::ParallelConfig;

use crate::error::QrioError;

/// The topology-drawing canvas: the user places `num_qubits` qubits and draws
/// edges between them (figure 4f of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TopologyDesigner {
    num_qubits: usize,
    edges: Vec<(usize, usize)>,
}

impl TopologyDesigner {
    /// A canvas with `num_qubits` qubits and no edges.
    pub fn new(num_qubits: usize) -> Self {
        TopologyDesigner {
            num_qubits,
            edges: Vec::new(),
        }
    }

    /// Pre-populate the canvas with one of the default topologies offered by
    /// the visualizer (grid, line, ring, heavy-square, fully-connected).
    pub fn from_default(default: qrio_backend::DefaultTopology) -> Self {
        TopologyDesigner {
            num_qubits: default.num_qubits(),
            edges: default.edges(),
        }
    }

    /// Draw an edge between two qubits.
    ///
    /// # Errors
    ///
    /// Returns an error for self-loops or out-of-range qubits.
    pub fn connect(&mut self, a: usize, b: usize) -> Result<&mut Self, QrioError> {
        if a == b {
            return Err(QrioError::InvalidRequest(format!(
                "cannot connect qubit {a} to itself"
            )));
        }
        if a >= self.num_qubits || b >= self.num_qubits {
            return Err(QrioError::InvalidRequest(format!(
                "edge ({a},{b}) is outside the {}-qubit canvas",
                self.num_qubits
            )));
        }
        let key = (a.min(b), a.max(b));
        if !self.edges.contains(&key) {
            self.edges.push(key);
        }
        Ok(self)
    }

    /// The drawn edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of qubits on the canvas.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Convert the drawing into the *topology circuit* uploaded to the meta
    /// server: one CNOT per drawn edge (§3.2).
    ///
    /// # Errors
    ///
    /// Returns an error if the canvas is empty.
    pub fn to_topology_circuit(&self) -> Result<Circuit, QrioError> {
        if self.num_qubits == 0 {
            return Err(QrioError::InvalidRequest(
                "the topology canvas has no qubits".into(),
            ));
        }
        Ok(library::topology_circuit(self.num_qubits, &self.edges)?)
    }
}

/// A fully-assembled job request, ready to hand to the master server.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Job name (step 1 of the form).
    pub job_name: String,
    /// Docker image name for the job container (step 1).
    pub image_name: String,
    /// The user's circuit as QASM text (chosen on the front page).
    pub qasm: String,
    /// Number of qubits the job needs (step 1).
    pub num_qubits: usize,
    /// Classical resource request (step 1).
    pub resources: Resources,
    /// Requested device characteristics (step 2).
    pub requirements: DeviceRequirements,
    /// Ranking strategy chosen by name, with typed parameters (step 3). Any
    /// strategy registered in the meta server's registry is valid here —
    /// built-in or user-defined.
    pub strategy: StrategySpec,
    /// Scheduling priority: jobs with a higher priority are admitted to the
    /// cluster first by the service loop; equal priorities drain in
    /// submission order (step 1, defaults to `0`).
    pub priority: u8,
    /// Shots to execute.
    pub shots: u64,
    /// Worker-thread configuration for shot execution on the node. Purely a
    /// latency knob: results are bit-reproducible across thread counts.
    pub parallel: ParallelConfig,
    /// Optional retry policy: how many execution attempts are allowed, the
    /// backoff between them and which failure classes are retryable.
    /// `None` means every failure is terminal on the first attempt.
    pub retry: Option<RetryPolicy>,
    /// Optional virtual-time deadline in ticks after admission. A job still
    /// non-terminal when it passes fails with `DeadlineExceeded`.
    pub deadline: Option<u64>,
}

/// Builder modelling the visualizer's three-step job submission form.
#[derive(Debug, Clone, Default)]
pub struct JobRequestBuilder {
    job_name: Option<String>,
    image_name: Option<String>,
    qasm: Option<String>,
    num_qubits: Option<usize>,
    resources: Resources,
    requirements: DeviceRequirements,
    strategy: Option<StrategySpec>,
    priority: u8,
    shots: u64,
    parallel: ParallelConfig,
    retry: Option<RetryPolicy>,
    deadline: Option<u64>,
}

impl JobRequestBuilder {
    /// Start an empty form.
    pub fn new() -> Self {
        JobRequestBuilder {
            shots: 1024,
            resources: Resources::new(500, 512),
            ..Default::default()
        }
    }

    /// Step 0: choose the circuit as a QASM file. The qubit count is inferred
    /// from the circuit unless overridden later.
    ///
    /// # Errors
    ///
    /// Returns an error if the QASM does not parse.
    pub fn with_qasm(mut self, qasm_text: impl Into<String>) -> Result<Self, QrioError> {
        let text = qasm_text.into();
        let circuit = qasm::parse_qasm(&text)?;
        if self.num_qubits.is_none() {
            self.num_qubits = Some(circuit.num_qubits());
        }
        self.qasm = Some(text);
        Ok(self)
    }

    /// Step 0 (alternative): choose an in-memory circuit; it is serialized to
    /// QASM exactly as a file upload would be.
    #[must_use]
    pub fn with_circuit(mut self, circuit: &Circuit) -> Self {
        self.qasm = Some(qasm::to_qasm(circuit));
        if self.num_qubits.is_none() {
            self.num_qubits = Some(circuit.num_qubits());
        }
        self
    }

    /// Step 1: job name.
    #[must_use]
    pub fn job_name(mut self, name: impl Into<String>) -> Self {
        self.job_name = Some(name.into());
        self
    }

    /// Step 1: docker image name.
    #[must_use]
    pub fn image_name(mut self, name: impl Into<String>) -> Self {
        self.image_name = Some(name.into());
        self
    }

    /// Step 1: override the number of qubits.
    #[must_use]
    pub fn num_qubits(mut self, qubits: usize) -> Self {
        self.num_qubits = Some(qubits);
        self
    }

    /// Step 1: CPU (millicores) and memory (MiB) request.
    #[must_use]
    pub fn resources(mut self, cpu_millis: u64, memory_mib: u64) -> Self {
        self.resources = Resources::new(cpu_millis, memory_mib);
        self
    }

    /// Number of shots to execute (defaults to 1024).
    #[must_use]
    pub fn shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Step 1: scheduling priority (defaults to `0`). Higher-priority jobs
    /// are admitted to the cluster first when a batch is queued; jobs with
    /// equal priority keep their submission order.
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Worker-thread configuration for shot execution (defaults to
    /// [`ParallelConfig::auto`]). Thread count never changes results — shot
    /// RNG shards depend only on the shot count — so this is purely a
    /// latency knob.
    #[must_use]
    pub fn parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Step 2: requested device characteristics.
    #[must_use]
    pub fn requirements(mut self, requirements: DeviceRequirements) -> Self {
        self.requirements = requirements;
        self
    }

    /// Step 1 (optional): retry policy for failed execution attempts —
    /// maximum attempts, backoff shape and the retryable failure classes.
    /// Without one, the first failure is terminal.
    #[must_use]
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Step 1 (optional): virtual-time deadline, in service-loop ticks after
    /// admission. A job still non-terminal when the deadline passes fails
    /// with `DeadlineExceeded` — even mid-backoff between retries.
    #[must_use]
    pub fn deadline(mut self, ticks: u64) -> Self {
        self.deadline = Some(ticks);
        self
    }

    /// Step 3 (option A): fidelity requirement between 0 and 1 — sugar for
    /// the built-in `"fidelity"` strategy.
    #[must_use]
    pub fn fidelity_target(mut self, fidelity: f64) -> Self {
        self.strategy = Some(StrategySpec::fidelity(fidelity));
        self
    }

    /// Step 3 (option B): topology requirement from the drawing canvas —
    /// sugar for the built-in `"topology"` strategy.
    #[must_use]
    pub fn topology(mut self, designer: &TopologyDesigner) -> Self {
        self.strategy = Some(StrategySpec::topology(
            designer.edges(),
            designer.num_qubits(),
        ));
        if self.num_qubits.is_none() {
            self.num_qubits = Some(designer.num_qubits());
        }
        self
    }

    /// Step 3 (option C): the built-in `"weighted"` multi-objective strategy —
    /// canary-fidelity score blended with live queue depth and utilization.
    #[must_use]
    pub fn weighted(mut self, target: f64, fidelity_w: f64, queue_w: f64, util_w: f64) -> Self {
        self.strategy = Some(StrategySpec::weighted(target, fidelity_w, queue_w, util_w));
        self
    }

    /// Step 3 (option D): the built-in `"min_queue"` baseline — pick the
    /// least-loaded device regardless of calibration.
    #[must_use]
    pub fn min_queue(mut self) -> Self {
        self.strategy = Some(StrategySpec::min_queue());
        self
    }

    /// Step 3 (fully general): any strategy by registry name with typed
    /// parameters — the extension point for user-defined ranking plugins.
    /// Parameter validation runs in the meta server when the job is submitted.
    #[must_use]
    pub fn strategy(mut self, strategy: StrategySpec) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Finish the form and produce the job request.
    ///
    /// # Errors
    ///
    /// Returns an error if a mandatory field is missing or inconsistent
    /// (no circuit for a fidelity job, fidelity outside `[0, 1]`, ...).
    pub fn build(self) -> Result<JobRequest, QrioError> {
        let job_name = self
            .job_name
            .ok_or_else(|| QrioError::InvalidRequest("job name is required".into()))?;
        let strategy = self
            .strategy
            .ok_or_else(|| QrioError::InvalidRequest("choose a ranking strategy".into()))?;
        if strategy.name.is_empty() {
            return Err(QrioError::InvalidRequest(
                "the strategy name must not be empty".into(),
            ));
        }
        // Structural checks for the well-known built-ins; user-defined
        // strategies validate their own parameters in the meta server's
        // registry at submission time.
        let circuit_required = qrio_meta::requires_circuit(&strategy.name);
        if circuit_required {
            if let Some(f) = strategy.params.get_f64(strategy_names::PARAM_TARGET) {
                if !(0.0..=1.0).contains(&f) {
                    return Err(QrioError::InvalidRequest(format!(
                        "fidelity {f} must be between 0 and 1"
                    )));
                }
            }
        }
        let qasm = match self.qasm {
            Some(text) => text,
            None if circuit_required => {
                return Err(QrioError::InvalidRequest(format!(
                    "a circuit (QASM) is required for '{}' scheduling",
                    strategy.name
                )))
            }
            None => String::new(),
        };
        let num_qubits = self
            .num_qubits
            .ok_or_else(|| QrioError::InvalidRequest("number of qubits is required".into()))?;
        if num_qubits == 0 {
            return Err(QrioError::InvalidRequest(
                "number of qubits must be at least 1".into(),
            ));
        }
        let image_name = self
            .image_name
            .unwrap_or_else(|| format!("qrio/{job_name}:latest"));
        if self.shots == 0 {
            return Err(QrioError::InvalidRequest("shots must be at least 1".into()));
        }
        if let Some(policy) = &self.retry {
            if policy.max_attempts == 0 {
                return Err(QrioError::InvalidRequest(
                    "retry max_attempts must be at least 1 (the first attempt counts)".into(),
                ));
            }
        }
        if self.deadline == Some(0) {
            return Err(QrioError::InvalidRequest(
                "a deadline of 0 ticks would expire before the first cycle".into(),
            ));
        }
        Ok(JobRequest {
            job_name,
            image_name,
            qasm,
            num_qubits,
            resources: self.resources,
            requirements: self.requirements,
            strategy,
            priority: self.priority,
            shots: self.shots,
            parallel: self.parallel,
            retry: self.retry,
            deadline: self.deadline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::DefaultTopology;
    use qrio_circuit::library;

    #[test]
    fn fidelity_request_from_qasm() {
        let bv = library::bernstein_vazirani(5, 0b10101).unwrap();
        let request = JobRequestBuilder::new()
            .with_qasm(qasm::to_qasm(&bv))
            .unwrap()
            .job_name("bv-job")
            .resources(1000, 2048)
            .fidelity_target(0.92)
            .build()
            .unwrap();
        assert_eq!(request.job_name, "bv-job");
        assert_eq!(request.num_qubits, 5);
        assert_eq!(request.image_name, "qrio/bv-job:latest");
        assert_eq!(request.strategy.name, "fidelity");
        assert_eq!(request.strategy.params.get_f64("target"), Some(0.92));
    }

    #[test]
    fn topology_request_from_designer() {
        let mut designer = TopologyDesigner::new(4);
        designer
            .connect(0, 1)
            .unwrap()
            .connect(1, 2)
            .unwrap()
            .connect(2, 3)
            .unwrap();
        assert_eq!(designer.edges().len(), 3);
        let topo = designer.to_topology_circuit().unwrap();
        assert_eq!(topo.two_qubit_gate_count(), 3);
        let request = JobRequestBuilder::new()
            .job_name("topo-job")
            .topology(&designer)
            .build()
            .unwrap();
        assert_eq!(request.num_qubits, 4);
        assert_eq!(request.strategy.name, "topology");
        assert_eq!(
            request.strategy.params.get_edges("edges").map(<[_]>::len),
            Some(3)
        );
        assert_eq!(request.strategy.params.get_u64("qubits"), Some(4));
    }

    #[test]
    fn weighted_min_queue_and_custom_strategies_build() {
        let bv = library::bernstein_vazirani(4, 0b1010).unwrap();
        let weighted = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("w")
            .weighted(0.9, 1.0, 5.0, 1.0)
            .build()
            .unwrap();
        assert_eq!(weighted.strategy.name, "weighted");
        assert_eq!(weighted.strategy.params.get_f64("queue_weight"), Some(5.0));

        let min_queue = JobRequestBuilder::new()
            .job_name("q")
            .num_qubits(3)
            .min_queue()
            .build()
            .unwrap();
        assert_eq!(min_queue.strategy.name, "min_queue");
        assert!(min_queue.qasm.is_empty(), "min_queue needs no circuit");

        let custom = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("c")
            .strategy(StrategySpec::new("fewest-2q-gates").with_float("penalty", 2.0))
            .build()
            .unwrap();
        assert_eq!(custom.strategy.name, "fewest-2q-gates");
        assert_eq!(custom.strategy.params.get_f64("penalty"), Some(2.0));

        // A weighted job without a circuit is structurally invalid.
        assert!(JobRequestBuilder::new()
            .job_name("w2")
            .num_qubits(3)
            .weighted(0.9, 1.0, 1.0, 1.0)
            .build()
            .is_err());
        // An empty strategy name is rejected.
        assert!(JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("e")
            .strategy(StrategySpec::new(""))
            .build()
            .is_err());
    }

    #[test]
    fn parallelism_rides_through_the_builder() {
        let bv = library::bernstein_vazirani(3, 0b101).unwrap();
        let default_request = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("p-default")
            .fidelity_target(0.9)
            .build()
            .unwrap();
        assert_eq!(default_request.parallel, ParallelConfig::auto());
        let pinned = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("p-pinned")
            .fidelity_target(0.9)
            .parallelism(ParallelConfig::with_threads(4))
            .build()
            .unwrap();
        assert_eq!(pinned.parallel.threads(), 4);
    }

    #[test]
    fn priority_rides_through_the_builder() {
        let bv = library::bernstein_vazirani(3, 0b101).unwrap();
        let default_request = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("prio-default")
            .fidelity_target(0.9)
            .build()
            .unwrap();
        assert_eq!(default_request.priority, 0);
        let urgent = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("prio-urgent")
            .fidelity_target(0.9)
            .priority(200)
            .build()
            .unwrap();
        assert_eq!(urgent.priority, 200);
    }

    #[test]
    fn retry_and_deadline_ride_through_the_builder() {
        use qrio_cluster::{BackoffPolicy, RetryOn};
        let bv = library::bernstein_vazirani(3, 0b101).unwrap();
        let plain = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("plain")
            .fidelity_target(0.9)
            .build()
            .unwrap();
        assert_eq!(plain.retry, None);
        assert_eq!(plain.deadline, None);

        let tenacious = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("tenacious")
            .fidelity_target(0.9)
            .retry_policy(RetryPolicy::exponential(4, 2, 16))
            .deadline(100)
            .build()
            .unwrap();
        let policy = tenacious.retry.unwrap();
        assert_eq!(policy.max_attempts, 4);
        assert!(matches!(
            policy.backoff,
            BackoffPolicy::Exponential {
                base: 2,
                max: 16,
                ..
            }
        ));
        assert_eq!(policy.retry_on, RetryOn::all());
        assert_eq!(tenacious.deadline, Some(100));

        // Degenerate policies are rejected at the form.
        assert!(JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("zero-attempts")
            .fidelity_target(0.9)
            .retry_policy(RetryPolicy::fixed(0, 1))
            .build()
            .is_err());
        assert!(JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("zero-deadline")
            .fidelity_target(0.9)
            .deadline(0)
            .build()
            .is_err());
    }

    #[test]
    fn default_topologies_prepopulate_the_canvas() {
        let designer = TopologyDesigner::from_default(DefaultTopology::Ring7);
        assert_eq!(designer.num_qubits(), 7);
        assert_eq!(designer.edges().len(), 7);
        assert!(designer.to_topology_circuit().is_ok());
    }

    #[test]
    fn designer_validates_edges() {
        let mut designer = TopologyDesigner::new(3);
        assert!(designer.connect(0, 0).is_err());
        assert!(designer.connect(0, 7).is_err());
        designer.connect(0, 1).unwrap();
        designer.connect(1, 0).unwrap();
        assert_eq!(designer.edges().len(), 1);
        assert!(TopologyDesigner::new(0).to_topology_circuit().is_err());
    }

    #[test]
    fn builder_rejects_incomplete_or_invalid_forms() {
        let bv = library::bernstein_vazirani(3, 0b101).unwrap();
        // Missing strategy.
        assert!(JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("x")
            .build()
            .is_err());
        // Missing name.
        assert!(JobRequestBuilder::new()
            .with_circuit(&bv)
            .fidelity_target(0.9)
            .build()
            .is_err());
        // Fidelity without circuit.
        assert!(JobRequestBuilder::new()
            .job_name("x")
            .num_qubits(3)
            .fidelity_target(0.9)
            .build()
            .is_err());
        // Out-of-range fidelity.
        assert!(JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("x")
            .fidelity_target(1.4)
            .build()
            .is_err());
        // Zero shots.
        assert!(JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("x")
            .fidelity_target(0.9)
            .shots(0)
            .build()
            .is_err());
        // Bad QASM.
        assert!(JobRequestBuilder::new()
            .with_qasm("this is not qasm $")
            .is_err());
    }
}
