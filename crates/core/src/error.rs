//! Error type for the QRIO orchestrator.

use std::error::Error;
use std::fmt;

use qrio_circuit::CircuitError;
use qrio_cluster::ClusterError;
use qrio_meta::MetaError;
use qrio_scheduler::SchedulerError;

use crate::durability::DurabilityError;

/// Errors surfaced by the end-to-end QRIO orchestrator.
#[derive(Debug, Clone, PartialEq)]
pub enum QrioError {
    /// The job request was incomplete or inconsistent.
    InvalidRequest(String),
    /// The user's circuit failed to parse or build.
    Circuit(CircuitError),
    /// The cluster substrate reported an error.
    Cluster(ClusterError),
    /// The meta server reported an error.
    Meta(MetaError),
    /// The scheduler reported an error.
    Scheduler(SchedulerError),
    /// An installed [`crate::AdmissionGate`] rejected the request before any
    /// metadata or image was created.
    AdmissionRejected {
        /// The job name from the request.
        job: String,
        /// The gate's explanation (e.g. rendered lint diagnostics).
        reason: String,
    },
    /// No job with the given id was ever enqueued.
    UnknownJob(String),
    /// The job has not reached a terminal state yet, so it has no outcome.
    JobNotFinished(String),
    /// The job was cancelled before it ran, so it has no outcome.
    JobCancelled(String),
    /// The durability layer (journal, snapshot codec or recovery replay)
    /// failed. Once a journal write fails the error is sticky: every
    /// subsequent journaled operation reports it until durability is
    /// disabled, so in-memory state can never silently outrun the log.
    Durability(DurabilityError),
}

impl fmt::Display for QrioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QrioError::InvalidRequest(msg) => write!(f, "invalid job request: {msg}"),
            QrioError::Circuit(err) => write!(f, "circuit error: {err}"),
            QrioError::Cluster(err) => write!(f, "cluster error: {err}"),
            QrioError::Meta(err) => write!(f, "meta server error: {err}"),
            QrioError::Scheduler(err) => write!(f, "scheduler error: {err}"),
            QrioError::AdmissionRejected { job, reason } => {
                write!(f, "job '{job}' rejected by the admission gate: {reason}")
            }
            QrioError::UnknownJob(id) => write!(f, "no job was enqueued under id '{id}'"),
            QrioError::JobNotFinished(id) => {
                write!(f, "job '{id}' has not reached a terminal state yet")
            }
            QrioError::JobCancelled(id) => write!(f, "job '{id}' was cancelled"),
            QrioError::Durability(err) => write!(f, "durability error: {err}"),
        }
    }
}

impl Error for QrioError {}

impl From<CircuitError> for QrioError {
    fn from(err: CircuitError) -> Self {
        QrioError::Circuit(err)
    }
}

impl From<ClusterError> for QrioError {
    fn from(err: ClusterError) -> Self {
        QrioError::Cluster(err)
    }
}

impl From<MetaError> for QrioError {
    fn from(err: MetaError) -> Self {
        QrioError::Meta(err)
    }
}

impl From<SchedulerError> for QrioError {
    fn from(err: SchedulerError) -> Self {
        QrioError::Scheduler(err)
    }
}

impl From<DurabilityError> for QrioError {
    fn from(err: DurabilityError) -> Self {
        QrioError::Durability(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: QrioError = CircuitError::DuplicateQubit { qubit: 0 }.into();
        assert!(e.to_string().contains("circuit"));
        let e: QrioError = ClusterError::UnknownNode("n".into()).into();
        assert!(e.to_string().contains("cluster"));
        assert!(QrioError::InvalidRequest("missing circuit".into())
            .to_string()
            .contains("missing"));
        assert!(QrioError::UnknownJob("j1".into())
            .to_string()
            .contains("j1"));
        assert!(QrioError::JobNotFinished("j2".into())
            .to_string()
            .contains("terminal"));
        assert!(QrioError::JobCancelled("j3".into())
            .to_string()
            .contains("cancelled"));
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<QrioError>();
    }
}
