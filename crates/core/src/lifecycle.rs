//! The typed job lifecycle: ids, states, watch events and per-job status.
//!
//! The paper's QRIO workflow (§3.2–3.3) is asynchronous — a user submits a
//! job through the visualizer, the job is containerized and queued, the
//! scheduler binds it to a device later, and the user comes back to check
//! logs. This module gives that workflow a typed surface: every job is
//! identified by a [`JobId`], advances through the [`JobState`] machine
//!
//! ```text
//! Submitted → Queued → Scheduled → Running → Succeeded
//!                ↑  │       │          │ └──────→ Failed
//!                │  │       └→ Cancelled
//!                │  └→ Failed / Cancelled
//!                └─ Retrying ←─ Running   (backoff, then re-admission)
//!                       └→ Failed / Cancelled
//! ```
//!
//! and every transition is appended to a Kubernetes-style watch log of
//! [`JobEvent`]s carrying the virtual timestamp, the node involved and the
//! transition reason. [`crate::Qrio`] owns the store; this module owns the
//! types and the bookkeeping invariants.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use qrio_cluster::ScheduleDecision;

use crate::error::QrioError;

/// The identity of one enqueued job — returned by [`crate::Qrio::enqueue`]
/// and accepted by every lifecycle query ([`crate::Qrio::status`],
/// [`crate::Qrio::outcome`], [`crate::Qrio::cancel`], ...).
///
/// A `JobId` wraps the unique job name from the request, so deterministic
/// callers (tests, simulators) can also reconstruct one with [`JobId::new`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[must_use = "a JobId is the only handle to the enqueued job's lifecycle"]
pub struct JobId(String);

impl JobId {
    /// The id of the job with the given (unique) name.
    pub fn new(name: impl Into<String>) -> Self {
        JobId(name.into())
    }

    /// The underlying job name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for JobId {
    fn from(name: &str) -> Self {
        JobId::new(name)
    }
}

impl From<String> for JobId {
    fn from(name: String) -> Self {
        JobId(name)
    }
}

/// One state of the job lifecycle.
///
/// States are flat (no payload) so they can be compared, stored in
/// transition histories and checked against the legality table
/// ([`JobState::can_transition_to`]); the node and reason of the current
/// state live in [`JobStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobState {
    /// Metadata uploaded and the job containerized; not yet admitted.
    Submitted,
    /// Waiting in the admission queue for a scheduling cycle.
    Queued,
    /// Bound to a device, waiting for its turn on that device's queue.
    Scheduled,
    /// Executing on its device.
    Running,
    /// A retryable failure is waiting out its backoff before re-admission.
    Retrying,
    /// Finished successfully; results and logs are available.
    Succeeded,
    /// Reached a terminal failure (unschedulable, execution error, ...).
    Failed,
    /// Cancelled by the user before it started running.
    Cancelled,
}

impl JobState {
    /// Every state, in lifecycle order.
    pub const ALL: [JobState; 8] = [
        JobState::Submitted,
        JobState::Queued,
        JobState::Scheduled,
        JobState::Running,
        JobState::Retrying,
        JobState::Succeeded,
        JobState::Failed,
        JobState::Cancelled,
    ];

    /// Whether the state is terminal (no further transitions are legal).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Succeeded | JobState::Failed | JobState::Cancelled
        )
    }

    /// The legality table of the state machine: whether a transition from
    /// `self` to `next` may ever be observed.
    ///
    /// `Scheduled → Scheduled` is the rebinding arc (a waiting job migrates
    /// to another device after calibration drift or an outage).
    /// `Running → Retrying → Queued` is the retry arc: a retryable failure
    /// waits out its backoff in `Retrying`, then re-enters the admission
    /// queue. A job in `Retrying` may still be cancelled, or fail outright
    /// when its deadline expires mid-backoff.
    pub fn can_transition_to(self, next: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, next),
            (Submitted, Queued)
                | (Queued, Scheduled)
                | (Queued, Failed)
                | (Queued, Cancelled)
                | (Scheduled, Scheduled)
                | (Scheduled, Running)
                | (Scheduled, Cancelled)
                | (Running, Succeeded)
                | (Running, Failed)
                | (Running, Retrying)
                | (Retrying, Queued)
                | (Retrying, Failed)
                | (Retrying, Cancelled)
        )
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The states are plain identifiers, so Debug and Display coincide.
        write!(f, "{self:?}")
    }
}

/// One entry of the watch log: a job transitioned between states at a
/// virtual timestamp, possibly bound to a node and carrying a reason.
///
/// Events are totally ordered by `seq` (their index in the log), so
/// [`crate::Qrio::watch`] resumes from any cursor without missing or
/// duplicating entries — the resourceVersion idiom of a Kubernetes watch.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEvent {
    /// Position of the event in the log (0-based, dense).
    pub seq: u64,
    /// Virtual timestamp: the service-loop tick the transition happened on
    /// (`0` for transitions before the first tick).
    pub at: u64,
    /// The job that transitioned.
    pub job: JobId,
    /// State before the transition; `None` for the initial `Submitted` event.
    pub from: Option<JobState>,
    /// State after the transition.
    pub to: JobState,
    /// Node involved (bound, executing, or previously bound), when any.
    pub node: Option<String>,
    /// Why the transition happened (failure reasons, cancellation causes,
    /// rebind explanations); `None` for unremarkable progress.
    pub reason: Option<String>,
}

/// A point-in-time snapshot of one job's lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Current state.
    pub state: JobState,
    /// Device the job is (or was last) bound to, when any.
    pub node: Option<String>,
    /// Reason attached to the latest transition, when any.
    pub reason: Option<String>,
    /// Scheduling priority from the request (higher is more urgent).
    pub priority: u8,
    /// Every state the job has entered, with its virtual timestamp.
    pub history: Vec<(u64, JobState)>,
}

/// What one [`crate::Qrio::tick`] service cycle did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickReport {
    /// The virtual timestamp of this cycle (1-based).
    pub tick: u64,
    /// Jobs admitted and bound to a device this cycle.
    pub scheduled: Vec<JobId>,
    /// Jobs left in the admission queue because no device can host them
    /// *right now* (busy resources, cordoned nodes) but one may later.
    pub deferred: Vec<JobId>,
    /// Jobs that reached `Failed` during admission (no device can ever host
    /// them, or every candidate failed scoring).
    pub failed: Vec<JobId>,
    /// Jobs executed to a terminal state this cycle (one per device).
    pub completed: Vec<JobId>,
    /// Jobs whose execution failed retryably this cycle: they entered
    /// `Retrying` and will re-queue once their backoff elapses.
    pub retried: Vec<JobId>,
    /// Jobs that blew their deadline this cycle and failed with
    /// `DeadlineExceeded` (from `Queued` or mid-backoff in `Retrying`).
    pub expired: Vec<JobId>,
}

impl TickReport {
    /// Whether the cycle changed any job's state. A report of only deferred
    /// jobs means the loop is at a fixed point: without external changes
    /// (completions freeing resources happen *within* a tick) another tick
    /// would do exactly the same.
    pub fn made_progress(&self) -> bool {
        !(self.scheduled.is_empty()
            && self.failed.is_empty()
            && self.completed.is_empty()
            && self.retried.is_empty()
            && self.expired.is_empty())
    }

    /// Whether the cycle found nothing at all to do.
    pub fn is_idle(&self) -> bool {
        !self.made_progress() && self.deferred.is_empty()
    }
}

/// Internal per-job record: the public status plus the artifacts `outcome()`
/// needs (the scheduling decision and the original failure error).
#[derive(Debug, Clone)]
pub(crate) struct Tracked {
    pub(crate) status: JobStatus,
    pub(crate) decision: Option<ScheduleDecision>,
    pub(crate) failure: Option<QrioError>,
    /// Execution attempts already consumed (0 before the first run).
    pub(crate) attempt: u32,
    /// Earliest tick a `Retrying` job may re-queue (its backoff horizon);
    /// meaningless outside `Retrying`.
    pub(crate) not_before: u64,
    /// Absolute virtual-time deadline (`admission clock + spec.deadline`),
    /// when the request carried one.
    pub(crate) deadline_at: Option<u64>,
}

/// The lifecycle store owned by [`crate::Qrio`]: job records, the watch log,
/// the admission queue and the per-device execution queues.
#[derive(Debug, Clone, Default)]
pub(crate) struct LifecycleStore {
    /// Virtual clock, incremented once per service-loop tick.
    pub(crate) clock: u64,
    /// The watch log, append-only; `seq` equals the index.
    pub(crate) events: Vec<JobEvent>,
    /// Per-job records, keyed by job name (sorted, so bulk listings are
    /// deterministic).
    pub(crate) jobs: BTreeMap<String, Tracked>,
    /// Monotonic admission sequence: the FIFO tie-break within a priority.
    /// `pub(crate)` so durability snapshots can persist and restore it.
    pub(crate) admit_seq: u64,
    /// Admission queue entries `(priority, admit_seq, job name)`, kept
    /// sorted in draining order (priority descending, sequence ascending)
    /// on insert, so every tick reads it without re-sorting. `pub(crate)`
    /// for durability snapshots.
    pub(crate) pending: Vec<(u8, u64, String)>,
    /// Bound jobs waiting for their device, FIFO per device.
    pub(crate) device_queues: BTreeMap<String, VecDeque<String>>,
    /// Dead-letter queue: names of jobs whose retry policy was exhausted,
    /// in the order they were routed here. `pub(crate)` for durability
    /// snapshots.
    pub(crate) dead_letters: Vec<String>,
}

impl LifecycleStore {
    /// Register a freshly-submitted job and admit it to the queue, emitting
    /// the `Submitted` and `Queued` events. A request deadline is anchored
    /// to the admission clock: `deadline_at = clock + deadline`.
    pub(crate) fn admit_new(&mut self, name: &str, priority: u8, deadline: Option<u64>) {
        self.jobs.insert(
            name.to_string(),
            Tracked {
                status: JobStatus {
                    state: JobState::Submitted,
                    node: None,
                    reason: None,
                    priority,
                    history: Vec::new(),
                },
                decision: None,
                failure: None,
                attempt: 0,
                not_before: 0,
                deadline_at: deadline.map(|d| self.clock.saturating_add(d)),
            },
        );
        self.record(name, JobState::Submitted, None, None);
        self.record(name, JobState::Queued, None, None);
        self.enqueue_pending(name, priority);
    }

    /// Insert a job into the admission queue at its draining position with a
    /// fresh admission sequence. Equal-priority jobs append (their sequence
    /// is the largest so far), so the common case is O(1); a higher-priority
    /// job shifts past the lower-priority tail. Used both at first admission
    /// and when a `Retrying` job re-queues after its backoff.
    pub(crate) fn enqueue_pending(&mut self, name: &str, priority: u8) {
        let seq = self.admit_seq;
        self.admit_seq += 1;
        let key = (std::cmp::Reverse(priority), seq);
        let position = self
            .pending
            .partition_point(|(p, s, _)| (std::cmp::Reverse(*p), *s) < key);
        self.pending
            .insert(position, (priority, seq, name.to_string()));
    }

    /// Append a transition to the watch log and fold it into the job's
    /// status. The caller guarantees legality (debug-asserted here).
    pub(crate) fn record(
        &mut self,
        name: &str,
        to: JobState,
        node: Option<String>,
        reason: Option<String>,
    ) {
        let tracked = self.jobs.get_mut(name).expect("recorded jobs are tracked");
        let from = tracked.status.history.last().map(|(_, state)| *state);
        debug_assert!(
            from.map_or(true, |from| from.can_transition_to(to)),
            "illegal transition {from:?} -> {to:?} for job '{name}'"
        );
        tracked.status.state = to;
        if node.is_some() {
            tracked.status.node.clone_from(&node);
        }
        tracked.status.reason.clone_from(&reason);
        tracked.status.history.push((self.clock, to));
        let seq = self.events.len() as u64;
        self.events.push(JobEvent {
            seq,
            at: self.clock,
            job: JobId::new(name),
            from,
            to,
            node,
            reason,
        });
    }

    /// The admission queue in draining order: priority descending, then
    /// admission sequence ascending — a deterministic total order,
    /// maintained on insert.
    pub(crate) fn pending_in_order(&self) -> Vec<String> {
        self.pending
            .iter()
            .map(|(_, _, name)| name.clone())
            .collect()
    }

    /// Whether any job is waiting for admission.
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Drop a job from the admission queue (scheduled, failed or cancelled).
    pub(crate) fn remove_pending(&mut self, name: &str) {
        self.pending.retain(|(_, _, queued)| queued != name);
    }

    /// Drop a job from whichever device queue holds it, pruning the queue
    /// when it empties.
    pub(crate) fn remove_from_device_queues(&mut self, name: &str) {
        for queue in self.device_queues.values_mut() {
            queue.retain(|queued| queued != name);
        }
        self.device_queues.retain(|_, queue| !queue.is_empty());
    }

    /// Whether any device queue still holds work.
    pub(crate) fn has_bound_work(&self) -> bool {
        self.device_queues.values().any(|queue| !queue.is_empty())
    }

    /// Whether any job is sitting in `Retrying`, waiting out its backoff.
    pub(crate) fn has_waiting_retries(&self) -> bool {
        self.jobs
            .values()
            .any(|tracked| tracked.status.state == JobState::Retrying)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_wrap_names() {
        let id = JobId::new("bv-7");
        assert_eq!(id.as_str(), "bv-7");
        assert_eq!(id.to_string(), "bv-7");
        assert_eq!(JobId::from("bv-7"), id);
        assert_eq!(JobId::from(String::from("bv-7")), id);
    }

    #[test]
    fn terminal_states_allow_no_transitions() {
        for state in JobState::ALL {
            if state.is_terminal() {
                for next in JobState::ALL {
                    assert!(
                        !state.can_transition_to(next),
                        "{state} is terminal but allows -> {next}"
                    );
                }
            }
        }
        assert!(JobState::Succeeded.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }

    #[test]
    fn legality_table_matches_the_documented_machine() {
        use JobState::*;
        assert!(Submitted.can_transition_to(Queued));
        assert!(Queued.can_transition_to(Scheduled));
        assert!(Queued.can_transition_to(Failed));
        assert!(Queued.can_transition_to(Cancelled));
        assert!(Scheduled.can_transition_to(Scheduled), "rebind arc");
        assert!(Scheduled.can_transition_to(Running));
        assert!(Scheduled.can_transition_to(Cancelled));
        assert!(Running.can_transition_to(Succeeded));
        assert!(Running.can_transition_to(Failed));
        // The retry arcs: a retryable failure backs off in Retrying, then
        // re-queues; mid-backoff it may still be cancelled or expire.
        assert!(Running.can_transition_to(Retrying));
        assert!(Retrying.can_transition_to(Queued));
        assert!(Retrying.can_transition_to(Failed));
        assert!(Retrying.can_transition_to(Cancelled));
        // A few forbidden arcs that bugs would most plausibly introduce.
        assert!(!Submitted.can_transition_to(Running));
        assert!(!Queued.can_transition_to(Running));
        assert!(!Running.can_transition_to(Cancelled));
        assert!(!Running.can_transition_to(Queued));
        assert!(!Succeeded.can_transition_to(Failed));
        assert!(!Retrying.can_transition_to(Running), "must re-queue first");
        assert!(!Retrying.can_transition_to(Scheduled));
        assert!(!Queued.can_transition_to(Retrying));
        // A bound job can only fail *through* Running — failing a Scheduled
        // job without an execution attempt is outside the machine.
        assert!(!Scheduled.can_transition_to(Failed));
    }

    #[test]
    fn pending_drains_by_priority_then_fifo() {
        let mut store = LifecycleStore::default();
        store.admit_new("low-first", 1, None);
        store.admit_new("high", 9, None);
        store.admit_new("low-second", 1, None);
        store.admit_new("mid", 5, None);
        assert_eq!(
            store.pending_in_order(),
            vec!["high", "mid", "low-first", "low-second"]
        );
        store.remove_pending("mid");
        assert_eq!(
            store.pending_in_order(),
            vec!["high", "low-first", "low-second"]
        );
    }

    #[test]
    fn events_are_densely_sequenced() {
        let mut store = LifecycleStore::default();
        store.admit_new("a", 0, None);
        store.admit_new("b", 0, None);
        for (idx, event) in store.events.iter().enumerate() {
            assert_eq!(event.seq, idx as u64);
        }
        assert_eq!(store.events.len(), 4, "Submitted + Queued per job");
        assert_eq!(store.events[0].from, None);
        assert_eq!(store.events[0].to, JobState::Submitted);
        assert_eq!(store.events[1].from, Some(JobState::Submitted));
        assert_eq!(store.events[1].to, JobState::Queued);
    }

    #[test]
    fn tick_report_progress_semantics() {
        let mut report = TickReport::default();
        assert!(report.is_idle());
        assert!(!report.made_progress());
        report.deferred.push(JobId::new("waiting"));
        assert!(!report.made_progress(), "deferral alone is a fixed point");
        assert!(!report.is_idle());
        report.scheduled.push(JobId::new("bound"));
        assert!(report.made_progress());
    }
}
