//! # qrio
//!
//! An open-source **Quantum Resource Infrastructure Orchestrator** — a Rust
//! reproduction of *Empowering the Quantum Cloud User with QRIO* (IISWC 2024).
//!
//! QRIO lets a quantum-cloud user submit a job (a QASM circuit) together with
//! a ranking strategy of their choice — a fidelity requirement, a desired
//! device topology, a weighted multi-objective blend, a min-queue baseline,
//! or any user-registered [`qrio_meta::RankingStrategy`] — plus optional
//! bounds on device characteristics, and automatically selects and executes
//! the job on the most suitable device of a heterogeneous fleet.
//!
//! This crate is the facade that wires the substrates together:
//!
//! * [`visualizer`] — the job-submission form and topology-drawing canvas
//!   (§3.2 of the paper),
//! * [`master_server`] — job containerization, image push and Job YAML
//!   generation (§3.3),
//! * [`SimJobRunner`] — the per-node executor that transpiles and runs the
//!   circuit on its assigned device (the generated runner script of §3.3),
//! * [`Qrio`] — the end-to-end orchestrator over the Kubernetes-like cluster
//!   substrate, the meta server and the scheduler, exposing a non-blocking
//!   job lifecycle ([`Qrio::enqueue`] → [`Qrio::tick`] → [`Qrio::outcome`])
//!   with typed states and watch events ([`lifecycle`]),
//! * [`durability`] — opt-in crash recovery: every mutation is journaled to
//!   a `qrio-journal` write-ahead log before it is acknowledged
//!   ([`Qrio::enable_durability`]), and [`Qrio::recover`] rebuilds the exact
//!   pre-crash orchestrator from snapshot + replay,
//! * [`experiments`] — the harness that regenerates every table and figure of
//!   the paper's evaluation (§4).
//!
//! # Examples
//!
//! ```
//! use qrio::{JobRequestBuilder, Qrio};
//! use qrio_backend::{topology, Backend};
//! use qrio_circuit::library;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Vendor: stand up a two-device cloud.
//! let mut qrio = Qrio::new();
//! qrio.add_device(Backend::uniform("clean", topology::line(8), 0.001, 0.01))?;
//! qrio.add_device(Backend::uniform("noisy", topology::line(8), 0.05, 0.4))?;
//!
//! // User: submit a Bernstein–Vazirani job with a fidelity requirement.
//! let bv = library::bernstein_vazirani(5, 0b10110)?;
//! let request = JobRequestBuilder::new()
//!     .with_circuit(&bv)
//!     .job_name("bv-demo")
//!     .fidelity_target(0.9)
//!     .shots(256)
//!     .build()?;
//! let outcome = qrio.submit(&request)?;
//! assert_eq!(outcome.decision.node, "clean");
//!
//! // The same pipeline, non-blocking: enqueue returns a JobId immediately,
//! // the service loop drives the typed state machine, and the outcome is
//! // read back once the job is terminal.
//! let async_request = JobRequestBuilder::new()
//!     .with_circuit(&bv)
//!     .job_name("bv-async")
//!     .fidelity_target(0.9)
//!     .shots(256)
//!     .build()?;
//! let id = qrio.enqueue(&async_request)?;
//! assert_eq!(qrio.status(&id)?, qrio::JobState::Queued);
//! qrio.run_until_idle();
//! assert_eq!(qrio.status(&id)?, qrio::JobState::Succeeded);
//! assert_eq!(qrio.outcome(&id)?.decision.node, "clean");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod control;
pub mod durability;
mod error;
pub mod experiments;
pub mod lifecycle;
pub mod master_server;
mod orchestrator;
mod runner;
pub mod visualizer;

pub use breaker::{BreakerAction, BreakerBoard, BreakerConfig, BreakerEvent, BreakerState};
pub use control::{ControlPlane, ObservedNode, TransportMode};
pub use durability::{
    Command, DurabilityConfig, DurabilityError, RecoveryReport, ReplayCheckpoint,
};
pub use error::QrioError;
pub use lifecycle::{JobEvent, JobId, JobState, JobStatus, TickReport};
pub use master_server::{containerize, ContainerizedJob};
pub use orchestrator::{AdmissionGate, JobOutcome, Qrio};
pub use qrio_meta::{DeviceTelemetry, FidelityRankingConfig};
pub use runner::SimJobRunner;
pub use visualizer::{JobRequest, JobRequestBuilder, TopologyDesigner};
