//! The orchestrator side of the networked control plane.
//!
//! [`ControlPlane`] is the only path between the reconcile loop and the
//! devices: every piece of device work is encoded as a versioned
//! [`qrio_proto::Envelope`], crosses a [`qrio_agent::Transport`], and comes
//! back as a [`qrio_proto::NodeReport`]. It keeps the two reconcile tables
//! the tick loop diffs:
//!
//! * the **desired state** lives in the lifecycle device queues (job →
//!   binding, owned by the orchestrator), and
//! * the **observed state** lives here — the last decoded report per node,
//!   folded in as report envelopes are drained off the transport.
//!
//! With [`InProcTransport`] every command is answered synchronously, so the
//! observed table is always current. With
//! [`qrio_agent::ChannelTransport`] fire-and-forget acknowledgements may lag
//! behind real worker threads; they converge when the next blocking
//! round-trip or end-of-tick [`ControlPlane::drain`] pulls them in.

use std::collections::BTreeMap;
use std::fmt;

use qrio_agent::{AgentError, InProcTransport, NodeAgent, Transport};
use qrio_cluster::{AttemptVerdict, ClusterError, ExecutionOutcome, WorkOrder};
use qrio_proto::{Envelope, NodeCommand, NodeReport, Payload, RunPayload, RunVerdict};

/// Which transport carries control-plane frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Agents run in the orchestrator's thread; fully deterministic.
    InProc,
    /// Agents run on real worker threads over `mpsc` channels.
    Threaded {
        /// Number of worker threads (clamped to at least one).
        threads: usize,
    },
}

/// The last report observed from one node, with the envelope bookkeeping
/// needed to detect stale or out-of-order data.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedNode {
    /// Report-direction sequence number of the envelope.
    pub seq: u64,
    /// Virtual timestamp the agent echoed (the tick the command was sent).
    pub virtual_ts: u64,
    /// The decoded report payload.
    pub report: NodeReport,
}

/// The orchestrator's endpoint of the control plane: per-node command
/// sequence counters, the observed-state table, and the transport itself.
pub struct ControlPlane {
    transport: Box<dyn Transport>,
    mode: TransportMode,
    command_seq: BTreeMap<String, u64>,
    observed: BTreeMap<String, ObservedNode>,
    trace: Option<Vec<u8>>,
}

impl fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ControlPlane")
            .field("mode", &self.transport.mode())
            .field("nodes", &self.transport.node_names())
            .field("observed", &self.observed)
            .finish()
    }
}

impl ControlPlane {
    /// A control plane over the default deterministic in-process transport.
    pub fn new_in_proc() -> Self {
        ControlPlane {
            transport: Box::new(InProcTransport::new()),
            mode: TransportMode::InProc,
            command_seq: BTreeMap::new(),
            observed: BTreeMap::new(),
            trace: None,
        }
    }

    /// Replace the transport. All agents and sequence counters are dropped;
    /// the caller re-registers agents for every node afterwards.
    pub fn install(&mut self, transport: Box<dyn Transport>, mode: TransportMode) {
        self.transport = transport;
        self.mode = mode;
        self.command_seq.clear();
        self.observed.clear();
    }

    /// The active transport mode.
    pub fn mode(&self) -> TransportMode {
        self.mode
    }

    /// Short name of the active transport (`"in-proc"` / `"threaded"`).
    pub fn mode_name(&self) -> &'static str {
        self.transport.mode()
    }

    /// Start recording every frame crossing the transport (both directions)
    /// into an in-memory trace, for the `qrio-lint` envelope lints.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Take the recorded trace (concatenated encoded envelopes), leaving
    /// recording enabled.
    pub fn take_trace(&mut self) -> Vec<u8> {
        match self.trace.as_mut() {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// The observed-state table: last decoded report per node.
    pub fn observed(&self) -> &BTreeMap<String, ObservedNode> {
        &self.observed
    }

    /// Hand a freshly built agent to the transport.
    ///
    /// # Errors
    ///
    /// Fails when the transport's workers are gone.
    pub fn register_agent(&mut self, agent: NodeAgent) -> Result<(), AgentError> {
        self.transport.register(agent)
    }

    /// Encode and send one command to `node`, stamping the next per-node
    /// sequence number and the current virtual time.
    ///
    /// # Errors
    ///
    /// Fails when the node is unknown to the transport or its workers are
    /// gone.
    pub fn send_command(
        &mut self,
        node: &str,
        virtual_ts: u64,
        command: NodeCommand,
    ) -> Result<(), AgentError> {
        let seq = self.command_seq.entry(node.to_string()).or_insert(0);
        let envelope = Envelope {
            seq: *seq,
            node_id: node.to_string(),
            virtual_ts,
            payload: Payload::Command(command),
        };
        *seq += 1;
        let frame = envelope.encode();
        if let Some(trace) = self.trace.as_mut() {
            trace.extend_from_slice(&frame);
        }
        self.transport.send(frame)
    }

    /// Pull the next report off the transport, fold it into the observed
    /// table, and return it. `wait` blocks only while a command is still
    /// unanswered; an idle transport yields `Ok(None)` immediately.
    ///
    /// # Errors
    ///
    /// Fails when the transport's workers are gone or a frame is corrupt.
    pub fn pump(&mut self, wait: bool) -> Result<Option<Envelope>, AgentError> {
        let Some(frame) = self.transport.recv(wait)? else {
            return Ok(None);
        };
        if let Some(trace) = self.trace.as_mut() {
            trace.extend_from_slice(&frame);
        }
        let (envelope, _) = Envelope::decode(&frame)?;
        if let Payload::Report(report) = &envelope.payload {
            self.observed.insert(
                envelope.node_id.clone(),
                ObservedNode {
                    seq: envelope.seq,
                    virtual_ts: envelope.virtual_ts,
                    report: report.clone(),
                },
            );
        }
        Ok(Some(envelope))
    }

    /// Drain all immediately available reports into the observed table.
    /// In threaded mode acknowledgements lag the commands that caused them;
    /// this is the convergence point where stale observations catch up.
    pub fn drain(&mut self) {
        while let Ok(Some(_)) = self.pump(false) {}
    }

    /// Execute one prepared [`WorkOrder`] over the wire: encode a `Run`
    /// command, send it, and block until the matching `Phase` report comes
    /// back (draining unrelated acknowledgements into the observed table
    /// along the way).
    ///
    /// # Errors
    ///
    /// Surfaces transport failures as [`ClusterError::ExecutionFailed`];
    /// the protocol itself cannot fail an attempt (rejections travel inside
    /// the verdict).
    pub fn run(&mut self, order: &WorkOrder, now: u64) -> Result<AttemptVerdict, ClusterError> {
        let wire_error = |err: AgentError| ClusterError::ExecutionFailed {
            job: order.job.clone(),
            reason: format!("control plane: {err}"),
        };
        let payload = RunPayload {
            job: order.job.clone(),
            attempt: order.attempt,
            image_name: order.image.name().to_string(),
            image_files: order
                .image
                .files()
                .map(|(path, contents)| (path.to_string(), contents.to_string()))
                .collect(),
            qasm: order.spec.qasm.clone(),
            num_qubits: order.spec.num_qubits as u64,
            shots: order.spec.shots,
            threads: order.spec.threads as u64,
        };
        self.send_command(&order.node, now, NodeCommand::Run { payload })
            .map_err(wire_error)?;
        loop {
            let Some(envelope) = self.pump(true).map_err(wire_error)? else {
                return Err(wire_error(AgentError::Disconnected));
            };
            let Payload::Report(NodeReport::Phase {
                job,
                attempt,
                verdict,
            }) = envelope.payload
            else {
                continue; // an acknowledgement for an earlier command
            };
            if job != order.job {
                continue; // a stale phase report from a previous attempt
            }
            debug_assert_eq!(attempt, order.attempt);
            return Ok(match verdict {
                RunVerdict::Succeeded {
                    counts,
                    fidelity,
                    logs,
                } => AttemptVerdict::Completed(ExecutionOutcome {
                    counts,
                    fidelity,
                    logs,
                }),
                RunVerdict::Failed { reason } => AttemptVerdict::Failed(reason),
                RunVerdict::Faulted { kind } => {
                    AttemptVerdict::Faulted(qrio_agent::fault_kind_from_wire(kind))
                }
                RunVerdict::Rejected { reason } => {
                    AttemptVerdict::Failed(format!("rejected by node agent: {reason}"))
                }
            });
        }
    }
}

impl Default for ControlPlane {
    fn default() -> Self {
        ControlPlane::new_in_proc()
    }
}
