//! `qrio-journal` — an append-only write-ahead log with a versioned,
//! length-prefixed, checksummed binary record format.
//!
//! This crate is the durability substrate for the QRIO orchestrator: every
//! acknowledged mutation is framed as a [`Record`] and appended to a
//! [`Journal`] file, and periodic snapshot records bound how much tail must be
//! replayed after a crash. The crate is deliberately *domain-agnostic*: record
//! kinds and payload codecs are defined by the embedding application (see the
//! `durability` module in the `qrio` crate), while this layer owns framing,
//! checksumming, torn-tail detection and file management.
//!
//! # Layers
//!
//! * [`codec`] — [`ByteWriter`]/[`ByteReader`] primitives and the CRC-32
//!   checksum shared by every payload codec.
//! * [`wal`] — the on-disk format: file header, record framing,
//!   [`scan_bytes`] validation with [`TornTail`] reporting, and the
//!   [`Journal`] append handle.
//!
//! # Crash semantics
//!
//! Appends are written through to the OS immediately; [`Journal::sync`]
//! additionally forces them to stable storage. A process crash can therefore
//! leave at most one torn record at the end of the file, which
//! [`Journal::open`] truncates away — exactly the write-ahead-log contract: a
//! record that never finished writing was never acknowledged to a caller.
//! Note that QRIO's virtual-time simulation harness never calls `sync` (a
//! simulated crash is a process-level drop, not a power loss), so power-loss
//! durability in a real deployment requires a `sync` per acknowledgement
//! batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod wal;

pub use codec::{crc32, ByteReader, ByteWriter, CodecError};
pub use error::JournalError;
pub use wal::{
    encode_record, header_bytes, looks_like_journal, scan_bytes, scan_file, Journal, Record,
    ScanReport, TornTail, FORMAT_VERSION, HEADER_LEN, MAGIC,
};
