//! The write-ahead log file: header framing, record framing, torn-tail scan
//! and append.
//!
//! # On-disk layout
//!
//! ```text
//! +----------------------------+
//! | magic  "QRIOJRNL"  (8 B)   |  file header
//! | format version u16 (2 B)   |
//! +----------------------------+
//! | kind      u8       (1 B)   |  record 0
//! | version   u16      (2 B)   |
//! | length    u32      (4 B)   |  payload length in bytes
//! | payload   [u8; length]     |
//! | crc32     u32      (4 B)   |  over kind..payload
//! +----------------------------+
//! | ...                        |  record 1, 2, ...
//! ```
//!
//! All integers are little-endian. The journal itself is agnostic to record
//! *meaning*: `kind` and `version` are opaque at this layer and interpreted by
//! the embedding application (see `qrio`'s `durability` module).
//!
//! # Torn tails
//!
//! A crash mid-append leaves trailing bytes that do not form a complete,
//! checksum-valid record. [`scan_bytes`] stops at the first such defect and
//! reports it as a [`TornTail`] alongside every record that *did* validate;
//! [`Journal::open`] additionally truncates the file back to the last valid
//! record so subsequent appends start from a clean prefix. Losing a torn tail
//! is correct write-ahead-log semantics: a record that was never fully written
//! was never acknowledged.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{crc32, ByteWriter};
use crate::error::JournalError;

/// The 8-byte magic every journal file starts with.
pub const MAGIC: [u8; 8] = *b"QRIOJRNL";

/// The file-format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Bytes occupied by the file header (magic + format version).
pub const HEADER_LEN: usize = MAGIC.len() + 2;

/// Bytes of record framing before the payload (kind + version + length).
const RECORD_PREFIX_LEN: usize = 1 + 2 + 4;

/// Bytes of the trailing checksum.
const RECORD_CRC_LEN: usize = 4;

/// One framed record: an opaque payload tagged with an application-defined
/// kind and per-kind version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Application-defined record kind.
    pub kind: u8,
    /// Application-defined codec version for this kind.
    pub version: u16,
    /// The record payload, opaque at the journal layer.
    pub payload: Vec<u8>,
}

impl Record {
    /// Convenience constructor.
    pub fn new(kind: u8, version: u16, payload: Vec<u8>) -> Self {
        Record {
            kind,
            version,
            payload,
        }
    }
}

/// Details of an invalid trailing region found by [`scan_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset (from the start of the file) where the invalid region
    /// begins — equivalently, the length of the valid prefix.
    pub offset: u64,
    /// How many trailing bytes are invalid.
    pub trailing: u64,
    /// A human-readable, deterministic description of the defect.
    pub reason: String,
}

/// The outcome of scanning a journal's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Every record that validated, in file order.
    pub records: Vec<Record>,
    /// Length in bytes of the valid prefix (header plus whole records).
    pub valid_len: u64,
    /// Present when the file ends in bytes that do not form a valid record.
    pub torn: Option<TornTail>,
}

/// The file header as bytes — useful for building fixtures and for sniffing
/// whether an arbitrary file is a journal.
pub fn header_bytes() -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..MAGIC.len()].copy_from_slice(&MAGIC);
    header[MAGIC.len()..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header
}

/// True when `bytes` starts with the journal magic.
pub fn looks_like_journal(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Encode one record into its framed byte representation (without the file
/// header).
pub fn encode_record(record: &Record) -> Vec<u8> {
    let mut writer = ByteWriter::new();
    writer.put_u8(record.kind);
    writer.put_u16(record.version);
    writer.put_u32(record.payload.len() as u32);
    writer.put_raw(&record.payload);
    let crc = crc32(&writer.clone().into_bytes());
    writer.put_u32(crc);
    writer.into_bytes()
}

/// Scan a journal's full byte image: validate the header, then every record
/// in order, stopping at the first torn or corrupt region.
///
/// Header defects (missing magic, unsupported format version) are hard
/// [`JournalError`]s — there is nothing recoverable in such a file. Record
/// defects are soft: the scan succeeds with the valid prefix and a
/// [`TornTail`] describing the defect.
pub fn scan_bytes(bytes: &[u8]) -> Result<ScanReport, JournalError> {
    if bytes.len() < HEADER_LEN || bytes[..MAGIC.len()] != MAGIC {
        return Err(JournalError::NotAJournal {
            detail: format!(
                "expected {HEADER_LEN}-byte header starting with magic {:?}",
                String::from_utf8_lossy(&MAGIC)
            ),
        });
    }
    let found = u16::from_le_bytes([bytes[MAGIC.len()], bytes[MAGIC.len() + 1]]);
    if found > FORMAT_VERSION {
        return Err(JournalError::UnsupportedFormat {
            found,
            supported: FORMAT_VERSION,
        });
    }

    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    let torn = loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break None;
        }
        if remaining < RECORD_PREFIX_LEN {
            break Some(format!(
                "truncated record framing: {remaining} bytes left, {RECORD_PREFIX_LEN} needed"
            ));
        }
        let kind = bytes[pos];
        let version = u16::from_le_bytes([bytes[pos + 1], bytes[pos + 2]]);
        let payload_len = u32::from_le_bytes([
            bytes[pos + 3],
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
        ]) as usize;
        let full_len = RECORD_PREFIX_LEN + payload_len + RECORD_CRC_LEN;
        if remaining < full_len {
            break Some(format!(
                "truncated record body: {remaining} bytes left, {full_len} needed"
            ));
        }
        let body_end = pos + RECORD_PREFIX_LEN + payload_len;
        let stored_crc = u32::from_le_bytes([
            bytes[body_end],
            bytes[body_end + 1],
            bytes[body_end + 2],
            bytes[body_end + 3],
        ]);
        let computed_crc = crc32(&bytes[pos..body_end]);
        if stored_crc != computed_crc {
            break Some(format!(
                "checksum mismatch: stored {stored_crc:#010x}, computed {computed_crc:#010x}"
            ));
        }
        records.push(Record {
            kind,
            version,
            payload: bytes[pos + RECORD_PREFIX_LEN..body_end].to_vec(),
        });
        pos += full_len;
    };

    Ok(ScanReport {
        records,
        valid_len: pos as u64,
        torn: torn.map(|reason| TornTail {
            offset: pos as u64,
            trailing: (bytes.len() - pos) as u64,
            reason,
        }),
    })
}

/// Scan a journal file on disk without modifying it.
pub fn scan_file(path: &Path) -> Result<ScanReport, JournalError> {
    let bytes = std::fs::read(path).map_err(|e| JournalError::io("read", &e))?;
    scan_bytes(&bytes)
}

/// An open, append-position journal file.
///
/// Appends are written straight through to the OS ([`Journal::append`]); an
/// explicit [`Journal::sync`] forces them to stable storage. The virtual-time
/// harness never calls `sync` — see the crate docs for the fsync caveat.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Create (or truncate) a journal file and write the file header.
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        let mut file = File::create(path).map_err(|e| JournalError::io("create", &e))?;
        file.write_all(&header_bytes())
            .map_err(|e| JournalError::io("write header", &e))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Open an existing journal for appending.
    ///
    /// The whole file is scanned and validated; if it ends in a torn tail the
    /// file is truncated back to the last valid record before the journal is
    /// positioned for append. The scan (including the pre-truncation
    /// [`TornTail`] details) is returned so the caller can log or replay it.
    pub fn open(path: &Path) -> Result<(Self, ScanReport), JournalError> {
        let report = scan_file(path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| JournalError::io("open", &e))?;
        if report.torn.is_some() {
            file.set_len(report.valid_len)
                .map_err(|e| JournalError::io("truncate torn tail", &e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| JournalError::io("seek", &e))?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            report,
        ))
    }

    /// The path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one framed record.
    pub fn append(&mut self, record: &Record) -> Result<(), JournalError> {
        if u32::try_from(record.payload.len()).is_err() {
            return Err(JournalError::PayloadTooLarge {
                len: record.payload.len() as u64,
            });
        }
        self.file
            .write_all(&encode_record(record))
            .map_err(|e| JournalError::io("append", &e))
    }

    /// Flush userspace buffers to the OS. Appends already write through, so
    /// this is a cheap barrier, not an fsync.
    pub fn flush(&mut self) -> Result<(), JournalError> {
        self.file.flush().map_err(|e| JournalError::io("flush", &e))
    }

    /// Force all appended records to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file
            .sync_data()
            .map_err(|e| JournalError::io("sync", &e))
    }

    /// Current length of the journal file in bytes (header included).
    pub fn byte_len(&self) -> Result<u64, JournalError> {
        self.file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| JournalError::io("stat", &e))
    }

    /// Drop every record before `keep_from` (a byte offset, typically the
    /// position of the last snapshot record), rewriting the journal as a
    /// fresh header plus the retained suffix.
    ///
    /// The rewrite is torn-tail-safe: the compacted image is written to a
    /// sibling temporary file, forced to stable storage, and atomically
    /// renamed over the journal. A crash at any point leaves either the old
    /// file or the complete new one — never a hybrid. The journal stays open
    /// for appends afterwards. Returns the number of bytes reclaimed.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadCompactionPoint`] when `keep_from` is not a record
    /// boundary (before the header, past the end of the file, or such that
    /// the retained suffix does not scan as whole records); the journal is
    /// left untouched in that case. IO failures surface as
    /// [`JournalError::Io`].
    pub fn compact(&mut self, keep_from: u64) -> Result<u64, JournalError> {
        self.flush()?;
        let bytes = std::fs::read(&self.path).map_err(|e| JournalError::io("read", &e))?;
        let offset = usize::try_from(keep_from).unwrap_or(usize::MAX);
        if offset < HEADER_LEN || offset > bytes.len() {
            return Err(JournalError::BadCompactionPoint {
                offset: keep_from,
                detail: format!(
                    "offset is outside the file (header {HEADER_LEN} B, file {} B)",
                    bytes.len()
                ),
            });
        }
        let mut compacted = header_bytes().to_vec();
        compacted.extend_from_slice(&bytes[offset..]);
        let scan = scan_bytes(&compacted)?;
        if let Some(torn) = scan.torn {
            return Err(JournalError::BadCompactionPoint {
                offset: keep_from,
                detail: format!("retained suffix is not whole records: {}", torn.reason),
            });
        }

        let file_name = self
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "journal".to_string());
        let tmp = self.path.with_file_name(format!("{file_name}.compacting"));
        {
            let mut tmp_file =
                File::create(&tmp).map_err(|e| JournalError::io("create compacted", &e))?;
            tmp_file
                .write_all(&compacted)
                .map_err(|e| JournalError::io("write compacted", &e))?;
            tmp_file
                .sync_data()
                .map_err(|e| JournalError::io("sync compacted", &e))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| JournalError::io("rename compacted", &e))?;

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| JournalError::io("reopen compacted", &e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| JournalError::io("seek", &e))?;
        self.file = file;
        Ok((bytes.len() - compacted.len()) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: u8, payload: &[u8]) -> Record {
        Record::new(kind, 1, payload.to_vec())
    }

    fn journal_bytes(records: &[Record]) -> Vec<u8> {
        let mut bytes = header_bytes().to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    #[test]
    fn empty_journal_scans_clean() {
        let report = scan_bytes(&header_bytes()).unwrap();
        assert!(report.records.is_empty());
        assert_eq!(report.valid_len, HEADER_LEN as u64);
        assert!(report.torn.is_none());
    }

    #[test]
    fn records_round_trip_through_scan() {
        let records = vec![record(1, b"alpha"), record(2, b""), record(3, &[0u8; 300])];
        let report = scan_bytes(&journal_bytes(&records)).unwrap();
        assert_eq!(report.records, records);
        assert!(report.torn.is_none());
    }

    #[test]
    fn bad_magic_is_a_hard_error() {
        assert!(matches!(
            scan_bytes(b"NOTAJRNL\x01\x00"),
            Err(JournalError::NotAJournal { .. })
        ));
        assert!(matches!(
            scan_bytes(b"QR"),
            Err(JournalError::NotAJournal { .. })
        ));
    }

    #[test]
    fn future_format_version_is_a_hard_error() {
        let mut bytes = header_bytes().to_vec();
        bytes[MAGIC.len()] = 0xFF;
        assert!(matches!(
            scan_bytes(&bytes),
            Err(JournalError::UnsupportedFormat { .. })
        ));
    }

    #[test]
    fn flipped_byte_in_tail_record_is_reported_torn() {
        let records = vec![record(1, b"alpha"), record(1, b"beta")];
        let mut bytes = journal_bytes(&records);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let report = scan_bytes(&bytes).unwrap();
        assert_eq!(report.records, records[..1]);
        let torn = report.torn.unwrap();
        assert!(torn.reason.contains("checksum mismatch"), "{}", torn.reason);
    }

    #[test]
    fn compaction_drops_the_prefix_and_keeps_appending() {
        let dir = std::env::temp_dir().join("qrio-journal-compact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.journal");

        let mut journal = Journal::create(&path).unwrap();
        journal.append(&record(1, b"old-1")).unwrap();
        journal.append(&record(1, b"old-2")).unwrap();
        let keep_from = journal.byte_len().unwrap();
        journal.append(&record(3, b"snapshot")).unwrap();
        journal.append(&record(1, b"after")).unwrap();
        let before = journal.byte_len().unwrap();

        let reclaimed = journal.compact(keep_from).unwrap();
        assert_eq!(reclaimed, keep_from - HEADER_LEN as u64);
        assert_eq!(journal.byte_len().unwrap(), before - reclaimed);

        // The journal stays appendable after the rewrite.
        journal.append(&record(1, b"post-compaction")).unwrap();
        journal.flush().unwrap();
        drop(journal);

        let report = scan_file(&path).unwrap();
        assert!(report.torn.is_none());
        assert_eq!(
            report.records,
            vec![
                record(3, b"snapshot"),
                record(1, b"after"),
                record(1, b"post-compaction"),
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_rejects_non_record_boundaries() {
        let dir = std::env::temp_dir().join("qrio-journal-compact-reject-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reject.journal");

        let mut journal = Journal::create(&path).unwrap();
        journal.append(&record(1, b"alpha")).unwrap();
        journal.append(&record(1, b"beta")).unwrap();
        let len = journal.byte_len().unwrap();

        // Mid-record, before the header, and past the end must all be
        // rejected, leaving the file untouched.
        for bad in [HEADER_LEN as u64 + 3, 2, len + 1] {
            assert!(matches!(
                journal.compact(bad),
                Err(JournalError::BadCompactionPoint { .. })
            ));
        }
        drop(journal);
        let report = scan_file(&path).unwrap();
        assert_eq!(
            report.records,
            vec![record(1, b"alpha"), record(1, b"beta")]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_truncates_a_torn_tail_and_appends_cleanly() {
        let dir = std::env::temp_dir().join("qrio-journal-wal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.journal");

        let mut journal = Journal::create(&path).unwrap();
        journal.append(&record(1, b"kept")).unwrap();
        journal.append(&record(1, b"torn-away")).unwrap();
        journal.flush().unwrap();
        drop(journal);

        // Simulate a crash mid-append of the second record.
        let full = std::fs::read(&path).unwrap();
        let keep = header_bytes().len() + encode_record(&record(1, b"kept")).len();
        std::fs::write(&path, &full[..keep + 3]).unwrap();

        let (mut journal, report) = Journal::open(&path).unwrap();
        assert_eq!(report.records, vec![record(1, b"kept")]);
        assert!(report.torn.is_some());
        journal.append(&record(2, b"after-recovery")).unwrap();
        journal.flush().unwrap();
        drop(journal);

        let report = scan_file(&path).unwrap();
        assert_eq!(
            report.records,
            vec![record(1, b"kept"), record(2, b"after-recovery")]
        );
        assert!(report.torn.is_none());
        std::fs::remove_file(&path).ok();
    }
}
