//! Typed failures for journal IO and decoding.

use std::fmt;

use crate::codec::CodecError;

/// Everything that can go wrong while creating, scanning or appending to a
/// journal file.
///
/// A *torn tail* — trailing bytes that do not form a complete, checksummed
/// record — is deliberately **not** an error: it is the expected residue of a
/// crash mid-append and is reported as data in
/// [`ScanReport::torn`](crate::ScanReport::torn) so callers can truncate and
/// continue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An operating-system IO failure. The original [`std::io::Error`] is
    /// flattened to a message so the error stays `Clone + PartialEq`.
    Io {
        /// The operation that failed (`"open"`, `"append"`, ...).
        op: &'static str,
        /// The OS error rendered as text.
        message: String,
    },
    /// The file does not start with the journal magic — it is not a journal
    /// (or the header itself is truncated).
    NotAJournal {
        /// What exactly was wrong with the header.
        detail: String,
    },
    /// The file header declares a format version this build cannot read.
    UnsupportedFormat {
        /// Version found in the file header.
        found: u16,
        /// Highest version this build understands.
        supported: u16,
    },
    /// A record payload failed to decode.
    Codec(CodecError),
    /// A record payload exceeds the `u32` length prefix.
    PayloadTooLarge {
        /// The oversized payload length in bytes.
        len: u64,
    },
    /// A [`Journal::compact`](crate::Journal::compact) call named an offset
    /// that is not a clean record boundary inside the file. The journal is
    /// left untouched.
    BadCompactionPoint {
        /// The rejected `keep_from` offset.
        offset: u64,
        /// Why the offset cannot be compacted to.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, message } => write!(f, "journal {op} failed: {message}"),
            JournalError::NotAJournal { detail } => write!(f, "not a journal file: {detail}"),
            JournalError::UnsupportedFormat { found, supported } => write!(
                f,
                "unsupported journal format version {found} (this build reads up to {supported})"
            ),
            JournalError::Codec(inner) => write!(f, "journal record decode failed: {inner}"),
            JournalError::PayloadTooLarge { len } => {
                write!(
                    f,
                    "record payload of {len} bytes exceeds the u32 length prefix"
                )
            }
            JournalError::BadCompactionPoint { offset, detail } => {
                write!(f, "cannot compact journal to offset {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<CodecError> for JournalError {
    fn from(inner: CodecError) -> Self {
        JournalError::Codec(inner)
    }
}

impl JournalError {
    /// Flatten an [`std::io::Error`] into a [`JournalError::Io`].
    pub fn io(op: &'static str, error: &std::io::Error) -> Self {
        JournalError::Io {
            op,
            message: error.to_string(),
        }
    }
}
