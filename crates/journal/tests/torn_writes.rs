//! Torn-write property tests: a journal truncated at *every* byte offset of
//! its final record must either recover cleanly to the previous record or
//! surface a typed [`JournalError`] — never panic, never silently hand back
//! corrupt data.

use proptest::prelude::*;

use qrio_journal::{encode_record, header_bytes, scan_bytes, JournalError, Record};

/// Build a deterministic record from sampled raw ints, exercising empty,
/// short and multi-hundred-byte payloads.
fn record_from(kind: u8, version: u16, payload_len: usize, fill: u8) -> Record {
    let payload: Vec<u8> = (0..payload_len)
        .map(|i| fill.wrapping_add(i as u8).wrapping_mul(31))
        .collect();
    Record::new(kind, version, payload)
}

fn journal_bytes(records: &[Record]) -> Vec<u8> {
    let mut bytes = header_bytes().to_vec();
    for record in records {
        bytes.extend_from_slice(&encode_record(record));
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_at_every_offset_of_the_final_record_is_recoverable(
        kept_len in 0usize..120,
        torn_len in 0usize..300,
        kind in 0u8..=255,
        fill in 0u8..=255,
    ) {
        let kept = record_from(1, 1, kept_len, fill);
        let torn = record_from(kind, 1, torn_len, fill.wrapping_add(7));
        let prefix = journal_bytes(std::slice::from_ref(&kept));
        let full = journal_bytes(&[kept.clone(), torn]);

        // Cut everywhere inside the final record, including "nothing written
        // yet" (== prefix) and "one byte short of complete".
        for cut in prefix.len()..full.len() {
            let report = scan_bytes(&full[..cut]).expect("valid header must scan");
            prop_assert_eq!(&report.records, std::slice::from_ref(&kept));
            if cut == prefix.len() {
                prop_assert!(report.torn.is_none());
            } else {
                let tail = report.torn.as_ref().expect("partial record must be torn");
                prop_assert_eq!(tail.offset, prefix.len() as u64);
                prop_assert_eq!(tail.trailing, (cut - prefix.len()) as u64);
            }
            prop_assert_eq!(report.valid_len, prefix.len() as u64);
        }

        // The untruncated journal scans both records cleanly.
        let clean = scan_bytes(&full).unwrap();
        prop_assert_eq!(clean.records.len(), 2);
        prop_assert!(clean.torn.is_none());
    }

    #[test]
    fn corrupting_any_byte_of_the_final_record_never_panics(
        payload_len in 0usize..200,
        flip in 1u8..=255,
        fill in 0u8..=255,
    ) {
        let kept = record_from(2, 1, 16, fill);
        let tail = record_from(3, 1, payload_len, fill.wrapping_add(3));
        let prefix = journal_bytes(std::slice::from_ref(&kept));
        let full = journal_bytes(&[kept.clone(), tail.clone()]);

        for offset in prefix.len()..full.len() {
            let mut bytes = full.clone();
            bytes[offset] ^= flip;
            let report = scan_bytes(&bytes).expect("valid header must scan");
            // Either the defect is detected (torn tail, kept record intact) or
            // the flip landed in the length prefix and produced a shorter but
            // still checksum-consistent read — which CRC-32 makes practically
            // impossible; assert detection outright.
            prop_assert_eq!(&report.records, std::slice::from_ref(&kept));
            prop_assert!(report.torn.is_some(), "flip at {offset} went undetected");
        }
    }

    #[test]
    fn truncation_inside_the_header_is_a_typed_error(cut in 0usize..10) {
        let bytes = journal_bytes(&[record_from(1, 1, 8, 9)]);
        let result = scan_bytes(&bytes[..cut.min(qrio_journal::HEADER_LEN - 1)]);
        prop_assert!(matches!(result, Err(JournalError::NotAJournal { .. })));
    }
}
