//! Codec round-trip properties at the journal layer: framed records and the
//! `ByteWriter`/`ByteReader` primitives must hit a byte-identical fixed point
//! under encode→decode→encode.
//!
//! (The domain-level record payloads — commands, event batches, snapshots —
//! have their own round-trip properties in the `qrio` core crate.)

use proptest::prelude::*;

use qrio_journal::{encode_record, header_bytes, scan_bytes, ByteReader, ByteWriter, Record};

fn record_from(kind: u8, version: u16, payload: Vec<u8>) -> Record {
    Record::new(kind, version, payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn framed_records_reach_a_byte_identical_fixed_point(
        kind_a in 0u8..=255,
        kind_b in 0u8..=255,
        version in 0u16..=512,
        payload_a in proptest::collection::vec(0u8..=255, 0..200),
        payload_b in proptest::collection::vec(0u8..=255, 0..40),
    ) {
        let records = vec![
            record_from(kind_a, version, payload_a),
            record_from(kind_b, version.wrapping_add(1), payload_b),
        ];
        let mut bytes = header_bytes().to_vec();
        for record in &records {
            bytes.extend_from_slice(&encode_record(record));
        }

        // decode
        let report = scan_bytes(&bytes).unwrap();
        prop_assert_eq!(&report.records, &records);
        prop_assert!(report.torn.is_none());

        // re-encode: byte-identical fixed point
        let mut reencoded = header_bytes().to_vec();
        for record in &report.records {
            reencoded.extend_from_slice(&encode_record(record));
        }
        prop_assert_eq!(reencoded, bytes);
    }

    #[test]
    fn writer_reader_scalars_round_trip(
        small in 0u8..=255,
        medium in 0u32..=u32::MAX,
        wide in 0u64..=u64::MAX,
        float_bits in 0u64..=u64::MAX,
        text_bytes in proptest::collection::vec(0u8..=255, 0..64),
        blob in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        // Arbitrary bytes → lossy string gives full UTF-8 coverage including
        // multi-byte sequences and replacement characters.
        let text = String::from_utf8_lossy(&text_bytes).into_owned();
        let float = f64::from_bits(float_bits);

        let mut writer = ByteWriter::new();
        writer.put_u8(small);
        writer.put_u32(medium);
        writer.put_u64(wide);
        writer.put_f64(float);
        writer.put_bool(small % 2 == 0);
        writer.put_str(&text);
        writer.put_bytes(&blob);
        let bytes = writer.into_bytes();

        let mut reader = ByteReader::new(&bytes);
        prop_assert_eq!(reader.take_u8().unwrap(), small);
        prop_assert_eq!(reader.take_u32().unwrap(), medium);
        prop_assert_eq!(reader.take_u64().unwrap(), wide);
        // Bit-exact, not value-equal: NaN payloads must survive.
        prop_assert_eq!(reader.take_f64().unwrap().to_bits(), float_bits);
        prop_assert_eq!(reader.take_bool().unwrap(), small % 2 == 0);
        prop_assert_eq!(reader.take_str().unwrap(), text);
        prop_assert_eq!(reader.take_blob().unwrap(), blob);
        reader.finish().unwrap();
    }
}
