//! End-to-end lifecycle audit: replay the watch log of a full `cloud_smoke`
//! loadgen run through the auditor. A clean audit proves the orchestrator's
//! bookkeeping over thousands of real transitions — dense sequence numbers,
//! correctly chained per-job events, only legal transitions, no job lost, no
//! double execution.

use qrio_analyzer::{audit_watch_log, AuditOptions};
use qrio_loadgen::{run_scenario_with_log, Scenario};

#[test]
fn cloud_smoke_watch_log_audits_clean() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/cloud_smoke.yaml"
    );
    let text = std::fs::read_to_string(path).expect("shipped scenario");
    let scenario = Scenario::from_yaml(&text).expect("shipped scenario parses");
    let (report, log) = run_scenario_with_log(&scenario).expect("scenario runs");
    assert!(report.completed > 0, "the run did no work");
    assert!(
        log.len() as u64 >= 4 * report.completed,
        "each completed job emits at least Submitted/Queued/Scheduled/Running/terminal"
    );
    let diags = audit_watch_log(&log, AuditOptions::default());
    assert!(
        diags.is_empty(),
        "watch-log audit found violations: {diags:#?}"
    );
}
