//! Property: transpiler output is always lint-clean.
//!
//! For any circuit and any device that can host it, the transpiled result
//! must pass every routed-circuit lint — two-qubit gates only on coupled
//! pairs, every gate in the device basis, width within capacity — verified
//! against the routing metadata the result itself carries. This encodes the
//! bug class the original seed shipped (a CCX decomposed onto uncoupled
//! pairs) as a standing property rather than a single regression case.

use proptest::prelude::*;
use qrio_analyzer::lint_transpile_result;
use qrio_backend::{topology, Backend, CouplingMap};
use qrio_circuit::library;
use qrio_transpiler::transpile;

/// One of the six supported coupling-map families, sized to `qubits`.
fn coupling(kind: u8, qubits: usize) -> CouplingMap {
    match kind % 6 {
        0 => topology::line(qubits),
        1 => topology::ring(qubits.max(3)),
        2 => topology::grid(2, qubits.div_ceil(2)),
        3 => topology::star(qubits),
        4 => topology::binary_tree(qubits),
        _ => topology::fully_connected(qubits),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_circuits_transpile_lint_clean(
        width in 2usize..7,
        depth in 1usize..8,
        seed in 0u64..10_000,
        kind in 0u8..6,
        headroom in 0usize..4,
    ) {
        let circuit = library::random_circuit(width, depth, seed).expect("library circuit");
        let map = coupling(kind, width + headroom);
        let backend = Backend::uniform("prop-dev", map, 0.01, 0.05);
        let result = transpile(&circuit, &backend).expect("transpilation");
        let diags = lint_transpile_result(&result, "random");
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn random_clifford_circuits_transpile_lint_clean(
        width in 2usize..7,
        depth in 1usize..7,
        seed in 0u64..10_000,
        kind in 0u8..6,
    ) {
        let circuit =
            library::random_clifford_circuit(width, depth, seed).expect("library circuit");
        let backend = Backend::uniform("prop-dev", coupling(kind, width), 0.01, 0.05);
        let result = transpile(&circuit, &backend).expect("transpilation");
        let diags = lint_transpile_result(&result, "clifford");
        prop_assert!(diags.is_empty(), "{diags:?}");
    }
}
