//! The QL06xx lints over traces the *real* control plane records: a healthy
//! orchestrator run must produce a lint-clean envelope stream, and seeded
//! damage to that stream must be caught.

use qrio::{FidelityRankingConfig, JobRequestBuilder, Qrio};
use qrio_analyzer::{lint_envelope_trace_bytes, LintCode};
use qrio_backend::{topology, Backend};
use qrio_circuit::library;

/// Drive a small workload with trace recording on and hand back the raw
/// envelope stream.
fn recorded_trace() -> Vec<u8> {
    let mut qrio = Qrio::with_config(
        FidelityRankingConfig {
            shots: 96,
            seed: 23,
            shortfall_weight: 100.0,
        },
        23,
    );
    qrio.enable_control_trace();
    qrio.add_device(Backend::uniform("clean", topology::line(8), 0.002, 0.01))
        .unwrap();
    qrio.add_device(Backend::uniform("noisy", topology::line(8), 0.05, 0.35))
        .unwrap();
    for name in ["trace-a", "trace-b", "trace-c"] {
        let bv = library::bernstein_vazirani(4, 0b1011).unwrap();
        let request = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name(name)
            .fidelity_target(0.8)
            .shots(64)
            .build()
            .unwrap();
        let _ = qrio.enqueue(&request).unwrap();
    }
    qrio.run_until_idle();
    qrio.take_control_trace()
}

#[test]
fn healthy_control_plane_trace_is_lint_clean() {
    let trace = recorded_trace();
    assert!(!trace.is_empty(), "trace recording produced no frames");
    let diagnostics = lint_envelope_trace_bytes("live trace", &trace);
    assert!(
        diagnostics.is_empty(),
        "healthy trace raised: {diagnostics:?}"
    );
}

#[test]
fn dropping_a_frame_from_a_real_trace_is_detected() {
    let trace = recorded_trace();
    // Remove a frame from the middle of an established per-node stream (the
    // lint tolerates streams that *start* mid-conversation, so the dropped
    // frame must not be a stream's first). Walk the frames, track which
    // (node, direction) pairs have appeared, cut the first repeat.
    use qrio_proto::{Envelope, FrameHeader, Payload};
    use std::collections::BTreeSet;
    let mut seen: BTreeSet<(String, bool)> = BTreeSet::new();
    let mut cursor = 0usize;
    let mut cut: Option<(usize, usize)> = None;
    while cursor < trace.len() {
        let frame_len = FrameHeader::peek(&trace[cursor..]).unwrap().frame_len;
        let (envelope, _) = Envelope::decode(&trace[cursor..]).unwrap();
        let key = (
            envelope.node_id.clone(),
            matches!(envelope.payload, Payload::Command(_)),
        );
        if !seen.insert(key) {
            cut = Some((cursor, frame_len));
            break;
        }
        cursor += frame_len;
    }
    let (offset, frame_len) = cut.expect("trace long enough to repeat a stream");
    let mut damaged = trace[..offset].to_vec();
    damaged.extend_from_slice(&trace[offset + frame_len..]);
    let diagnostics = lint_envelope_trace_bytes("damaged trace", &damaged);
    assert!(
        diagnostics
            .iter()
            .any(|d| d.code == LintCode::EnvelopeSeqGap),
        "dropped frame went unnoticed: {diagnostics:?}"
    );
}
