//! CI target for the lifecycle model check: the three transition-table
//! properties (reachability, terminal closure, liveness) must hold on every
//! build. A failure here means a `JobState::can_transition_to` edit broke the
//! contract the orchestrator, cluster and auditor all write against.

use qrio::JobState;
use qrio_analyzer::verify_job_state_machine;

#[test]
fn job_state_machine_properties_hold() {
    let report = verify_job_state_machine();
    assert!(
        report.verified(),
        "lifecycle verification failed:\n{:#?}",
        report.diagnostics
    );
}

#[test]
fn every_state_is_reachable_and_accounted_for() {
    let report = verify_job_state_machine();
    for state in JobState::ALL {
        assert!(
            report.reachable.contains(&state),
            "{state} unreachable from Submitted"
        );
    }
    // The table is small and deliberate: any arc-count change should be a
    // conscious decision, reviewed together with this number. 13 = the 9
    // original arcs plus the retry loop (Running→Retrying,
    // Retrying→Queued/Failed/Cancelled).
    assert_eq!(report.transitions.len(), 13);
}
