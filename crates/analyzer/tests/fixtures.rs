//! The acceptance fixtures: each seeded violation class is flagged with its
//! stable code, and every shipped scenario lints clean end to end.

use std::path::PathBuf;

use qrio_analyzer::{
    lint_engine_fit, lint_logical_circuit, lint_requirements, lint_routed_circuit, lint_scenario,
    lint_transpile_result, EngineHint, LintCode, TargetView,
};
use qrio_backend::{topology, Backend};
use qrio_circuit::Circuit;
use qrio_cluster::DeviceRequirements;
use qrio_loadgen::Scenario;
use qrio_meta::{builtin_registry, FidelityRankingConfig};

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn uncoupled_cx_fixture_is_flagged() {
    let mut circuit = Circuit::new(5, 5);
    circuit.h(0).unwrap();
    circuit.cx(0, 4).unwrap(); // line(5) couples only neighbors
    circuit.measure_all().unwrap();
    let backend = Backend::uniform("line-5", topology::line(5), 0.01, 0.02);
    let diags = lint_routed_circuit(&circuit, "uncoupled", TargetView::from_backend(&backend));
    assert!(
        diags
            .iter()
            .any(|d| d.code == LintCode::UncoupledTwoQubitGate),
        "{diags:?}"
    );
}

#[test]
fn t_gate_bound_for_stabilizer_is_flagged() {
    let mut circuit = Circuit::new(2, 2);
    circuit.h(0).unwrap();
    circuit.t(0).unwrap();
    circuit.cx(0, 1).unwrap();
    circuit.measure_all().unwrap();
    let diags = lint_engine_fit(&circuit, "t-job", EngineHint::Stabilizer);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, LintCode::NonCliffordForStabilizer);
}

#[test]
fn out_of_horizon_event_is_flagged() {
    let text = std::fs::read_to_string(scenarios_dir().join("cloud_smoke.yaml")).unwrap();
    // Push the outage past the horizon; everything else stays shipped-clean.
    let text = text.replace("atMs: 8000", "atMs: 999000");
    let scenario = Scenario::from_yaml(&text).unwrap();
    let registry = builtin_registry(FidelityRankingConfig::default());
    let diags = lint_scenario(&scenario, &registry);
    assert!(
        diags
            .iter()
            .any(|d| d.code == LintCode::EventOutsideHorizon),
        "{diags:?}"
    );
}

#[test]
fn unsatisfiable_requirements_fixture_is_flagged() {
    let fleet = [
        Backend::uniform("a", topology::line(5), 0.01, 0.05),
        Backend::uniform("b", topology::grid(2, 4), 0.02, 0.10),
    ];
    let requirements = DeviceRequirements {
        min_qubits: Some(40),
        ..DeviceRequirements::default()
    };
    let diags = lint_requirements(&requirements, &fleet, "job 'picky'");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, LintCode::UnsatisfiableRequirements);
}

/// Every scenario file shipped in `scenarios/` must lint clean, including
/// each tenant's representative circuit transpiled onto every fleet device
/// that can host it — the same sweep the `qrio-lint` binary runs in CI.
#[test]
fn shipped_scenarios_lint_clean() {
    let registry = builtin_registry(FidelityRankingConfig::default());
    let mut checked = 0;
    for entry in std::fs::read_dir(scenarios_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path
            .extension()
            .map_or(true, |ext| ext != "yaml" && ext != "yml")
        {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let scenario =
            Scenario::from_yaml(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let diags = lint_scenario(&scenario, &registry);
        assert!(diags.is_empty(), "{}: {diags:?}", path.display());
        for tenant in &scenario.tenants {
            let circuit = tenant.circuit_for(0).unwrap();
            let name = format!("{}/{}", scenario.name, tenant.name);
            let logical = lint_logical_circuit(&circuit, &name);
            assert!(logical.is_empty(), "{name}: {logical:?}");
            for device in &scenario.fleet {
                if device.qubits < tenant.qubits {
                    continue;
                }
                let result = qrio_transpiler::transpile(&circuit, &device.backend()).unwrap();
                let routed = lint_transpile_result(&result, &name);
                assert!(routed.is_empty(), "{name} on {}: {routed:?}", device.name);
            }
        }
        checked += 1;
    }
    assert!(checked >= 2, "expected the shipped scenarios to be present");
}
