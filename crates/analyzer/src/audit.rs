//! The watch-log auditor: replay a [`JobEvent`] stream and assert the
//! invariants the orchestrator promises its watchers.
//!
//! [`qrio::Qrio::watch`] exposes a Kubernetes-style event log; everything a
//! client can know about job lifecycles flows through it. Auditing a full run
//! (e.g. a loadgen scenario) therefore end-to-end checks the orchestrator's
//! bookkeeping: sequence numbers are dense from zero (QL0301), each job's
//! events chain correctly (`from` equals the previous `to`, QL0302), every
//! observed transition is in the legality table (QL0303), no job is left
//! non-terminal at the end of a drained run (QL0304), no job re-enters
//! `Running` without an intervening `Retrying` decision (QL0305), retry
//! attempt counters climb by exactly one per `Retrying` event (QL0306), and
//! nothing happens to a job after it reaches a terminal state (QL0307).

use std::collections::BTreeMap;

use qrio::{JobEvent, JobState};

use crate::diag::{Diagnostic, LintCode, Location};

/// Options controlling the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditOptions {
    /// Require every observed job to end in a terminal state — set for runs
    /// that drained to completion, unset for mid-run snapshots.
    pub require_terminal: bool,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            require_terminal: true,
        }
    }
}

/// Replay `events` and report every invariant violation.
pub fn audit_watch_log(events: &[JobEvent], options: AuditOptions) -> Vec<Diagnostic> {
    let subject = format!("watch log ({} events)", events.len());
    let mut diagnostics = Vec::new();

    // QL0301: seq must equal the event's index (dense from zero).
    for (index, event) in events.iter().enumerate() {
        if event.seq != index as u64 {
            diagnostics.push(Diagnostic::new(
                LintCode::NonDenseSequence,
                Location::at(&subject, format!("event #{index}")),
                format!("expected seq {index}, found {}", event.seq),
            ));
        }
    }

    // Per-job replay.
    let mut last_state: BTreeMap<&str, JobState> = BTreeMap::new();
    // Whether the job may (re-)enter Running: true initially, consumed by a
    // Running entry, restored by a Retrying decision.
    let mut may_run: BTreeMap<&str, bool> = BTreeMap::new();
    let mut last_attempt: BTreeMap<&str, u64> = BTreeMap::new();
    for event in events {
        let job = event.job.as_str();
        let previous = last_state.get(job).copied();

        // QL0307: terminal states are final — any further event for the job
        // means the orchestrator kept mutating settled work.
        if previous.is_some_and(|state| state.is_terminal()) {
            diagnostics.push(Diagnostic::new(
                LintCode::EventAfterTerminal,
                Location::at(&subject, format!("seq {} (job '{job}')", event.seq)),
                format!(
                    "job already settled in {} but a later event moves it to {}",
                    previous.expect("checked above"),
                    event.to
                ),
            ));
        }

        // QL0302: the event's `from` must equal the job's previous `to`
        // (None for the very first event of the job, which must be the
        // Submitted entry).
        let chain_ok = match (previous, event.from) {
            (None, None) => event.to == JobState::Submitted,
            (Some(last), Some(from)) => last == from,
            _ => false,
        };
        if !chain_ok {
            diagnostics.push(Diagnostic::new(
                LintCode::BrokenEventChain,
                Location::at(&subject, format!("seq {} (job '{job}')", event.seq)),
                format!(
                    "event claims {:?} -> {}, but the job's previous state was {:?}",
                    event.from, event.to, previous
                ),
            ));
        }

        // QL0303: the observed transition must be legal.
        if let Some(from) = event.from {
            if !from.can_transition_to(event.to) {
                diagnostics.push(Diagnostic::new(
                    LintCode::IllegalTransition,
                    Location::at(&subject, format!("seq {} (job '{job}')", event.seq)),
                    format!(
                        "transition {from} -> {} is outside the legality table",
                        event.to
                    ),
                ));
            }
        }

        // QL0305: each Running entry must be "paid for" — the first one by
        // admission, every later one by an intervening Retrying decision.
        // (A retried job legitimately runs again; a *silent* re-run is the
        // double-execution bug this lint exists to catch.)
        if event.to == JobState::Running {
            let allowed = may_run.entry(job).or_insert(true);
            if !*allowed {
                diagnostics.push(Diagnostic::new(
                    LintCode::DoubleRunning,
                    Location::at(&subject, format!("seq {} (job '{job}')", event.seq)),
                    "job re-entered Running without an intervening Retrying decision".to_string(),
                ));
            }
            *allowed = false;
        }
        if event.to == JobState::Retrying {
            may_run.insert(job, true);

            // QL0306: the orchestrator stamps each Retrying reason with
            // "attempt N failed: ..."; N must climb by exactly one per
            // retry decision (monotone, gapless), or the backoff schedule
            // and dead-letter accounting disagree with reality.
            if let Some(attempt) = event.reason.as_deref().and_then(parse_attempt) {
                let expected = last_attempt.get(job).copied().unwrap_or(0) + 1;
                if attempt != expected {
                    diagnostics.push(Diagnostic::new(
                        LintCode::NonMonotoneAttempts,
                        Location::at(&subject, format!("seq {} (job '{job}')", event.seq)),
                        format!("expected attempt {expected}, but the Retrying reason says attempt {attempt}"),
                    ));
                }
                last_attempt.insert(job, attempt);
            }
        }

        last_state.insert(job, event.to);
    }

    // QL0304: at the end of a drained run, no job may be left behind.
    if options.require_terminal {
        for (job, state) in &last_state {
            if !state.is_terminal() {
                diagnostics.push(Diagnostic::new(
                    LintCode::JobLost,
                    Location::at(&subject, format!("job '{job}'")),
                    format!("job's last observed state is {state}, not a terminal state"),
                ));
            }
        }
    }

    diagnostics
}

/// Parse the attempt counter out of a `Retrying` reason of the
/// orchestrator's form `"attempt N failed: ..."`. Returns `None` for logs
/// that carry no (or a foreign) reason — those simply skip the QL0306 check.
fn parse_attempt(reason: &str) -> Option<u64> {
    let rest = reason.strip_prefix("attempt ")?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio::JobId;

    fn event(seq: u64, job: &str, from: Option<JobState>, to: JobState) -> JobEvent {
        JobEvent {
            seq,
            at: 0,
            job: JobId::new(job),
            from,
            to,
            node: None,
            reason: None,
        }
    }

    fn healthy_log() -> Vec<JobEvent> {
        use JobState::*;
        vec![
            event(0, "a", None, Submitted),
            event(1, "a", Some(Submitted), Queued),
            event(2, "b", None, Submitted),
            event(3, "b", Some(Submitted), Queued),
            event(4, "a", Some(Queued), Scheduled),
            event(5, "a", Some(Scheduled), Running),
            event(6, "a", Some(Running), Succeeded),
            event(7, "b", Some(Queued), Failed),
        ]
    }

    #[test]
    fn a_healthy_log_audits_clean() {
        assert!(audit_watch_log(&healthy_log(), AuditOptions::default()).is_empty());
    }

    #[test]
    fn sparse_sequence_numbers_are_flagged() {
        let mut log = healthy_log();
        log[3].seq = 30;
        let diags = audit_watch_log(&log, AuditOptions::default());
        assert!(diags.iter().any(|d| d.code == LintCode::NonDenseSequence));
    }

    #[test]
    fn broken_chains_are_flagged() {
        use JobState::*;
        let log = vec![
            event(0, "a", None, Submitted),
            event(1, "a", Some(Queued), Scheduled), // skipped the Queued entry
        ];
        let diags = audit_watch_log(
            &log,
            AuditOptions {
                require_terminal: false,
            },
        );
        assert!(diags.iter().any(|d| d.code == LintCode::BrokenEventChain));
    }

    #[test]
    fn illegal_transitions_are_flagged() {
        use JobState::*;
        let log = vec![
            event(0, "a", None, Submitted),
            event(1, "a", Some(Submitted), Queued),
            event(2, "a", Some(Queued), Running), // skips Scheduled: illegal
        ];
        let diags = audit_watch_log(
            &log,
            AuditOptions {
                require_terminal: false,
            },
        );
        assert!(diags.iter().any(|d| d.code == LintCode::IllegalTransition));
    }

    #[test]
    fn lost_jobs_are_flagged_only_when_required() {
        use JobState::*;
        let log = vec![
            event(0, "a", None, Submitted),
            event(1, "a", Some(Submitted), Queued),
        ];
        let strict = audit_watch_log(&log, AuditOptions::default());
        assert!(strict.iter().any(|d| d.code == LintCode::JobLost));
        let lax = audit_watch_log(
            &log,
            AuditOptions {
                require_terminal: false,
            },
        );
        assert!(!lax.iter().any(|d| d.code == LintCode::JobLost));
    }

    #[test]
    fn double_running_is_flagged() {
        use JobState::*;
        // Craft a log whose individual arcs are legal-looking via the rebind
        // path but which runs the job twice (from-states forged to match).
        let log = vec![
            event(0, "a", None, Submitted),
            event(1, "a", Some(Submitted), Queued),
            event(2, "a", Some(Queued), Scheduled),
            event(3, "a", Some(Scheduled), Running),
            event(4, "a", Some(Running), Succeeded),
            event(5, "a", Some(Scheduled), Running), // forged second run
        ];
        let diags = audit_watch_log(
            &log,
            AuditOptions {
                require_terminal: false,
            },
        );
        assert!(diags.iter().any(|d| d.code == LintCode::DoubleRunning));
    }

    fn retry_event(
        seq: u64,
        job: &str,
        from: JobState,
        to: JobState,
        reason: Option<&str>,
    ) -> JobEvent {
        JobEvent {
            reason: reason.map(str::to_string),
            ..event(seq, job, Some(from), to)
        }
    }

    /// A full, legal retry loop: run, fail into Retrying, requeue, run
    /// again, succeed.
    fn retry_log(first_reason: &str, second_reason: &str) -> Vec<JobEvent> {
        use JobState::*;
        vec![
            event(0, "a", None, Submitted),
            event(1, "a", Some(Submitted), Queued),
            event(2, "a", Some(Queued), Scheduled),
            event(3, "a", Some(Scheduled), Running),
            retry_event(4, "a", Running, Retrying, Some(first_reason)),
            event(5, "a", Some(Retrying), Queued),
            event(6, "a", Some(Queued), Scheduled),
            event(7, "a", Some(Scheduled), Running),
            retry_event(8, "a", Running, Retrying, Some(second_reason)),
            event(9, "a", Some(Retrying), Queued),
            event(10, "a", Some(Queued), Scheduled),
            event(11, "a", Some(Scheduled), Running),
            event(12, "a", Some(Running), Succeeded),
        ]
    }

    #[test]
    fn retried_jobs_may_rerun_and_audit_clean() {
        let log = retry_log(
            "attempt 1 failed: boom; backing off 4 ticks",
            "attempt 2 failed: boom; backing off 8 ticks",
        );
        assert!(audit_watch_log(&log, AuditOptions::default()).is_empty());
    }

    #[test]
    fn non_monotone_attempt_counters_are_flagged() {
        // The second Retrying claims attempt 5; after attempt 1, only
        // attempt 2 is coherent.
        let log = retry_log(
            "attempt 1 failed: boom; backing off 4 ticks",
            "attempt 5 failed: boom; backing off 8 ticks",
        );
        let diags = audit_watch_log(&log, AuditOptions::default());
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::NonMonotoneAttempts));
        // Reasons without the counter skip the check rather than misfire.
        let opaque = retry_log("node exploded", "node exploded again");
        assert!(audit_watch_log(&opaque, AuditOptions::default()).is_empty());
    }

    #[test]
    fn events_after_a_terminal_state_are_flagged() {
        use JobState::*;
        let log = vec![
            event(0, "a", None, Submitted),
            event(1, "a", Some(Submitted), Queued),
            event(2, "a", Some(Queued), Failed),
            event(3, "a", Some(Failed), Queued), // zombie revival
        ];
        let diags = audit_watch_log(
            &log,
            AuditOptions {
                require_terminal: false,
            },
        );
        assert!(diags.iter().any(|d| d.code == LintCode::EventAfterTerminal));
    }

    #[test]
    fn attempt_counters_parse_from_orchestrator_reasons() {
        assert_eq!(
            parse_attempt("attempt 3 failed: x; backing off 2 ticks"),
            Some(3)
        );
        assert_eq!(parse_attempt("attempt 12"), Some(12));
        assert_eq!(parse_attempt("attempted murder"), None);
        assert_eq!(parse_attempt("something else"), None);
    }
}
