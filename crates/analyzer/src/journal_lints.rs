//! Lints over durability journals (`qrio-journal` write-ahead logs): the
//! QL04xx family.
//!
//! A journal is the crash-recovery story of a QRIO deployment, so a damaged
//! or inconsistent one deserves diagnostics *before* an operator needs it in
//! anger. These lints work on the raw bytes — no recovery is attempted —
//! and therefore also apply to journals whose snapshots reference strategies
//! this process has not registered.
//!
//! * **QL0401** (warning) — the file ends in a torn tail: a truncated or
//!   checksum-corrupt trailing record, as a crash mid-append leaves behind.
//!   Recovery discards the tail silently; the lint makes it visible.
//! * **QL0402** (error) — a snapshot record claims an event cursor beyond
//!   the log head established by the records before it: the snapshot "knows"
//!   events the journal never saw, so the file was spliced or rewritten.
//! * **QL0403** (error) — a record carries a codec version this build cannot
//!   decode; recovery would stop with a typed error at that record.
//! * **QL0404** (error) — the file is not a journal at all, or a record's
//!   payload is structurally undecodable.

use std::fs;
use std::path::Path;

use qrio::durability::{
    decode_command, decode_events, snapshot_cursor, RECORD_COMMAND, RECORD_EVENTS, RECORD_SNAPSHOT,
    RECORD_VERSION,
};
use qrio_journal::scan_bytes;

use crate::diag::{Diagnostic, LintCode, Location};

/// Lint a journal's full byte image. `subject` names the journal in the
/// diagnostics (usually its file path).
pub fn lint_journal_bytes(subject: &str, bytes: &[u8]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let scan = match scan_bytes(bytes) {
        Ok(scan) => scan,
        Err(err) => {
            diagnostics.push(Diagnostic::new(
                LintCode::MalformedJournal,
                Location::subject(subject),
                err.to_string(),
            ));
            return diagnostics;
        }
    };

    // The next event sequence number the journal has accounted for. `None`
    // until the first snapshot or events record: the genesis snapshot may
    // legitimately carry history from before durability was enabled.
    let mut head: Option<u64> = None;
    for (index, record) in scan.records.iter().enumerate() {
        let context = format!("record #{index} (kind {})", record.kind);
        if record.version != RECORD_VERSION {
            diagnostics.push(Diagnostic::new(
                LintCode::RecordVersionMismatch,
                Location::at(subject, &context),
                format!(
                    "record version {} (this build decodes version {RECORD_VERSION})",
                    record.version
                ),
            ));
            continue;
        }
        match record.kind {
            RECORD_COMMAND => {
                if let Err(err) = decode_command(&record.payload) {
                    diagnostics.push(Diagnostic::new(
                        LintCode::MalformedJournal,
                        Location::at(subject, &context),
                        format!("command payload does not decode: {err}"),
                    ));
                }
            }
            RECORD_EVENTS => match decode_events(&record.payload) {
                Ok(events) => {
                    if let Some(last) = events.last() {
                        head = Some(head.unwrap_or(0).max(last.seq + 1));
                    }
                }
                Err(err) => {
                    diagnostics.push(Diagnostic::new(
                        LintCode::MalformedJournal,
                        Location::at(subject, &context),
                        format!("events payload does not decode: {err}"),
                    ));
                }
            },
            RECORD_SNAPSHOT => match snapshot_cursor(&record.payload) {
                Ok(cursor) => {
                    if let Some(known) = head {
                        if cursor > known {
                            diagnostics.push(Diagnostic::new(
                                LintCode::SnapshotBeyondLogHead,
                                Location::at(subject, &context),
                                format!(
                                    "snapshot cursor {cursor} exceeds the {known} event(s) \
                                     the journal has seen"
                                ),
                            ));
                        }
                    }
                    head = Some(head.unwrap_or(0).max(cursor));
                }
                Err(err) => {
                    diagnostics.push(Diagnostic::new(
                        LintCode::MalformedJournal,
                        Location::at(subject, &context),
                        format!("snapshot payload does not decode: {err}"),
                    ));
                }
            },
            kind => {
                diagnostics.push(Diagnostic::new(
                    LintCode::MalformedJournal,
                    Location::at(subject, &context),
                    format!("unknown record kind {kind}"),
                ));
            }
        }
    }

    if let Some(torn) = &scan.torn {
        diagnostics.push(Diagnostic::new(
            LintCode::TornTailRecord,
            Location::at(subject, format!("byte offset {}", torn.offset)),
            format!(
                "{} trailing byte(s) do not form a valid record ({}); recovery truncates them",
                torn.trailing, torn.reason
            ),
        ));
    }
    diagnostics
}

/// Lint a journal file on disk. An unreadable file reports QL0404 — from the
/// lint's point of view there is no journal there.
pub fn lint_journal_file(path: &Path) -> Vec<Diagnostic> {
    let subject = path.display().to_string();
    match fs::read(path) {
        Ok(bytes) => lint_journal_bytes(&subject, &bytes),
        Err(err) => vec![Diagnostic::new(
            LintCode::MalformedJournal,
            Location::subject(subject),
            format!("cannot read file: {err}"),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio::durability::encode_events_record;
    use qrio::{JobEvent, JobId, JobState};
    use qrio_journal::{encode_record, header_bytes, Record};

    fn event(seq: u64) -> JobEvent {
        JobEvent {
            seq,
            at: 0,
            job: JobId::new("j"),
            from: None,
            to: JobState::Submitted,
            node: None,
            reason: None,
        }
    }

    fn journal(records: &[Record]) -> Vec<u8> {
        let mut bytes = header_bytes().to_vec();
        for record in records {
            bytes.extend(encode_record(record));
        }
        bytes
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn a_clean_journal_is_clean() {
        let events = encode_events_record(&[event(0), event(1)]);
        let snapshot = Record::new(RECORD_SNAPSHOT, RECORD_VERSION, 2u64.to_le_bytes().to_vec());
        let bytes = journal(&[events, snapshot]);
        assert!(lint_journal_bytes("test", &bytes).is_empty());
    }

    #[test]
    fn garbage_is_ql0404() {
        let diags = lint_journal_bytes("test", b"definitely not a journal");
        assert_eq!(codes(&diags), ["QL0404"]);
    }

    #[test]
    fn torn_tail_is_ql0401_warning() {
        let events = encode_events_record(&[event(0)]);
        let mut bytes = journal(&[events]);
        bytes.truncate(bytes.len() - 2);
        let diags = lint_journal_bytes("test", &bytes);
        assert_eq!(codes(&diags), ["QL0401"]);
        assert_eq!(
            diags[0].severity,
            crate::diag::Severity::Warning,
            "torn tails are recoverable, so a warning"
        );
    }

    #[test]
    fn snapshot_beyond_head_is_ql0402() {
        let events = encode_events_record(&[event(0)]);
        let liar = Record::new(
            RECORD_SNAPSHOT,
            RECORD_VERSION,
            999u64.to_le_bytes().to_vec(),
        );
        let diags = lint_journal_bytes("test", &journal(&[events, liar]));
        assert_eq!(codes(&diags), ["QL0402"]);
    }

    #[test]
    fn genesis_snapshots_may_carry_prior_history() {
        // Durability can be enabled mid-run: the first snapshot's cursor is
        // unconstrained by (nonexistent) earlier records.
        let genesis = Record::new(
            RECORD_SNAPSHOT,
            RECORD_VERSION,
            17u64.to_le_bytes().to_vec(),
        );
        let later = encode_events_record(&[event(17)]);
        assert!(lint_journal_bytes("test", &journal(&[genesis, later])).is_empty());
    }

    #[test]
    fn version_mismatch_is_ql0403() {
        let future = Record::new(RECORD_COMMAND, 9, vec![1, 2, 3]);
        let diags = lint_journal_bytes("test", &journal(&[future]));
        assert_eq!(codes(&diags), ["QL0403"]);
    }

    #[test]
    fn undecodable_payloads_and_unknown_kinds_are_ql0404() {
        let bad_events = Record::new(RECORD_EVENTS, RECORD_VERSION, vec![0xFF; 3]);
        let unknown = Record::new(42, RECORD_VERSION, Vec::new());
        let diags = lint_journal_bytes("test", &journal(&[bad_events, unknown]));
        assert_eq!(codes(&diags), ["QL0404", "QL0404"]);
    }
}
