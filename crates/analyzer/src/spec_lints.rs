//! Spec and scenario semantic lints: mistakes that parse fine and pass the
//! loadgen's structural validation, yet doom the workload — requirements no
//! declared device satisfies, events after the arrival horizon, offered load
//! beyond the fleet's service capacity, and strategy parameters the selected
//! strategy will silently ignore.

use qrio_backend::Backend;
use qrio_cluster::{DeviceRequirements, StrategySpec};
use qrio_loadgen::{Scenario, ScenarioEvent};
use qrio_meta::StrategyRegistry;
use qrio_scheduler::filter::filter_backends_report;

use crate::diag::{Diagnostic, LintCode, Location, Severity};

/// Lint device requirements against a declared fleet (QL0101): when every
/// device is rejected, the job can never be scheduled — the failure the
/// paper's filtering stage (§3.5) would otherwise only produce at runtime.
pub fn lint_requirements(
    requirements: &DeviceRequirements,
    fleet: &[Backend],
    subject: &str,
) -> Vec<Diagnostic> {
    if fleet.is_empty() {
        return Vec::new();
    }
    let report = filter_backends_report(fleet, requirements);
    if report.accepted_count() > 0 {
        return Vec::new();
    }
    // Summarize why: one representative rejection per device keeps the
    // message bounded on large fleets.
    let mut reasons: Vec<String> = report
        .rejected
        .iter()
        .take(3)
        .map(|(device, reason)| format!("{device}: {reason}"))
        .collect();
    if report.rejected.len() > 3 {
        reasons.push(format!("... and {} more", report.rejected.len() - 3));
    }
    vec![Diagnostic::new(
        LintCode::UnsatisfiableRequirements,
        Location::subject(subject),
        format!(
            "no device of the {}-device fleet satisfies the requirements ({})",
            fleet.len(),
            reasons.join("; ")
        ),
    )]
}

/// Lint a strategy spec against the registry (QL0102): parameters the
/// registered strategy does not recognize are silently ignored at scoring
/// time — almost always a typo (`fidelity_wieght`) the user meant to matter.
pub fn lint_strategy_spec(
    spec: &StrategySpec,
    registry: &StrategyRegistry,
    subject: &str,
) -> Vec<Diagnostic> {
    let Some(strategy) = registry.get(&spec.name) else {
        return vec![Diagnostic::new(
            LintCode::UnknownStrategyParam,
            Location::subject(subject),
            format!(
                "strategy '{}' is not registered (known: {}); its parameters \
                 cannot be validated",
                spec.name,
                registry.names().join(", ")
            ),
        )];
    };
    let Some(known) = strategy.known_params() else {
        // The strategy declares an open parameter surface; nothing to check.
        return Vec::new();
    };
    let mut diagnostics = Vec::new();
    for (key, _) in spec.params.iter() {
        // Not `known.contains(&key)`: the slice holds `&'static str` and the
        // borrowed key cannot be lengthened to match.
        #[allow(clippy::manual_contains)]
        if known.iter().any(|k| *k == key) {
            continue;
        }
        diagnostics.push(Diagnostic::new(
            LintCode::UnknownStrategyParam,
            Location::subject(subject),
            format!(
                "parameter '{key}' is not recognized by strategy '{}' \
                 (known parameters: {}); it will be silently ignored",
                spec.name,
                if known.is_empty() {
                    "none".to_string()
                } else {
                    known.join(", ")
                }
            ),
        ));
    }
    diagnostics
}

/// The mean per-job service time of one tenant on a speed-1 device, in
/// virtual milliseconds — the loadgen engine's formula.
fn service_ms(scenario: &Scenario, shots: u64) -> f64 {
    (scenario.service_base_us + shots.saturating_mul(scenario.service_per_shot_us)) as f64 / 1000.0
}

/// Lint a parsed scenario (QL0103, QL0104, QL0102): semantic problems beyond
/// what [`Scenario::validate`] enforces structurally.
pub fn lint_scenario(scenario: &Scenario, registry: &StrategyRegistry) -> Vec<Diagnostic> {
    let subject = format!("scenario '{}'", scenario.name);
    let mut diagnostics = Vec::new();

    // QL0103: events timestamped at/after the horizon. Arrivals stop at the
    // horizon; an event beyond it can only affect the drain tail (or, past
    // the drain, nothing), which is almost never what the author meant.
    for (index, event) in scenario.events.iter().enumerate() {
        if event.at_ms() >= scenario.duration_ms {
            let (kind, device) = match event {
                ScenarioEvent::Drift { device, .. } => ("drift", device.as_str()),
                ScenarioEvent::Outage { device, .. } => ("outage", device.as_str()),
                ScenarioEvent::Faults { .. } => ("faults", "fleet-wide"),
            };
            diagnostics.push(Diagnostic::new(
                LintCode::EventOutsideHorizon,
                Location::at(&subject, format!("event #{index} ({kind} on '{device}')")),
                format!(
                    "event fires at {} ms but arrivals stop at the {} ms \
                     horizon; it can only affect the drain tail",
                    event.at_ms(),
                    scenario.duration_ms
                ),
            ));
        }
    }

    // QL0104: offered load vs. fleet service capacity. Each device serves
    // one job at a time at `speed`, so the fleet's capacity is the sum of
    // speeds (in device-milliseconds per millisecond); the offered load is
    // the sum over tenants of arrival rate x mean service demand.
    let capacity: f64 = scenario.fleet.iter().map(|d| d.speed).sum();
    let offered: f64 = scenario
        .tenants
        .iter()
        .map(|t| t.arrival.mean_rate_per_sec() / 1000.0 * service_ms(scenario, t.shots))
        .sum();
    if capacity > 0.0 && offered >= capacity {
        let unbounded = scenario.max_jobs == 0;
        let mut diagnostic = Diagnostic::new(
            LintCode::FleetOverloaded,
            Location::subject(&subject),
            format!(
                "offered load is {offered:.2} device-ms/ms against a fleet \
                 capacity of {capacity:.2}: queues grow without bound{}",
                if unbounded {
                    " and the run provably never drains within any fixed horizon multiple"
                } else {
                    " until the job cap stops arrivals"
                }
            ),
        );
        if unbounded {
            diagnostic = diagnostic.with_severity(Severity::Error);
        }
        diagnostics.push(diagnostic);
    }

    // QL0102: tenant strategy parameters vs. the registered strategies.
    for tenant in &scenario.tenants {
        diagnostics.extend(lint_strategy_spec(
            &tenant.strategy.strategy_spec(),
            registry,
            &format!("{subject}: tenant '{}'", tenant.name),
        ));
    }

    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use qrio_cluster::{ParamValue, StrategyParams};
    use qrio_meta::{builtin_registry, FidelityRankingConfig};

    fn small_fleet() -> Vec<Backend> {
        vec![
            Backend::uniform("a", topology::line(5), 0.01, 0.05),
            Backend::uniform("b", topology::line(8), 0.02, 0.10),
        ]
    }

    #[test]
    fn satisfiable_requirements_are_clean() {
        let req = DeviceRequirements {
            min_qubits: Some(6),
            ..DeviceRequirements::default()
        };
        assert!(lint_requirements(&req, &small_fleet(), "job 'x'").is_empty());
    }

    #[test]
    fn unsatisfiable_requirements_are_flagged_with_reasons() {
        let req = DeviceRequirements {
            min_qubits: Some(50),
            ..DeviceRequirements::default()
        };
        let diags = lint_requirements(&req, &small_fleet(), "job 'big'");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::UnsatisfiableRequirements);
        assert!(diags[0].message.contains("qubits"));
    }

    #[test]
    fn unknown_strategy_params_are_flagged() {
        let registry = builtin_registry(FidelityRankingConfig::default());
        let mut params = StrategyParams::new();
        params.set("target", ParamValue::Float(0.9));
        params.set("fidelity_wieght", ParamValue::Float(2.0)); // typo
        let spec = StrategySpec {
            name: "fidelity".to_string(),
            params,
        };
        let diags = lint_strategy_spec(&spec, &registry, "job 'typo'");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::UnknownStrategyParam);
        assert!(diags[0].message.contains("fidelity_wieght"));

        let clean = StrategySpec::fidelity(0.9);
        assert!(lint_strategy_spec(&clean, &registry, "job 'ok'").is_empty());
    }

    #[test]
    fn unregistered_strategy_is_flagged() {
        let registry = builtin_registry(FidelityRankingConfig::default());
        let spec = StrategySpec::new("no-such-strategy");
        let diags = lint_strategy_spec(&spec, &registry, "job 'missing'");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("not registered"));
    }
}
