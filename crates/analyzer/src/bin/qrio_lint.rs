//! `qrio-lint`: the command-line front end of `qrio-analyzer`.
//!
//! Runs every pass family over a set of scenario files plus the shipped
//! circuit corpus, prints compiler-style diagnostics, and optionally writes a
//! JSON artifact for CI.
//!
//! ```text
//! qrio-lint [--json PATH] [--deny-warnings] [--self-check]
//!           [--replay-to CURSOR JOURNAL] [PATH...]
//! ```
//!
//! `PATH` entries are scenario YAML files, durability journals (`.qj`
//! files, or any file starting with the `QRIOJRNL` magic), control-plane
//! envelope traces (`.qtrace` files, or the `QRIOPROT` magic) or
//! directories of them (default: `scenarios/`). `--replay-to CURSOR` turns
//! the linter into a time-travel inspector: it replays one journal up to a
//! watch-log cursor and prints the reconstructed orchestrator state.
//! Exit status: `0` clean, `1` findings, `2`
//! operational error (unreadable path, bad flag). `--self-check` instead
//! runs seeded fixture violations and verifies each expected lint code
//! fires — a self-test that the analyzer still catches what it claims to
//! catch.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qrio_analyzer::{
    audit_watch_log, lint_breaker_config, lint_chaos_scenario, lint_engine_fit,
    lint_envelope_trace_bytes, lint_envelope_trace_file, lint_journal_bytes, lint_journal_file,
    lint_logical_circuit, lint_requirements, lint_retry_policy, lint_routed_circuit, lint_scenario,
    lint_simulation_path, lint_transpile_result, looks_like_envelope_trace,
    verify_job_state_machine, AuditOptions, Diagnostic, EngineHint, LintCode, Location, Report,
    TargetView,
};
use qrio_backend::{topology, Backend};
use qrio_circuit::{library, Circuit};
use qrio_cluster::{DeviceRequirements, RetryPolicy};
use qrio_loadgen::{Scenario, WorkloadCircuit};
use qrio_meta::{builtin_registry, FidelityRankingConfig, StrategyRegistry};
use qrio_transpiler::transpile;

/// Parsed command line.
struct Options {
    json_path: Option<PathBuf>,
    deny_warnings: bool,
    self_check: bool,
    replay_to: Option<u64>,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        json_path: None,
        deny_warnings: false,
        self_check: false,
        replay_to: None,
        paths: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => {
                let path = iter.next().ok_or("--json needs a file path")?;
                options.json_path = Some(PathBuf::from(path));
            }
            "--deny-warnings" => options.deny_warnings = true,
            "--self-check" => options.self_check = true,
            "--replay-to" => {
                let cursor = iter.next().ok_or("--replay-to needs a watch-log cursor")?;
                options.replay_to = Some(
                    cursor
                        .parse()
                        .map_err(|e| format!("--replay-to: bad cursor '{cursor}': {e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: qrio-lint [--json PATH] [--deny-warnings] \
                            [--self-check] [--replay-to CURSOR JOURNAL] [PATH...]"
                    .into())
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            path => options.paths.push(PathBuf::from(path)),
        }
    }
    if options.paths.is_empty() {
        options.paths.push(PathBuf::from("scenarios"));
    }
    Ok(options)
}

/// Expand files/directories into a sorted list of lintable files: scenario
/// YAML, durability journals (`.qj`) and envelope traces (`.qtrace`).
fn collect_scenarios(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            let entries = fs::read_dir(path)
                .map_err(|e| format!("cannot read directory '{}': {e}", path.display()))?;
            for entry in entries {
                let entry = entry
                    .map_err(|e| format!("'{}': {e}", path.display()))?
                    .path();
                let is_lintable = entry.extension().is_some_and(|ext| {
                    ext == "yaml" || ext == "yml" || ext == "qj" || ext == "qtrace"
                });
                if entry.is_file() && is_lintable {
                    files.push(entry);
                }
            }
        } else if path.is_file() {
            files.push(path.clone());
        } else {
            return Err(format!("no such file or directory: '{}'", path.display()));
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

/// Read a file's 8-byte magic prefix, if it has one.
fn magic_prefix(path: &Path) -> Option<[u8; 8]> {
    let mut magic = [0u8; 8];
    std::io::Read::read_exact(&mut fs::File::open(path).ok()?, &mut magic).ok()?;
    Some(magic)
}

/// Whether a file should be linted as a durability journal: by extension,
/// or by sniffing the `QRIOJRNL` magic for extensionless artifacts.
fn is_journal_file(path: &Path) -> bool {
    path.extension().is_some_and(|ext| ext == "qj")
        || magic_prefix(path).is_some_and(|magic| qrio_journal::looks_like_journal(&magic))
}

/// Whether a file should be linted as a control-plane envelope trace: by
/// extension, or by sniffing the `QRIOPROT` frame magic.
fn is_trace_file(path: &Path) -> bool {
    path.extension().is_some_and(|ext| ext == "qtrace")
        || magic_prefix(path).is_some_and(|magic| looks_like_envelope_trace(&magic))
}

/// The engine a tenant's circuit family runs on in the simulator.
fn engine_hint(circuit: WorkloadCircuit) -> EngineHint {
    match circuit {
        // Grover circuits are non-Clifford by construction.
        WorkloadCircuit::Grover => EngineHint::Statevector,
        WorkloadCircuit::Bv | WorkloadCircuit::Ghz | WorkloadCircuit::RandomClifford => {
            EngineHint::Stabilizer
        }
    }
}

/// Lint one scenario file end to end: parse, spec lints, then each tenant's
/// representative circuit both logically and transpiled onto every fleet
/// device that can host it.
fn lint_scenario_file(path: &Path, registry: &StrategyRegistry, report: &mut Report) {
    let subject = path.display().to_string();
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            report.push(Diagnostic::new(
                LintCode::ScenarioInvalid,
                Location::subject(&subject),
                format!("cannot read file: {e}"),
            ));
            return;
        }
    };
    let scenario = match Scenario::from_yaml(&text) {
        Ok(scenario) => scenario,
        Err(e) => {
            report.push(Diagnostic::new(
                LintCode::ScenarioInvalid,
                Location::subject(&subject),
                e.to_string(),
            ));
            return;
        }
    };

    report.extend(lint_scenario(&scenario, registry));
    report.extend(lint_chaos_scenario(&scenario));

    for tenant in &scenario.tenants {
        // Job #0 is representative: the family and width are fixed per
        // tenant, only secrets/marks/seeds vary across the stream.
        let Ok(circuit) = tenant.circuit_for(0) else {
            continue; // from_yaml validated this already
        };
        let name = format!("{}/{}", scenario.name, tenant.name);
        report.extend(lint_logical_circuit(&circuit, &name));
        report.extend(lint_simulation_path(&circuit, &name));
        report.extend(lint_engine_fit(
            &circuit,
            &name,
            engine_hint(tenant.circuit),
        ));
        for device in &scenario.fleet {
            if device.qubits < tenant.qubits {
                continue;
            }
            let backend = device.backend();
            match transpile(&circuit, &backend) {
                Ok(result) => report.extend(lint_transpile_result(&result, &name)),
                Err(e) => report.push(Diagnostic::new(
                    LintCode::ScenarioInvalid,
                    Location::at(&subject, format!("tenant '{}'", tenant.name)),
                    format!("transpilation for device '{}' failed: {e}", device.name),
                )),
            }
        }
    }
}

/// Lint the shipped figure/benchmark circuit corpus: every library circuit
/// the experiments use, transpiled onto a small heterogeneous fleet, must be
/// routed-lint clean — the regression net for the CCX-on-uncoupled-pairs bug
/// class.
fn lint_circuit_corpus(report: &mut Report) {
    let corpus: Vec<(&str, Circuit)> = vec![
        (
            "bv_10110",
            library::bernstein_vazirani_with_ancilla(5, 0b10110).expect("library circuit"),
        ),
        ("ghz_6", library::ghz(6).expect("library circuit")),
        ("qft_4", library::qft(4).expect("library circuit")),
        ("grover_3", library::grover(3, 5).expect("library circuit")),
        (
            "clifford_6x6",
            library::random_clifford_circuit(6, 6, 7).expect("library circuit"),
        ),
    ];
    let fleet = [
        Backend::uniform("lint-line", topology::line(8), 0.001, 0.01),
        Backend::uniform("lint-grid", topology::grid(3, 3), 0.002, 0.02),
        Backend::uniform("lint-ring", topology::ring(8), 0.004, 0.04),
    ];
    for (name, circuit) in &corpus {
        report.extend(lint_logical_circuit(circuit, name));
        report.extend(lint_simulation_path(circuit, name));
        for backend in &fleet {
            match transpile(circuit, backend) {
                Ok(result) => report.extend(lint_transpile_result(&result, name)),
                Err(e) => report.push(Diagnostic::new(
                    LintCode::ScenarioInvalid,
                    Location::subject(format!("circuit corpus '{name}'")),
                    format!("transpilation for device '{}' failed: {e}", backend.name()),
                )),
            }
        }
    }
}

/// Run seeded violations and check each expected code fires. Returns the
/// failures (empty = the analyzer still catches everything it claims to).
fn self_check() -> Vec<String> {
    let mut failures = Vec::new();
    let mut expect = |label: &str, code: LintCode, diagnostics: Vec<Diagnostic>| {
        let fired = diagnostics.iter().any(|d| d.code == code);
        let status = if fired { "ok" } else { "MISSED" };
        println!("self-check: {label:<38} {} ... {status}", code.code());
        if !fired {
            failures.push(format!("{label}: expected {} to fire", code.code()));
        }
    };

    // 1. A CX across an uncoupled pair on a line device.
    let mut uncoupled = Circuit::new(5, 5);
    uncoupled.h(0).expect("fixture");
    uncoupled.cx(0, 4).expect("fixture");
    uncoupled.measure_all().expect("fixture");
    let line = Backend::uniform("line-5", topology::line(5), 0.01, 0.02);
    expect(
        "uncoupled CX on line device",
        LintCode::UncoupledTwoQubitGate,
        lint_routed_circuit(&uncoupled, "uncoupled-cx", TargetView::from_backend(&line)),
    );

    // 2. A T gate in a circuit bound for the stabilizer engine.
    let mut t_circuit = Circuit::new(2, 2);
    t_circuit.h(0).expect("fixture");
    t_circuit.t(0).expect("fixture");
    t_circuit.cx(0, 1).expect("fixture");
    t_circuit.measure_all().expect("fixture");
    expect(
        "T gate bound for stabilizer engine",
        LintCode::NonCliffordForStabilizer,
        lint_engine_fit(&t_circuit, "t-job", EngineHint::Stabilizer),
    );

    // 2b. A mid-circuit reset that forces the simulator off the Pauli-frame
    // path onto per-shot replay.
    let mut mid_reset = Circuit::new(2, 2);
    mid_reset.x(0).expect("fixture");
    mid_reset.reset(0).expect("fixture");
    mid_reset.h(0).expect("fixture");
    mid_reset.measure_all().expect("fixture");
    expect(
        "mid-circuit reset forcing replay",
        LintCode::MidCircuitForcesReplay,
        lint_simulation_path(&mid_reset, "mid-reset"),
    );

    // 3. A scenario event after the arrival horizon.
    let late_event = "scenario: self-check\n\
                      seed: 1\n\
                      durationMs: 3000\n\
                      maxJobs: 10\n\
                      fleet:\n\
                      - device: alpha\n\
                      \x20 qubits: 6\n\
                      tenants:\n\
                      - tenant: t\n\
                      \x20 strategy: min_queue\n\
                      \x20 circuit: ghz\n\
                      \x20 qubits: 4\n\
                      \x20 shots: 16\n\
                      \x20 ratePerSec: 1.0\n\
                      events:\n\
                      - atMs: 5000\n\
                      \x20 kind: outage\n\
                      \x20 device: alpha\n\
                      \x20 downMs: 100\n";
    let registry = builtin_registry(FidelityRankingConfig::default());
    let horizon_diags = match Scenario::from_yaml(late_event) {
        Ok(scenario) => lint_scenario(&scenario, &registry),
        // An unparsable fixture yields no diagnostics, so the expectation
        // below fails and reports the miss.
        Err(_) => Vec::new(),
    };
    expect(
        "scenario event beyond the horizon",
        LintCode::EventOutsideHorizon,
        horizon_diags,
    );

    // 4. Requirements no fleet device satisfies.
    let fleet = [
        Backend::uniform("small-a", topology::line(5), 0.01, 0.05),
        Backend::uniform("small-b", topology::line(8), 0.02, 0.10),
    ];
    let requirements = DeviceRequirements {
        min_qubits: Some(40),
        ..DeviceRequirements::default()
    };
    expect(
        "unsatisfiable device requirements",
        LintCode::UnsatisfiableRequirements,
        lint_requirements(&requirements, &fleet, "job 'picky'"),
    );

    // 5. The watch-log auditor rejects a log that loses a job.
    let truncated = {
        use qrio::{JobEvent, JobId, JobState};
        vec![JobEvent {
            seq: 0,
            at: 0,
            job: JobId::new("lost-job"),
            from: None,
            to: JobState::Submitted,
            node: None,
            reason: None,
        }]
    };
    expect(
        "watch log losing a non-terminal job",
        LintCode::JobLost,
        audit_watch_log(&truncated, AuditOptions::default()),
    );

    // 6-9. The durability-journal family, over hand-built byte fixtures.
    {
        use qrio::durability::{
            encode_events_record, RECORD_COMMAND, RECORD_SNAPSHOT, RECORD_VERSION,
        };
        use qrio::{JobEvent, JobId, JobState};
        use qrio_journal::{encode_record, header_bytes, Record};

        let event = JobEvent {
            seq: 0,
            at: 0,
            job: JobId::new("fixture-job"),
            from: None,
            to: JobState::Submitted,
            node: None,
            reason: None,
        };
        let journal = |records: &[Record]| {
            let mut bytes = header_bytes().to_vec();
            for record in records {
                bytes.extend(encode_record(record));
            }
            bytes
        };

        let mut torn = journal(&[encode_events_record(std::slice::from_ref(&event))]);
        torn.truncate(torn.len() - 2);
        expect(
            "journal with a torn tail record",
            LintCode::TornTailRecord,
            lint_journal_bytes("self-check torn", &torn),
        );

        let liar = Record::new(
            RECORD_SNAPSHOT,
            RECORD_VERSION,
            999u64.to_le_bytes().to_vec(),
        );
        expect(
            "snapshot ahead of the log head",
            LintCode::SnapshotBeyondLogHead,
            lint_journal_bytes(
                "self-check liar-snapshot",
                &journal(&[encode_events_record(&[event]), liar]),
            ),
        );

        let future = Record::new(RECORD_COMMAND, 9, vec![0]);
        expect(
            "record from a future codec version",
            LintCode::RecordVersionMismatch,
            lint_journal_bytes("self-check future-record", &journal(&[future])),
        );

        expect(
            "file without the journal magic",
            LintCode::MalformedJournal,
            lint_journal_bytes("self-check garbage", b"not a journal at all"),
        );
    }

    // 10-13. The control-plane envelope-trace family, over hand-built frame
    // streams.
    {
        use qrio_proto::{Envelope, NodeCommand, NodeReport, Payload, RunVerdict};

        let envelope = |seq: u64, node: &str, payload: Payload| Envelope {
            seq,
            node_id: node.to_string(),
            virtual_ts: seq,
            payload,
        };
        let trace = |envelopes: &[Envelope]| -> Vec<u8> {
            envelopes.iter().flat_map(Envelope::encode).collect()
        };

        expect(
            "envelope stream skipping a seq",
            LintCode::EnvelopeSeqGap,
            lint_envelope_trace_bytes(
                "self-check seq-gap",
                &trace(&[
                    envelope(0, "alpha", Payload::Command(NodeCommand::Probe)),
                    envelope(2, "alpha", Payload::Command(NodeCommand::Probe)),
                ]),
            ),
        );

        expect(
            "phase report for an undispatched job",
            LintCode::ReportForUnboundJob,
            lint_envelope_trace_bytes(
                "self-check orphan-report",
                &trace(&[envelope(
                    0,
                    "alpha",
                    Payload::Report(NodeReport::Phase {
                        job: "ghost".into(),
                        attempt: 1,
                        verdict: RunVerdict::Failed {
                            reason: "fixture".into(),
                        },
                    }),
                )]),
            ),
        );

        let run = qrio_proto::RunPayload {
            job: "late-job".into(),
            attempt: 1,
            image_name: "img".into(),
            image_files: Vec::new(),
            qasm: String::new(),
            num_qubits: 2,
            shots: 8,
            threads: 1,
        };
        expect(
            "run command sent after cordon",
            LintCode::CommandAfterCordon,
            lint_envelope_trace_bytes(
                "self-check cordoned-run",
                &trace(&[
                    envelope(0, "alpha", Payload::Command(NodeCommand::Cordon)),
                    envelope(
                        1,
                        "alpha",
                        Payload::Command(NodeCommand::Run { payload: run }),
                    ),
                ]),
            ),
        );

        let mut future = envelope(0, "alpha", Payload::Command(NodeCommand::Probe)).encode();
        future[8] = 0x2a; // version u16 LE sits right after the 8-byte magic
        future[9] = 0x00;
        expect(
            "envelope from a future wire version",
            LintCode::EnvelopeVersionMismatch,
            lint_envelope_trace_bytes("self-check future-envelope", &future),
        );

        expect(
            "file without the frame magic",
            LintCode::MalformedEnvelopeTrace,
            lint_envelope_trace_bytes("self-check trace-garbage", b"not a trace at all"),
        );
    }

    // 14-17. The fault-tolerance configuration family.
    {
        use qrio::BreakerConfig;

        let zero_attempts = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::fixed(1, 5)
        };
        expect(
            "retry policy with zero attempts",
            LintCode::RetryNeverRuns,
            lint_retry_policy(&zero_attempts, None, "self-check zero-retry"),
        );

        // 4 attempts x 50-tick delays = 150 ticks of backoff vs a deadline
        // of 100.
        expect(
            "backoff schedule outliving the deadline",
            LintCode::BackoffOutlivesDeadline,
            lint_retry_policy(
                &RetryPolicy::fixed(4, 50),
                Some(100),
                "self-check doomed-backoff",
            ),
        );

        let saturated = "scenario: self-check-chaos\n\
                         seed: 1\n\
                         durationMs: 1000\n\
                         maxJobs: 5\n\
                         fleet:\n\
                         - device: alpha\n\
                         \x20 qubits: 6\n\
                         tenants:\n\
                         - tenant: t\n\
                         \x20 strategy: min_queue\n\
                         \x20 circuit: ghz\n\
                         \x20 qubits: 4\n\
                         \x20 shots: 16\n\
                         \x20 ratePerSec: 1.0\n\
                         events:\n\
                         - kind: faults\n\
                         \x20 atMs: 0\n\
                         \x20 transientRate: 0.7\n\
                         \x20 flapRate: 0.4\n";
        let saturated_diags = match Scenario::from_yaml(saturated) {
            Ok(scenario) => lint_chaos_scenario(&scenario),
            Err(_) => Vec::new(),
        };
        expect(
            "chaos fault rates summing past 1.0",
            LintCode::FaultRateSaturated,
            saturated_diags,
        );

        let inverted = BreakerConfig {
            consecutive_failures: 0,
            failure_rate: 0.0,
            ..BreakerConfig::default()
        };
        expect(
            "inverted circuit-breaker thresholds",
            LintCode::BreakerThresholdsInverted,
            lint_breaker_config(&inverted, "self-check inverted-breaker"),
        );
    }

    failures
}

/// `--replay-to CURSOR JOURNAL`: the time-travel inspector. Replays the
/// journal up to the watch-log cursor and prints the reconstructed
/// lifecycle/scheduler state — deterministic output, diffable across runs.
fn replay_inspect(paths: &[PathBuf], cursor: u64) -> ExitCode {
    let [path] = paths else {
        eprintln!("qrio-lint: --replay-to needs exactly one journal path");
        return ExitCode::from(2);
    };
    if !path.is_file() || !is_journal_file(path) {
        eprintln!(
            "qrio-lint: --replay-to: '{}' is not a durability journal",
            path.display()
        );
        return ExitCode::from(2);
    }
    match qrio::Qrio::replay_to(path, cursor) {
        Ok((qrio, checkpoint)) => {
            println!("{} @ cursor {cursor}", path.display());
            println!("{checkpoint}");
            print!("{}", qrio.describe_state());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("qrio-lint: --replay-to: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("qrio-lint: {message}");
            return ExitCode::from(2);
        }
    };

    if options.self_check {
        let failures = self_check();
        return if failures.is_empty() {
            println!("self-check: all seeded violations detected");
            ExitCode::SUCCESS
        } else {
            for failure in &failures {
                eprintln!("qrio-lint: self-check failed: {failure}");
            }
            ExitCode::from(2)
        };
    }

    if let Some(cursor) = options.replay_to {
        return replay_inspect(&options.paths, cursor);
    }

    let files = match collect_scenarios(&options.paths) {
        Ok(files) => files,
        Err(message) => {
            eprintln!("qrio-lint: {message}");
            return ExitCode::from(2);
        }
    };

    let registry = builtin_registry(FidelityRankingConfig::default());
    let mut report = Report::new();

    // The state machine is part of every run: the lifecycle contract must
    // hold no matter which scenarios are being linted.
    report.extend(verify_job_state_machine().diagnostics);
    lint_circuit_corpus(&mut report);
    for file in &files {
        if is_journal_file(file) {
            report.extend(lint_journal_file(file));
        } else if is_trace_file(file) {
            report.extend(lint_envelope_trace_file(file));
        } else {
            lint_scenario_file(file, &registry, &mut report);
        }
    }

    print!("{}", report.render_human());
    println!(
        "linted {} file(s) (scenarios, journals and traces) and the builtin circuit corpus",
        files.len()
    );

    if let Some(json_path) = &options.json_path {
        if let Err(e) = fs::write(json_path, report.to_json()) {
            eprintln!("qrio-lint: cannot write '{}': {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    if report.fails(options.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
