//! Lints over control-plane envelope traces (`qrio-proto` frame streams):
//! the QL06xx family.
//!
//! A trace is the flight recorder of the orchestrator ↔ node-agent
//! conversation: concatenated encoded [`Envelope`] frames in both
//! directions, as recorded by `Qrio::enable_control_trace`. These lints
//! replay the conversation's *bookkeeping* — sequence numbers, bindings,
//! cordon state — without executing anything.
//!
//! * **QL0600** (error) — envelope sequence numbers are per node *and* per
//!   direction and must be dense (`0, 1, 2, ...` from the first frame
//!   observed). A gap means a message was dropped; going backwards means
//!   frames were reordered or duplicated.
//! * **QL0601** (error) — an agent reported a [`NodeReport::Phase`] verdict
//!   for a job the trace never dispatched to that node with a `Run` command:
//!   the report is orphaned, or the trace was truncated at the front.
//! * **QL0602** (warning) — the orchestrator sent a `Run` command to a node
//!   after `Cordon` and before any `Uncordon`. Agents reject such runs, so
//!   the command is wasted work and usually a reconcile-loop bug.
//! * **QL0603** (error) — a frame's header declares a wire version this
//!   build does not speak. The frame is skipped (the header is
//!   version-independent) and scanning continues behind it.
//! * **QL0604** (error) — the trace is not a QRIOPROT frame stream at all,
//!   or a frame is corrupt (bad magic, bad checksum, truncated, undecodable
//!   payload). Scanning stops at the first such frame: byte lengths past it
//!   are untrustworthy.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use qrio_proto::{Envelope, FrameHeader, NodeCommand, NodeReport, Payload, ProtoError};

use crate::diag::{Diagnostic, LintCode, Location};

/// Message direction, derived from the envelope payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Direction {
    Command,
    Report,
}

impl Direction {
    fn name(self) -> &'static str {
        match self {
            Direction::Command => "command",
            Direction::Report => "report",
        }
    }
}

/// Lint a control-plane trace's full byte image: a concatenation of encoded
/// envelope frames, both directions interleaved in transport order.
/// `subject` names the trace in the diagnostics (usually its file path).
pub fn lint_envelope_trace_bytes(subject: &str, bytes: &[u8]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();

    // Decode pass: peel frames off the stream, skipping (and flagging)
    // version-mismatched ones, stopping at corruption.
    let mut envelopes: Vec<Envelope> = Vec::new();
    let mut cursor = 0usize;
    let mut frame_index = 0usize;
    while cursor < bytes.len() {
        let context = format!("frame #{frame_index} at byte {cursor}");
        match Envelope::decode(&bytes[cursor..]) {
            Ok((envelope, consumed)) => {
                envelopes.push(envelope);
                cursor += consumed;
            }
            Err(ProtoError::UnsupportedVersion { found, supported }) => {
                diagnostics.push(Diagnostic::new(
                    LintCode::EnvelopeVersionMismatch,
                    Location::at(subject, &context),
                    format!("frame version {found} (this build speaks {supported})"),
                ));
                // The prefix (magic + version + length) is stable across
                // versions, so the frame can be stepped over.
                match FrameHeader::peek(&bytes[cursor..]) {
                    Ok(header) => cursor += header.frame_len,
                    Err(_) => break,
                }
            }
            Err(err) => {
                diagnostics.push(Diagnostic::new(
                    LintCode::MalformedEnvelopeTrace,
                    Location::at(subject, &context),
                    err.to_string(),
                ));
                break;
            }
        }
        frame_index += 1;
    }

    // Bookkeeping pass over the successfully decoded conversation.
    let mut next_seq: BTreeMap<(String, Direction), u64> = BTreeMap::new();
    let mut dispatched: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut cordoned: BTreeMap<String, bool> = BTreeMap::new();
    for (index, envelope) in envelopes.iter().enumerate() {
        let direction = match &envelope.payload {
            Payload::Command(_) => Direction::Command,
            Payload::Report(_) => Direction::Report,
        };
        let context = format!(
            "envelope #{index} ({} '{}' seq {})",
            direction.name(),
            envelope.node_id,
            envelope.seq
        );

        // QL0600: per-node, per-direction dense sequencing. The first frame
        // observed for a stream sets its base — a trace may legitimately
        // start mid-conversation.
        let key = (envelope.node_id.clone(), direction);
        match next_seq.get(&key) {
            Some(&expected) if envelope.seq != expected => {
                diagnostics.push(Diagnostic::new(
                    LintCode::EnvelopeSeqGap,
                    Location::at(subject, &context),
                    format!(
                        "expected {} seq {expected} for node '{}', found {}",
                        direction.name(),
                        envelope.node_id,
                        envelope.seq
                    ),
                ));
            }
            _ => {}
        }
        next_seq.insert(key, envelope.seq + 1);

        match &envelope.payload {
            Payload::Command(command) => {
                match command {
                    NodeCommand::Run { payload } => {
                        // QL0602 first: the run is recorded as dispatched
                        // either way, since the agent still answers it.
                        if cordoned.get(&envelope.node_id).copied().unwrap_or(false) {
                            diagnostics.push(Diagnostic::new(
                                LintCode::CommandAfterCordon,
                                Location::at(subject, &context),
                                format!(
                                    "Run '{}' sent to cordoned node '{}'",
                                    payload.job, envelope.node_id
                                ),
                            ));
                        }
                        dispatched
                            .entry(envelope.node_id.clone())
                            .or_default()
                            .push(payload.job.clone());
                    }
                    NodeCommand::Cordon => {
                        cordoned.insert(envelope.node_id.clone(), true);
                    }
                    NodeCommand::Uncordon => {
                        cordoned.insert(envelope.node_id.clone(), false);
                    }
                    _ => {}
                }
            }
            Payload::Report(NodeReport::Phase { job, .. }) => {
                // QL0601: a phase verdict must answer a Run this trace saw.
                let known = dispatched
                    .get(&envelope.node_id)
                    .is_some_and(|jobs| jobs.iter().any(|j| j == job));
                if !known {
                    diagnostics.push(Diagnostic::new(
                        LintCode::ReportForUnboundJob,
                        Location::at(subject, &context),
                        format!(
                            "phase verdict for job '{job}' never dispatched to node '{}'",
                            envelope.node_id
                        ),
                    ));
                }
            }
            Payload::Report(_) => {}
        }
    }

    diagnostics
}

/// [`lint_envelope_trace_bytes`] over a file on disk.
pub fn lint_envelope_trace_file(path: &Path) -> Vec<Diagnostic> {
    let subject = path.display().to_string();
    match fs::read(path) {
        Ok(bytes) => lint_envelope_trace_bytes(&subject, &bytes),
        Err(err) => vec![Diagnostic::new(
            LintCode::MalformedEnvelopeTrace,
            Location::subject(&subject),
            format!("cannot read file: {err}"),
        )],
    }
}

/// Whether a byte prefix looks like a control-plane envelope trace (starts
/// with the `QRIOPROT` frame magic).
pub fn looks_like_envelope_trace(prefix: &[u8]) -> bool {
    prefix.len() >= qrio_proto::PROTO_MAGIC.len()
        && prefix[..qrio_proto::PROTO_MAGIC.len()] == qrio_proto::PROTO_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_proto::RunPayload;

    fn envelope(seq: u64, node: &str, payload: Payload) -> Envelope {
        Envelope {
            seq,
            node_id: node.into(),
            virtual_ts: seq,
            payload,
        }
    }

    fn run_command(seq: u64, node: &str, job: &str) -> Envelope {
        envelope(
            seq,
            node,
            Payload::Command(NodeCommand::Run {
                payload: RunPayload {
                    job: job.into(),
                    attempt: 1,
                    image_name: "img".into(),
                    image_files: vec![],
                    qasm: String::new(),
                    num_qubits: 2,
                    shots: 8,
                    threads: 1,
                },
            }),
        )
    }

    fn phase_report(seq: u64, node: &str, job: &str) -> Envelope {
        envelope(
            seq,
            node,
            Payload::Report(NodeReport::Phase {
                job: job.into(),
                attempt: 1,
                verdict: qrio_proto::RunVerdict::Failed {
                    reason: "test".into(),
                },
            }),
        )
    }

    fn trace(envelopes: &[Envelope]) -> Vec<u8> {
        envelopes.iter().flat_map(Envelope::encode).collect()
    }

    fn codes(diagnostics: &[Diagnostic]) -> Vec<LintCode> {
        diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_conversation_produces_no_diagnostics() {
        let bytes = trace(&[
            envelope(
                0,
                "alpha",
                Payload::Command(NodeCommand::Bind {
                    backend_spec: "spec".into(),
                    injector: None,
                }),
            ),
            envelope(
                0,
                "alpha",
                Payload::Report(NodeReport::Calibration { revision: 1 }),
            ),
            run_command(1, "alpha", "job-1"),
            phase_report(1, "alpha", "job-1"),
        ]);
        assert!(lint_envelope_trace_bytes("clean", &bytes).is_empty());
    }

    #[test]
    fn seq_gap_fires_per_node_and_direction() {
        // alpha's command stream jumps 0 -> 2; beta interleaving its own
        // dense stream must not mask or trigger anything.
        let bytes = trace(&[
            envelope(0, "alpha", Payload::Command(NodeCommand::Probe)),
            envelope(0, "beta", Payload::Command(NodeCommand::Probe)),
            envelope(2, "alpha", Payload::Command(NodeCommand::Probe)),
            envelope(1, "beta", Payload::Command(NodeCommand::Probe)),
        ]);
        assert_eq!(
            codes(&lint_envelope_trace_bytes("gap", &bytes)),
            vec![LintCode::EnvelopeSeqGap]
        );
    }

    #[test]
    fn orphan_phase_report_fires() {
        // The job ran on beta, but alpha reports it.
        let bytes = trace(&[
            run_command(0, "beta", "job-x"),
            phase_report(0, "alpha", "job-x"),
        ]);
        assert_eq!(
            codes(&lint_envelope_trace_bytes("orphan", &bytes)),
            vec![LintCode::ReportForUnboundJob]
        );
    }

    #[test]
    fn run_after_cordon_warns_until_uncordon() {
        let bytes = trace(&[
            envelope(0, "alpha", Payload::Command(NodeCommand::Cordon)),
            run_command(1, "alpha", "job-a"),
            envelope(2, "alpha", Payload::Command(NodeCommand::Uncordon)),
            run_command(3, "alpha", "job-b"),
            phase_report(0, "alpha", "job-a"),
            phase_report(1, "alpha", "job-b"),
        ]);
        assert_eq!(
            codes(&lint_envelope_trace_bytes("cordon", &bytes)),
            vec![LintCode::CommandAfterCordon]
        );
    }

    #[test]
    fn version_mismatch_is_flagged_and_stepped_over() {
        let good = envelope(0, "alpha", Payload::Command(NodeCommand::Probe));
        let mut bad = good.encode();
        bad[8] = 0x63; // version u16 LE right after the 8-byte magic
        bad[9] = 0x00;
        let mut bytes = bad;
        bytes.extend(trace(&[good]));
        assert_eq!(
            codes(&lint_envelope_trace_bytes("version", &bytes)),
            vec![LintCode::EnvelopeVersionMismatch]
        );
    }

    #[test]
    fn corruption_stops_the_scan() {
        let mut bytes = trace(&[envelope(0, "alpha", Payload::Command(NodeCommand::Probe))]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // break the CRC
        assert_eq!(
            codes(&lint_envelope_trace_bytes("crc", &bytes)),
            vec![LintCode::MalformedEnvelopeTrace]
        );
        assert_eq!(
            codes(&lint_envelope_trace_bytes("garbage", b"not a trace")),
            vec![LintCode::MalformedEnvelopeTrace]
        );
    }

    #[test]
    fn trace_sniffing_matches_the_frame_magic() {
        assert!(looks_like_envelope_trace(b"QRIOPROT plus anything"));
        assert!(!looks_like_envelope_trace(b"QRIOJRNL"));
        assert!(!looks_like_envelope_trace(b"QR"));
    }
}
