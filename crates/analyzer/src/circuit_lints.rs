//! Circuit lints over the gate-level IR: structural mistakes a job would
//! otherwise only reveal at execution time (or worse, silently).
//!
//! Two stages exist because the same circuit is "right" in different ways at
//! different pipeline points. A *logical* circuit (as the user submitted it)
//! should use every declared qubit and not operate on measured qubits; a
//! *routed* circuit (transpiler output) must additionally respect the target
//! device's coupling map, basis gates and qubit count — the exact property
//! the seed's CCX-on-uncoupled-pairs bug violated.

use qrio_backend::{Backend, BasisGates, CouplingMap};
use qrio_circuit::{Circuit, Gate};
use qrio_transpiler::TranspileResult;

use crate::diag::{Diagnostic, LintCode, Location};

/// Which simulation engine a circuit is destined for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineHint {
    /// The stabilizer engine: only Clifford circuits are representable.
    Stabilizer,
    /// The dense statevector engine: any circuit.
    Statevector,
}

/// A view of the device a routed circuit targets — either borrowed straight
/// from a [`Backend`] or from the routing metadata a [`TranspileResult`]
/// carries, so the uncoupled-pair lint verifies against the *actual* routing
/// target instead of re-deriving one.
#[derive(Debug, Clone, Copy)]
pub struct TargetView<'a> {
    /// Device name, for messages.
    pub device: &'a str,
    /// Physical qubit count.
    pub num_qubits: usize,
    /// The device's qubit-connectivity graph.
    pub coupling_map: &'a CouplingMap,
    /// The device's native gate set.
    pub basis_gates: &'a BasisGates,
}

impl<'a> TargetView<'a> {
    /// View a backend as a routing target.
    pub fn from_backend(backend: &'a Backend) -> Self {
        TargetView {
            device: backend.name(),
            num_qubits: backend.num_qubits(),
            coupling_map: backend.coupling_map(),
            basis_gates: backend.basis_gates(),
        }
    }

    /// View the routing metadata of a transpile result as a target.
    pub fn from_transpile_result(result: &'a TranspileResult) -> Self {
        TargetView {
            device: &result.target.device,
            num_qubits: result.target.num_qubits,
            coupling_map: &result.target.coupling_map,
            basis_gates: &result.target.basis_gates,
        }
    }
}

fn instruction_context(index: usize, gate: &Gate, qubits: &[usize]) -> String {
    let qubit_list = qubits
        .iter()
        .map(|q| format!("q{q}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("instruction {index}: {} {qubit_list}", gate.name())
}

/// Lint a circuit as the user wrote it (pre-layout): dead qubits, operations
/// after terminal measurement, and missing measurements.
pub fn lint_logical_circuit(circuit: &Circuit, name: &str) -> Vec<Diagnostic> {
    let subject = format!("circuit '{name}'");
    let mut diagnostics = Vec::new();

    // QL0005: declared qubits no instruction (barriers aside) ever touches.
    let mut touched = vec![false; circuit.num_qubits()];
    for inst in circuit.instructions() {
        if inst.gate == Gate::Barrier {
            continue;
        }
        for &q in &inst.qubits {
            if let Some(flag) = touched.get_mut(q) {
                *flag = true;
            }
        }
    }
    for (qubit, touched) in touched.iter().enumerate() {
        if !touched {
            diagnostics.push(Diagnostic::new(
                LintCode::DeadQubit,
                Location::subject(&subject),
                format!(
                    "qubit q{qubit} is declared but never used; the dead width \
                     inflates device filtering and scheduling"
                ),
            ));
        }
    }

    // QL0006: gates on a qubit after its measurement, with no reset between.
    let mut measured = vec![false; circuit.num_qubits()];
    for (index, inst) in circuit.instructions().iter().enumerate() {
        match inst.gate {
            Gate::Barrier => continue,
            Gate::Measure => {
                for &q in &inst.qubits {
                    if let Some(flag) = measured.get_mut(q) {
                        *flag = true;
                    }
                }
                continue;
            }
            Gate::Reset => {
                for &q in &inst.qubits {
                    if let Some(flag) = measured.get_mut(q) {
                        *flag = false;
                    }
                }
                continue;
            }
            _ => {}
        }
        for &q in &inst.qubits {
            if measured.get(q).copied().unwrap_or(false) {
                diagnostics.push(Diagnostic::new(
                    LintCode::GateAfterMeasurement,
                    Location::at(
                        &subject,
                        instruction_context(index, &inst.gate, &inst.qubits),
                    ),
                    format!(
                        "q{q} was already measured; operations past a terminal \
                         measurement never affect the recorded outcome"
                    ),
                ));
            }
        }
    }

    // QL0007: nothing is ever measured, so sampling produces no data.
    if circuit.measurement_count() == 0 {
        diagnostics.push(Diagnostic::new(
            LintCode::NoMeasurements,
            Location::subject(&subject),
            "circuit has no measurements; every shot yields an empty record",
        ));
    }

    diagnostics
}

/// Lint a routed circuit against its target device: coupling, basis and
/// width — the invariants the transpiler must have established.
pub fn lint_routed_circuit(
    circuit: &Circuit,
    name: &str,
    target: TargetView<'_>,
) -> Vec<Diagnostic> {
    let subject = format!("circuit '{name}' on device '{}'", target.device);
    let mut diagnostics = Vec::new();

    // QL0003: the circuit does not fit on the device at all.
    if circuit.num_qubits() > target.num_qubits {
        diagnostics.push(Diagnostic::new(
            LintCode::WidthExceedsCapacity,
            Location::subject(&subject),
            format!(
                "circuit uses {} qubits but device '{}' has {}",
                circuit.num_qubits(),
                target.device,
                target.num_qubits
            ),
        ));
    }

    for (index, inst) in circuit.instructions().iter().enumerate() {
        if inst.gate == Gate::Barrier {
            continue;
        }
        // QL0001: two-qubit gates must land on coupled physical pairs.
        if inst.is_two_qubit_gate() {
            let (a, b) = (inst.qubits[0], inst.qubits[1]);
            if !target.coupling_map.has_edge(a, b) {
                diagnostics.push(Diagnostic::new(
                    LintCode::UncoupledTwoQubitGate,
                    Location::at(
                        &subject,
                        instruction_context(index, &inst.gate, &inst.qubits),
                    ),
                    format!(
                        "device '{}' has no coupling between q{a} and q{b}",
                        target.device
                    ),
                ));
            }
        }
        // QL0002: every gate must be expressible on the device.
        if !inst.gate.is_directive() && !target.basis_gates.contains(inst.gate.name()) {
            diagnostics.push(Diagnostic::new(
                LintCode::GateOutsideBasis,
                Location::at(
                    &subject,
                    instruction_context(index, &inst.gate, &inst.qubits),
                ),
                format!(
                    "gate '{}' is not in the basis of device '{}'",
                    inst.gate.name(),
                    target.device
                ),
            ));
        }
    }

    diagnostics
}

/// Lint a transpile result against the routing metadata it carries.
pub fn lint_transpile_result(result: &TranspileResult, name: &str) -> Vec<Diagnostic> {
    lint_routed_circuit(
        &result.circuit,
        name,
        TargetView::from_transpile_result(result),
    )
}

/// Lint a circuit against the engine it is bound for (QL0004): the stabilizer
/// engine only represents Clifford circuits, so a `T` gate bound for it will
/// be rejected (or force a silent statevector fallback) at execution time.
pub fn lint_engine_fit(circuit: &Circuit, name: &str, engine: EngineHint) -> Vec<Diagnostic> {
    if engine != EngineHint::Stabilizer {
        return Vec::new();
    }
    let subject = format!("circuit '{name}'");
    let offenders: Vec<(usize, String)> = circuit
        .instructions()
        .iter()
        .enumerate()
        .filter(|(_, inst)| {
            !matches!(inst.gate, Gate::Measure | Gate::Reset | Gate::Barrier)
                && !inst.gate.is_clifford()
        })
        .map(|(index, inst)| (index, inst.gate.name().to_string()))
        .collect();
    let Some((first_index, first_gate)) = offenders.first().cloned() else {
        return Vec::new();
    };
    vec![Diagnostic::new(
        LintCode::NonCliffordForStabilizer,
        Location::at(&subject, format!("instruction {first_index}: {first_gate}")),
        format!(
            "{} non-Clifford gate(s) (first: '{first_gate}') in a circuit bound \
             for the stabilizer engine; it needs the statevector engine",
            offenders.len()
        ),
    )]
}

/// Lint a Clifford circuit's simulator-path fit (QL0008): a reset anywhere,
/// or any operation after a measurement, makes the circuit ineligible for the
/// batched Pauli-frame path, so the executor falls back to per-shot replay —
/// typically an order of magnitude slower. Only the first offending
/// instruction is reported; fixing it may reveal later ones.
pub fn lint_simulation_path(circuit: &Circuit, name: &str) -> Vec<Diagnostic> {
    let subject = format!("circuit '{name}'");
    let mut measured = false;
    for (index, inst) in circuit.instructions().iter().enumerate() {
        match inst.gate {
            Gate::Barrier => continue,
            Gate::Measure => measured = true,
            Gate::Reset => {
                return vec![Diagnostic::new(
                    LintCode::MidCircuitForcesReplay,
                    Location::at(
                        &subject,
                        instruction_context(index, &inst.gate, &inst.qubits),
                    ),
                    "reset forces the simulator off the batched Pauli-frame \
                     path onto per-shot replay",
                )];
            }
            _ if measured => {
                return vec![Diagnostic::new(
                    LintCode::MidCircuitForcesReplay,
                    Location::at(
                        &subject,
                        instruction_context(index, &inst.gate, &inst.qubits),
                    ),
                    format!(
                        "'{}' after a measurement makes that measurement \
                         mid-circuit, forcing per-shot replay instead of the \
                         batched Pauli-frame path",
                        inst.gate.name()
                    ),
                )];
            }
            _ => {}
        }
    }
    Vec::new()
}

/// Lint a circuit's width against a whole fleet (QL0003): flags circuits no
/// declared device could ever host, the earliest-possible rejection point.
pub fn lint_width_against_fleet(
    circuit_width: usize,
    fleet: &[Backend],
    subject: &str,
) -> Vec<Diagnostic> {
    let largest = fleet.iter().map(Backend::num_qubits).max().unwrap_or(0);
    if fleet.is_empty() || circuit_width <= largest {
        return Vec::new();
    }
    vec![Diagnostic::new(
        LintCode::WidthExceedsCapacity,
        Location::subject(subject),
        format!(
            "circuit uses {circuit_width} qubits but the largest fleet device \
             has {largest}; no device can ever host this job"
        ),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use qrio_circuit::library;

    fn line_backend(n: usize) -> Backend {
        Backend::uniform("line", topology::line(n), 0.01, 0.02)
    }

    #[test]
    fn uncoupled_cx_is_flagged() {
        let mut circuit = Circuit::new(5, 5);
        circuit.h(0).unwrap();
        circuit.cx(0, 4).unwrap(); // line(5) couples only neighbors
        circuit.measure_all().unwrap();
        let backend = line_backend(5);
        let diags = lint_routed_circuit(&circuit, "bad-cx", TargetView::from_backend(&backend));
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::UncoupledTwoQubitGate));
    }

    #[test]
    fn coupled_circuit_is_clean_of_coupling_lints() {
        let mut circuit = Circuit::new(3, 3);
        circuit.h(0).unwrap();
        circuit.cx(0, 1).unwrap();
        circuit.cx(1, 2).unwrap();
        circuit.measure_all().unwrap();
        let backend = line_backend(3);
        let diags = lint_routed_circuit(&circuit, "ok", TargetView::from_backend(&backend));
        assert!(!diags
            .iter()
            .any(|d| d.code == LintCode::UncoupledTwoQubitGate));
    }

    #[test]
    fn gate_outside_basis_is_flagged() {
        let mut circuit = Circuit::new(2, 2);
        circuit.t(0).unwrap(); // 't' is not in the default uniform basis? it is — use ccx via swap
        circuit.swap(0, 1).unwrap();
        circuit.measure_all().unwrap();
        let backend = line_backend(2);
        let diags = lint_routed_circuit(&circuit, "raw", TargetView::from_backend(&backend));
        // The default basis excludes swap (it must be decomposed), so the
        // lint fires for the swap even though 't' may be representable.
        if !backend.basis_gates().contains("swap") {
            assert!(diags.iter().any(|d| d.code == LintCode::GateOutsideBasis));
        }
    }

    #[test]
    fn width_lints_fire_for_small_devices_and_fleets() {
        let circuit = library::ghz(8).unwrap();
        let backend = line_backend(5);
        let diags = lint_routed_circuit(&circuit, "ghz-8", TargetView::from_backend(&backend));
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::WidthExceedsCapacity));
        let fleet = vec![line_backend(5), line_backend(6)];
        let diags = lint_width_against_fleet(8, &fleet, "job 'ghz-8'");
        assert_eq!(diags.len(), 1);
        assert!(lint_width_against_fleet(6, &fleet, "job").is_empty());
    }

    #[test]
    fn dead_qubits_and_missing_measurements_are_flagged() {
        let mut circuit = Circuit::new(4, 4);
        circuit.h(0).unwrap();
        circuit.cx(0, 1).unwrap();
        let diags = lint_logical_circuit(&circuit, "partial");
        let dead = diags
            .iter()
            .filter(|d| d.code == LintCode::DeadQubit)
            .count();
        assert_eq!(dead, 2, "q2 and q3 are dead");
        assert!(diags.iter().any(|d| d.code == LintCode::NoMeasurements));
    }

    #[test]
    fn gate_after_measurement_is_flagged_and_reset_clears_it() {
        let mut circuit = Circuit::new(2, 2);
        circuit.h(0).unwrap();
        circuit.measure(0, 0).unwrap();
        circuit.x(0).unwrap(); // dead operation
        circuit.measure(1, 1).unwrap();
        let diags = lint_logical_circuit(&circuit, "post-measure");
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::GateAfterMeasurement));

        let mut with_reset = Circuit::new(1, 1);
        with_reset.h(0).unwrap();
        with_reset.measure(0, 0).unwrap();
        with_reset.reset(0).unwrap();
        with_reset.x(0).unwrap();
        let diags = lint_logical_circuit(&with_reset, "reset-reuse");
        assert!(!diags
            .iter()
            .any(|d| d.code == LintCode::GateAfterMeasurement));
    }

    #[test]
    fn mid_circuit_reset_and_measure_force_replay() {
        // A reset anywhere forces replay, even if measurements are terminal.
        let mut with_reset = Circuit::new(2, 2);
        with_reset.h(0).unwrap();
        with_reset.reset(0).unwrap();
        with_reset.measure_all().unwrap();
        let diags = lint_simulation_path(&with_reset, "reset");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::MidCircuitForcesReplay);

        // A gate after a measurement makes that measurement mid-circuit.
        let mut mid_measure = Circuit::new(2, 2);
        mid_measure.h(0).unwrap();
        mid_measure.measure(0, 0).unwrap();
        mid_measure.cx(0, 1).unwrap();
        mid_measure.measure(1, 1).unwrap();
        let diags = lint_simulation_path(&mid_measure, "mid-measure");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::MidCircuitForcesReplay);
        assert!(diags[0].message.contains("mid-circuit"));

        // Terminal measurements (even followed by more measurements or
        // barriers) stay on the frame path.
        let mut terminal = Circuit::new(2, 2);
        terminal.h(0).unwrap();
        terminal.cx(0, 1).unwrap();
        terminal.measure(0, 0).unwrap();
        terminal.barrier(&[]).unwrap();
        terminal.measure(1, 1).unwrap();
        assert!(lint_simulation_path(&terminal, "terminal").is_empty());
    }

    #[test]
    fn library_circuits_are_logically_clean() {
        for (name, circuit) in [
            ("bv", library::bernstein_vazirani(5, 0b10110).unwrap()),
            ("ghz", library::ghz(6).unwrap()),
            ("qft", library::qft(4).unwrap()),
        ] {
            let diags = lint_logical_circuit(&circuit, name);
            assert!(diags.is_empty(), "{name}: {diags:?}");
        }
    }

    #[test]
    fn stabilizer_engine_fit() {
        let clifford = library::ghz(4).unwrap();
        assert!(lint_engine_fit(&clifford, "ghz", EngineHint::Stabilizer).is_empty());
        let mut t_circuit = Circuit::new(2, 2);
        t_circuit.h(0).unwrap();
        t_circuit.t(0).unwrap();
        t_circuit.cx(0, 1).unwrap();
        t_circuit.measure_all().unwrap();
        let diags = lint_engine_fit(&t_circuit, "t-job", EngineHint::Stabilizer);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::NonCliffordForStabilizer);
        assert!(lint_engine_fit(&t_circuit, "t-job", EngineHint::Statevector).is_empty());
    }

    #[test]
    fn transpiled_library_circuit_is_lint_clean_via_metadata() {
        let circuit = library::bernstein_vazirani_with_ancilla(4, 0b1010).unwrap();
        let backend = Backend::uniform("grid", topology::grid(2, 3), 0.01, 0.02);
        let result = qrio_transpiler::transpile(&circuit, &backend).unwrap();
        assert!(lint_transpile_result(&result, "bv").is_empty());
    }
}
