//! Exhaustive verification of the [`JobState`] transition table.
//!
//! The lifecycle legality table ([`JobState::can_transition_to`]) is the
//! contract every component of the orchestrator writes against. This pass
//! model-checks the table itself, by brute force over the (tiny, finite)
//! state space:
//!
//! 1. **Reachability** — every state is reachable from `Submitted`
//!    (QL0201 otherwise): an unreachable state is dead code in the API.
//! 2. **Terminal closure** — terminal states have no outgoing arcs
//!    (QL0202 otherwise): "terminal" must mean terminal.
//! 3. **Liveness** — every non-terminal state can reach some terminal state
//!    (QL0203 otherwise): no job can get stuck in a live-lock region.

use qrio::JobState;

use crate::diag::{Diagnostic, LintCode, Location};

/// The initial state of the job lifecycle.
const INITIAL: JobState = JobState::Submitted;

fn successors(state: JobState) -> Vec<JobState> {
    JobState::ALL
        .into_iter()
        .filter(|&next| state.can_transition_to(next))
        .collect()
}

/// States reachable from `from` by following legal transitions (excluding
/// `from` itself unless a cycle returns to it).
fn reachable_from(from: JobState) -> Vec<JobState> {
    let mut seen = vec![from];
    let mut frontier = vec![from];
    while let Some(state) = frontier.pop() {
        for next in successors(state) {
            if !seen.contains(&next) {
                seen.push(next);
                frontier.push(next);
            }
        }
    }
    seen
}

/// A machine-readable summary of the verification, alongside the diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct StateMachineReport {
    /// Every legal arc of the table, in `JobState::ALL` order.
    pub transitions: Vec<(JobState, JobState)>,
    /// States reachable from the initial state.
    pub reachable: Vec<JobState>,
    /// Verification findings (empty when all three properties hold).
    pub diagnostics: Vec<Diagnostic>,
}

impl StateMachineReport {
    /// Whether all three transition-table properties hold.
    pub fn verified(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Exhaustively check the three properties of the `JobState` machine.
pub fn verify_job_state_machine() -> StateMachineReport {
    let subject = "JobState transition table";
    let mut diagnostics = Vec::new();

    let transitions: Vec<(JobState, JobState)> = JobState::ALL
        .into_iter()
        .flat_map(|from| successors(from).into_iter().map(move |to| (from, to)))
        .collect();

    // Property 1: every state is reachable from the initial state.
    let reachable = reachable_from(INITIAL);
    for state in JobState::ALL {
        if !reachable.contains(&state) {
            diagnostics.push(Diagnostic::new(
                LintCode::UnreachableState,
                Location::at(subject, format!("state {state}")),
                format!("{state} is unreachable from {INITIAL}"),
            ));
        }
    }

    // Property 2: terminal states have no outgoing arcs.
    for state in JobState::ALL.into_iter().filter(|s| s.is_terminal()) {
        for next in successors(state) {
            diagnostics.push(Diagnostic::new(
                LintCode::TerminalHasExit,
                Location::at(subject, format!("state {state}")),
                format!("terminal state {state} allows a transition to {next}"),
            ));
        }
    }

    // Property 3: every non-terminal state can reach a terminal state.
    for state in JobState::ALL.into_iter().filter(|s| !s.is_terminal()) {
        let escapes = reachable_from(state).iter().any(|s| s.is_terminal());
        if !escapes {
            diagnostics.push(Diagnostic::new(
                LintCode::NoPathToTerminal,
                Location::at(subject, format!("state {state}")),
                format!("no terminal state is reachable from {state}: jobs could be stuck forever"),
            ));
        }
    }

    StateMachineReport {
        transitions,
        reachable,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_shipped_table_verifies() {
        let report = verify_job_state_machine();
        assert!(report.verified(), "{:?}", report.diagnostics);
        assert_eq!(report.reachable.len(), JobState::ALL.len());
    }

    #[test]
    fn the_table_matches_the_documented_arcs() {
        let report = verify_job_state_machine();
        use JobState::*;
        let expected = [
            (Submitted, Queued),
            (Queued, Scheduled),
            (Queued, Failed),
            (Queued, Cancelled),
            (Scheduled, Scheduled),
            (Scheduled, Running),
            (Scheduled, Cancelled),
            (Running, Succeeded),
            (Running, Failed),
            (Running, Retrying),
            (Retrying, Queued),
            (Retrying, Failed),
            (Retrying, Cancelled),
        ];
        assert_eq!(report.transitions.len(), expected.len());
        for arc in expected {
            assert!(report.transitions.contains(&arc), "missing arc {arc:?}");
        }
    }
}
