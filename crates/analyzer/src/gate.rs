//! The lint-backed admission gate: runs the analyzer's circuit and spec
//! passes inside [`qrio::Qrio::enqueue`], so doomed jobs are rejected before
//! any metadata, image or queue slot is spent on them — the "fail at
//! submission, not in the queue" discipline cloud QPU time demands.

use qrio::{AdmissionGate, JobRequest};
use qrio_backend::Backend;
use qrio_circuit::qasm;

use crate::circuit_lints::{lint_logical_circuit, lint_width_against_fleet};
use crate::diag::Report;
use crate::spec_lints::lint_requirements;

/// An [`AdmissionGate`] that lints each request against the registered fleet.
///
/// Error-severity findings always reject; warnings reject only when
/// [`LintGate::deny_warnings`] is set. The rejection reason is the rendered
/// diagnostic list, so callers see exactly what a `qrio-lint` run would.
///
/// # Examples
///
/// ```
/// use qrio::{Qrio, QrioError, JobRequestBuilder};
/// use qrio_analyzer::LintGate;
/// use qrio_backend::{topology, Backend};
///
/// let mut qrio = Qrio::new();
/// qrio.add_device(Backend::uniform("dev", topology::line(5), 0.01, 0.02))
///     .unwrap();
/// qrio.set_admission_gate(Box::new(LintGate::new()));
///
/// // An 8-qubit job cannot fit the 5-qubit fleet: rejected at enqueue.
/// let request = JobRequestBuilder::new()
///     .with_circuit(&qrio_circuit::library::ghz(8).unwrap())
///     .job_name("too-wide")
///     .min_queue()
///     .build()
///     .unwrap();
/// assert!(matches!(
///     qrio.enqueue(&request),
///     Err(QrioError::AdmissionRejected { .. })
/// ));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct LintGate {
    deny_warnings: bool,
}

impl LintGate {
    /// A gate rejecting on error-severity findings only.
    pub fn new() -> Self {
        LintGate::default()
    }

    /// Escalate: reject on any finding, warnings included.
    #[must_use]
    pub fn deny_warnings(mut self) -> Self {
        self.deny_warnings = true;
        self
    }

    /// Run the admission passes over one request, returning the full report
    /// (also usable outside the enqueue path, e.g. from a pre-submission UI).
    pub fn analyze(&self, request: &JobRequest, fleet: &[Backend]) -> Report {
        let mut report = Report::new();
        let subject = format!("job '{}'", request.job_name);
        if !request.qasm.is_empty() {
            // An unparsable circuit is rejected by enqueue itself; the gate
            // only lints what parses.
            if let Ok(circuit) = qasm::parse_qasm(&request.qasm) {
                report.extend(lint_logical_circuit(&circuit, &request.job_name));
                report.extend(lint_width_against_fleet(
                    circuit.num_qubits(),
                    fleet,
                    &subject,
                ));
            }
        } else {
            report.extend(lint_width_against_fleet(
                request.num_qubits,
                fleet,
                &subject,
            ));
        }
        report.extend(lint_requirements(&request.requirements, fleet, &subject));
        report
    }
}

impl AdmissionGate for LintGate {
    fn check(&self, request: &JobRequest, fleet: &[Backend]) -> Result<(), String> {
        let report = self.analyze(request, fleet);
        if report.fails(self.deny_warnings) {
            Err(report.render_human().trim_end().to_string())
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio::{JobRequestBuilder, Qrio, QrioError};
    use qrio_backend::topology;
    use qrio_circuit::library;
    use qrio_cluster::DeviceRequirements;

    fn deployment() -> Qrio {
        let mut qrio = Qrio::new();
        qrio.add_device(Backend::uniform("dev-a", topology::line(6), 0.01, 0.02))
            .unwrap();
        qrio.add_device(Backend::uniform("dev-b", topology::grid(2, 3), 0.02, 0.04))
            .unwrap();
        qrio.set_admission_gate(Box::new(LintGate::new()));
        qrio
    }

    #[test]
    fn clean_jobs_pass_the_gate() {
        let mut qrio = deployment();
        let request = JobRequestBuilder::new()
            .with_circuit(&library::ghz(4).unwrap())
            .job_name("fits")
            .min_queue()
            .build()
            .unwrap();
        let _ = qrio.enqueue(&request).unwrap();
    }

    #[test]
    fn oversized_jobs_are_rejected_with_the_lint_code() {
        let mut qrio = deployment();
        let request = JobRequestBuilder::new()
            .with_circuit(&library::ghz(9).unwrap())
            .job_name("too-wide")
            .min_queue()
            .build()
            .unwrap();
        let err = qrio.enqueue(&request).unwrap_err();
        let QrioError::AdmissionRejected { job, reason } = err else {
            panic!("expected AdmissionRejected, got {err:?}");
        };
        assert_eq!(job, "too-wide");
        assert!(reason.contains("QL0003"), "{reason}");
        // Rejection left no trace: the same name can be enqueued once fixed.
        assert!(qrio.cluster().job("too-wide").is_none());
    }

    #[test]
    fn unsatisfiable_requirements_are_rejected() {
        let mut qrio = deployment();
        let request = JobRequestBuilder::new()
            .with_circuit(&library::ghz(4).unwrap())
            .job_name("picky")
            .requirements(DeviceRequirements {
                min_qubits: Some(40),
                ..DeviceRequirements::default()
            })
            .min_queue()
            .build()
            .unwrap();
        let err = qrio.enqueue(&request).unwrap_err();
        assert!(err.to_string().contains("QL0101"), "{err}");
    }

    #[test]
    fn clearing_the_gate_restores_unchecked_admission() {
        let mut qrio = deployment();
        qrio.clear_admission_gate();
        let request = JobRequestBuilder::new()
            .with_circuit(&library::ghz(9).unwrap())
            .job_name("too-wide")
            .min_queue()
            .build()
            .unwrap();
        // Without the gate the job is admitted (and will fail later in
        // scheduling) — the pre-gate behavior.
        let _ = qrio.enqueue(&request).unwrap();
    }
}
