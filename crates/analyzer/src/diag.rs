//! The diagnostic framework: stable lint codes, severities, source locations
//! and a [`Report`] that renders human-readable text or JSON.
//!
//! Every check in this crate reports through these types, so tooling (the
//! `qrio-lint` binary, CI, the admission gate) can treat all pass families
//! uniformly: filter by severity, count, serialize, or fail a build.

use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` means the subject is wrong — a job built from it would fail or
/// silently compute garbage. `Warning` means it is suspicious or wasteful but
/// executable. Tools may escalate warnings (`--deny-warnings`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious or wasteful, but not fatal.
    Warning,
    /// Definitely wrong; the subject cannot work as written.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

macro_rules! lint_codes {
    ($(($variant:ident, $code:literal, $severity:ident, $summary:literal),)*) => {
        /// The stable identity of one lint. Codes are never reused or
        /// renumbered; retired lints leave a hole.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum LintCode {
            $(
                #[doc = $summary]
                $variant,
            )*
        }

        impl LintCode {
            /// Every lint code, in numeric order.
            pub const ALL: &'static [LintCode] = &[$(LintCode::$variant,)*];

            /// The stable `QLnnnn` identifier.
            pub fn code(self) -> &'static str {
                match self {
                    $(LintCode::$variant => $code,)*
                }
            }

            /// The default severity of the lint.
            pub fn default_severity(self) -> Severity {
                match self {
                    $(LintCode::$variant => Severity::$severity,)*
                }
            }

            /// A one-line description of what the lint detects.
            pub fn summary(self) -> &'static str {
                match self {
                    $(LintCode::$variant => $summary,)*
                }
            }
        }
    };
}

lint_codes! {
    // Circuit lints (QL00xx).
    (UncoupledTwoQubitGate, "QL0001", Error,
     "two-qubit gate on a physical qubit pair the target device does not couple"),
    (GateOutsideBasis, "QL0002", Error,
     "gate not in the target device's basis gate set"),
    (WidthExceedsCapacity, "QL0003", Error,
     "circuit needs more qubits than the target device (or any fleet device) has"),
    (NonCliffordForStabilizer, "QL0004", Warning,
     "non-Clifford gate in a circuit bound for the stabilizer engine"),
    (DeadQubit, "QL0005", Warning,
     "declared qubit never touched by any instruction"),
    (GateAfterMeasurement, "QL0006", Warning,
     "operation on a qubit after its terminal measurement with no reset"),
    (NoMeasurements, "QL0007", Warning,
     "circuit has no measurements, so sampling it yields no classical data"),
    (MidCircuitForcesReplay, "QL0008", Warning,
     "mid-circuit measurement or reset forces the simulator off the batched Pauli-frame path onto per-shot replay"),
    // Spec and scenario lints (QL01xx).
    (ScenarioInvalid, "QL0100", Error,
     "scenario failed to parse or validate"),
    (UnsatisfiableRequirements, "QL0101", Error,
     "device requirements that no device of the declared fleet satisfies"),
    (UnknownStrategyParam, "QL0102", Warning,
     "strategy parameter not recognized by the registered strategy"),
    (EventOutsideHorizon, "QL0103", Warning,
     "scenario event timestamped at or after the arrival horizon"),
    (FleetOverloaded, "QL0104", Warning,
     "offered load exceeds the fleet's service capacity, so queues never drain"),
    // State-machine verification (QL02xx).
    (UnreachableState, "QL0201", Error,
     "lifecycle state unreachable from the initial state"),
    (TerminalHasExit, "QL0202", Error,
     "terminal lifecycle state with an outgoing transition"),
    (NoPathToTerminal, "QL0203", Error,
     "non-terminal lifecycle state from which no terminal state is reachable"),
    // Watch-log auditing (QL03xx).
    (NonDenseSequence, "QL0301", Error,
     "watch-log sequence numbers are not dense from zero"),
    (BrokenEventChain, "QL0302", Error,
     "event's `from` state disagrees with the job's previous `to` state"),
    (IllegalTransition, "QL0303", Error,
     "observed transition outside the JobState legality table"),
    (JobLost, "QL0304", Error,
     "job never reached a terminal state by the end of the run"),
    (DoubleRunning, "QL0305", Error,
     "job re-entered Running without an intervening Retrying decision"),
    (NonMonotoneAttempts, "QL0306", Error,
     "Retrying events' attempt counters do not increase by one per attempt"),
    (EventAfterTerminal, "QL0307", Error,
     "event recorded for a job after it reached a terminal state"),
    // Durability-journal lints (QL04xx).
    (TornTailRecord, "QL0401", Warning,
     "journal ends in a torn (truncated or corrupt) tail record that recovery will discard"),
    (SnapshotBeyondLogHead, "QL0402", Error,
     "snapshot claims an event cursor beyond the events the journal has seen"),
    (RecordVersionMismatch, "QL0403", Error,
     "journal record carries a format version this build cannot decode"),
    (MalformedJournal, "QL0404", Error,
     "file is not a QRIO journal or its header/records are structurally invalid"),
    // Fault-tolerance configuration lints (QL05xx).
    (RetryNeverRuns, "QL0500", Error,
     "retry policy allows zero attempts, so the job can never execute"),
    (BackoffOutlivesDeadline, "QL0501", Warning,
     "worst-case retry backoff extends past the job's deadline, so late attempts are dead on arrival"),
    (FaultRateSaturated, "QL0502", Warning,
     "chaos fault rates sum to 1.0 or more, so every attempt fails and no work can complete"),
    (BreakerThresholdsInverted, "QL0503", Error,
     "circuit-breaker thresholds are inverted or degenerate, so the breaker can never work as configured"),
    // Control-plane envelope-trace lints (QL06xx).
    (EnvelopeSeqGap, "QL0600", Error,
     "per-node envelope sequence numbers are not dense, so a control-plane message was lost or reordered"),
    (ReportForUnboundJob, "QL0601", Error,
     "agent reported a phase verdict for a job no Run command in the trace ever dispatched to it"),
    (CommandAfterCordon, "QL0602", Warning,
     "orchestrator sent a Run command to a node after cordoning it and before any uncordon"),
    (EnvelopeVersionMismatch, "QL0603", Error,
     "envelope frame carries a wire-format version this build does not speak"),
    (MalformedEnvelopeTrace, "QL0604", Error,
     "envelope trace is not a QRIOPROT frame stream or a frame is corrupt past repair"),
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Where a diagnostic points: a named subject (a scenario file, a circuit, a
/// state machine, a watch log) plus an optional finer-grained context (an
/// instruction, a tenant, an event index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// The analyzed subject, e.g. `scenarios/cloud.yaml` or `circuit 'ghz-8'`.
    pub subject: String,
    /// A finer position inside the subject, e.g. `instruction 12: cx q3, q7`.
    pub context: Option<String>,
}

impl Location {
    /// A location naming only the subject.
    pub fn subject(subject: impl Into<String>) -> Self {
        Location {
            subject: subject.into(),
            context: None,
        }
    }

    /// A location with a finer context inside the subject.
    pub fn at(subject: impl Into<String>, context: impl Into<String>) -> Self {
        Location {
            subject: subject.into(),
            context: Some(context.into()),
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.context {
            Some(context) => write!(f, "{}: {}", self.subject, context),
            None => f.write_str(&self.subject),
        }
    }
}

/// One finding: a lint code, a severity, a human message and a location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable lint identity.
    pub code: LintCode,
    /// Severity (defaults to the code's default, but passes may escalate).
    pub severity: Severity,
    /// What is wrong, in one sentence.
    pub message: String,
    /// Where it is wrong.
    pub location: Location,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity.
    pub fn new(code: LintCode, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            location,
        }
    }

    /// Override the severity (e.g. escalate a warning for an unbounded run).
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} ({})",
            self.severity, self.code, self.message, self.location
        )
    }
}

/// An ordered collection of diagnostics with rendering and counting helpers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// A report over existing diagnostics.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Self {
        Report { diagnostics }
    }

    /// Append one diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Append every diagnostic of an iterator.
    pub fn extend(&mut self, diagnostics: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(diagnostics);
    }

    /// All diagnostics, in insertion order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether the report holds no diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether the report should fail a build: any error, or any diagnostic
    /// at all when `deny_warnings` is set.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        if deny_warnings {
            !self.is_clean()
        } else {
            self.error_count() > 0
        }
    }

    /// Whether any diagnostic carries the given code.
    pub fn has_code(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Render the report as compiler-style text, one line per diagnostic,
    /// followed by a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for diagnostic in &self.diagnostics {
            out.push_str(&diagnostic.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Render the report as a self-contained JSON document (stable key order,
    /// no external dependencies), suitable for CI artifacts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"qrio-lint\",\n  \"diagnostics\": [");
        for (index, diagnostic) in self.diagnostics.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"code\": {}, ",
                json_string(diagnostic.code.code())
            ));
            out.push_str(&format!(
                "\"severity\": {}, ",
                json_string(&diagnostic.severity.to_string())
            ));
            out.push_str(&format!(
                "\"subject\": {}, ",
                json_string(&diagnostic.location.subject)
            ));
            match &diagnostic.location.context {
                Some(context) => out.push_str(&format!("\"context\": {}, ", json_string(context))),
                None => out.push_str("\"context\": null, "),
            }
            out.push_str(&format!(
                "\"message\": {}",
                json_string(&diagnostic.message)
            ));
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"errors\": {},\n  \"warnings\": {}\n}}\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

/// Escape a string as a JSON string literal.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", ch as u32)),
            ch => out.push(ch),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_stable_and_sorted() {
        let codes: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "codes must be unique and in numeric order");
        for code in codes {
            assert!(code.starts_with("QL") && code.len() == 6, "bad code {code}");
        }
    }

    #[test]
    fn report_counts_and_failure_policy() {
        let mut report = Report::new();
        assert!(report.is_clean());
        assert!(!report.fails(false));
        assert!(!report.fails(true));
        report.push(Diagnostic::new(
            LintCode::DeadQubit,
            Location::subject("circuit 'c'"),
            "qubit 3 is never used",
        ));
        assert_eq!(report.warning_count(), 1);
        assert!(!report.fails(false));
        assert!(report.fails(true));
        report.push(Diagnostic::new(
            LintCode::UncoupledTwoQubitGate,
            Location::at("circuit 'c'", "instruction 2"),
            "cx on (0, 5)",
        ));
        assert_eq!(report.error_count(), 1);
        assert!(report.fails(false));
        assert!(report.has_code(LintCode::UncoupledTwoQubitGate));
        assert!(!report.has_code(LintCode::FleetOverloaded));
    }

    #[test]
    fn severity_can_be_escalated() {
        let diag = Diagnostic::new(
            LintCode::FleetOverloaded,
            Location::subject("scenario 'x'"),
            "load 1.2x capacity",
        )
        .with_severity(Severity::Error);
        assert_eq!(diag.severity, Severity::Error);
    }

    #[test]
    fn human_rendering_is_one_line_per_diagnostic() {
        let mut report = Report::new();
        report.push(Diagnostic::new(
            LintCode::NoMeasurements,
            Location::subject("circuit 'c'"),
            "no measurements",
        ));
        let text = report.render_human();
        assert!(text.contains("warning[QL0007] no measurements (circuit 'c')"));
        assert!(text.ends_with("0 error(s), 1 warning(s)\n"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut report = Report::new();
        report.push(Diagnostic::new(
            LintCode::GateOutsideBasis,
            Location::at("file \"a\".yaml", "line\n2"),
            "bad \\ gate",
        ));
        let json = report.to_json();
        assert!(json.contains("\"code\": \"QL0002\""));
        assert!(json.contains("\\\"a\\\""));
        assert!(json.contains("line\\n2"));
        assert!(json.contains("bad \\\\ gate"));
        assert!(json.contains("\"errors\": 1"));
    }

    #[test]
    fn empty_report_renders_valid_json() {
        let json = Report::new().to_json();
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"errors\": 0"));
    }
}
