//! Fault-tolerance configuration lints (QL05xx): retry policies that can
//! never run, backoff schedules that outlive their deadline, chaos scenarios
//! whose fault rates saturate, and circuit-breaker thresholds that are
//! inverted or degenerate.
//!
//! These are the knobs PR 8's fault-injection stack added — a `RetryPolicy`
//! with `max_attempts: 0`, a saturated `faults` timeline or a breaker that
//! trips on zero failures all parse and build fine, then quietly guarantee
//! the run can never make progress. Linting them at admission time turns a
//! confusing all-dead-letter run into a one-line diagnostic.

use qrio::BreakerConfig;
use qrio_cluster::RetryPolicy;
use qrio_loadgen::{Scenario, ScenarioEvent};

use crate::diag::{Diagnostic, LintCode, Location};

/// Lint a retry policy, optionally against the job's deadline (QL0500,
/// QL0501).
///
/// `deadline` is the job's relative deadline in service-loop ticks (the same
/// unit the policy's backoff delays use).
pub fn lint_retry_policy(
    policy: &RetryPolicy,
    deadline: Option<u64>,
    subject: &str,
) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    if policy.max_attempts == 0 {
        diagnostics.push(Diagnostic::new(
            LintCode::RetryNeverRuns,
            Location::subject(subject),
            "retry policy allows 0 attempts: the job fails before its first execution",
        ));
        // With zero attempts the deadline comparison below is meaningless.
        return diagnostics;
    }
    if let Some(deadline) = deadline {
        let worst = policy.worst_case_backoff();
        if worst > deadline {
            diagnostics.push(Diagnostic::new(
                LintCode::BackoffOutlivesDeadline,
                Location::subject(subject),
                format!(
                    "worst-case cumulative backoff is {worst} ticks against a deadline of \
                     {deadline} ticks: late retry attempts expire before they can run"
                ),
            ));
        }
    }
    diagnostics
}

/// Lint a circuit-breaker configuration (QL0503): thresholds that are
/// inverted or degenerate make the breaker either trip constantly or never
/// recover.
pub fn lint_breaker_config(config: &BreakerConfig, subject: &str) -> Vec<Diagnostic> {
    let mut problems = Vec::new();
    if config.consecutive_failures == 0 {
        problems.push("consecutiveFailures is 0 (the breaker trips on a healthy device)");
    }
    if config.window == 0 {
        problems.push("window is 0 (the failure-rate trip has no sample to judge)");
    }
    if !(config.failure_rate > 0.0 && config.failure_rate <= 1.0) {
        problems.push("failureRate is outside (0, 1]");
    }
    if config.open_ticks == 0 {
        problems.push("openTicks is 0 (the breaker re-probes immediately, defeating the cooldown)");
    }
    if config.probe_jobs == 0 {
        problems.push("probeJobs is 0 (a half-open breaker closes without evidence)");
    }
    problems
        .into_iter()
        .map(|problem| {
            Diagnostic::new(
                LintCode::BreakerThresholdsInverted,
                Location::subject(subject),
                problem,
            )
        })
        .collect()
}

/// Lint the chaos surface of a parsed scenario (QL0501, QL0502, QL0503):
/// saturated `faults` events, tenant backoff schedules that blow the tenant
/// deadline, and inverted breaker settings.
pub fn lint_chaos_scenario(scenario: &Scenario) -> Vec<Diagnostic> {
    let subject = format!("scenario '{}'", scenario.name);
    let mut diagnostics = Vec::new();

    // QL0502: a fault-rate total at or past 1.0 means `decide` always picks
    // some fault — every attempt fails, retries burn out, and the run ends
    // all dead letters.
    for (index, event) in scenario.events.iter().enumerate() {
        let ScenarioEvent::Faults {
            transient_rate,
            calibration_rate,
            slow_rate,
            flap_rate,
            ..
        } = event
        else {
            continue;
        };
        let total = transient_rate + calibration_rate + slow_rate + flap_rate;
        if total >= 1.0 {
            diagnostics.push(Diagnostic::new(
                LintCode::FaultRateSaturated,
                Location::at(&subject, format!("event #{index} (faults)")),
                format!(
                    "fault rates sum to {total:.2}: every execution attempt fails until a later \
                     faults event lowers them"
                ),
            ));
        }
    }

    // QL0501: the engine paces tenant retries in virtual ms; if the
    // worst-case cumulative backoff alone exceeds the tenant deadline, the
    // later retry slots exist only on paper.
    for tenant in &scenario.tenants {
        let (Some(retry), Some(deadline)) = (&tenant.retry, tenant.deadline_ms) else {
            continue;
        };
        let worst: u64 = (1..retry.max_attempts)
            .map(|attempt| retry.backoff_ms(attempt))
            .fold(0, u64::saturating_add);
        if worst > deadline {
            diagnostics.push(Diagnostic::new(
                LintCode::BackoffOutlivesDeadline,
                Location::at(&subject, format!("tenant '{}'", tenant.name)),
                format!(
                    "worst-case cumulative backoff is {worst} ms against a deadline of \
                     {deadline} ms: late retry attempts are cancelled before they can run"
                ),
            ));
        }
    }

    // QL0503: breaker settings, mapped onto the core config they become.
    if let Some(breakers) = &scenario.breakers {
        diagnostics.extend(lint_breaker_config(
            &BreakerConfig {
                consecutive_failures: breakers.consecutive_failures,
                failure_rate: breakers.failure_rate,
                window: breakers.window,
                open_ticks: breakers.open_ms,
                probe_jobs: breakers.probe_jobs,
            },
            &format!("{subject}: breakers"),
        ));
    }

    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_attempt_policies_are_flagged() {
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::fixed(1, 5)
        };
        let diags = lint_retry_policy(&policy, None, "job 'x'");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::RetryNeverRuns);
        assert!(lint_retry_policy(&RetryPolicy::fixed(3, 5), None, "job 'x'").is_empty());
    }

    #[test]
    fn backoff_past_the_deadline_is_flagged() {
        // 4 attempts x 10-tick delays = 30 ticks of worst-case backoff.
        let policy = RetryPolicy::fixed(4, 10);
        let diags = lint_retry_policy(&policy, Some(20), "job 'slow'");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::BackoffOutlivesDeadline);
        assert!(lint_retry_policy(&policy, Some(30), "job 'ok'").is_empty());
    }

    #[test]
    fn inverted_breaker_thresholds_are_enumerated() {
        let broken = BreakerConfig {
            consecutive_failures: 0,
            failure_rate: 1.5,
            window: 0,
            open_ticks: 0,
            probe_jobs: 0,
        };
        let diags = lint_breaker_config(&broken, "breakers");
        assert_eq!(diags.len(), 5);
        assert!(diags
            .iter()
            .all(|d| d.code == LintCode::BreakerThresholdsInverted));
        assert!(lint_breaker_config(&BreakerConfig::default(), "breakers").is_empty());
    }

    #[test]
    fn saturated_fault_rates_and_doomed_deadlines_are_flagged() {
        let scenario = Scenario::from_yaml(
            "scenario: doomed\n\
             seed: 1\n\
             durationMs: 1000\n\
             breakers: on\n\
             breakerProbeJobs: 1\n\
             fleet:\n\
               - device: solo\n\
                 qubits: 6\n\
             tenants:\n\
               - tenant: alice\n\
                 strategy: min_queue\n\
                 circuit: ghz\n\
                 qubits: 4\n\
                 shots: 16\n\
                 ratePerSec: 1.0\n\
                 retryMaxAttempts: 5\n\
                 retryDelayMs: 100\n\
                 deadlineMs: 150\n\
             events:\n\
               - kind: faults\n\
                 atMs: 0\n\
                 transientRate: 0.6\n\
                 flapRate: 0.5\n",
        )
        .unwrap();
        let diags = lint_chaos_scenario(&scenario);
        assert!(diags.iter().any(|d| d.code == LintCode::FaultRateSaturated));
        // 4 backoffs x 100 ms = 400 ms > the 150 ms deadline.
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::BackoffOutlivesDeadline));
        // Valid breaker settings stay quiet even when enabled.
        assert!(!diags
            .iter()
            .any(|d| d.code == LintCode::BreakerThresholdsInverted));
    }

    #[test]
    fn a_clean_chaos_scenario_lints_clean() {
        let scenario = Scenario::from_yaml(
            "scenario: fine\n\
             seed: 1\n\
             durationMs: 1000\n\
             fleet:\n\
               - device: solo\n\
                 qubits: 6\n\
             tenants:\n\
               - tenant: alice\n\
                 strategy: min_queue\n\
                 circuit: ghz\n\
                 qubits: 4\n\
                 shots: 16\n\
                 ratePerSec: 1.0\n\
                 retryMaxAttempts: 3\n\
                 retryDelayMs: 50\n\
                 deadlineMs: 5000\n\
             events:\n\
               - kind: faults\n\
                 atMs: 0\n\
                 transientRate: 0.2\n",
        )
        .unwrap();
        assert!(lint_chaos_scenario(&scenario).is_empty());
    }
}
