//! # qrio-analyzer
//!
//! Static analysis for the QRIO quantum-cloud orchestrator (reproduction of
//! *Empowering the Quantum Cloud User with QRIO*, IISWC 2024): lints for
//! circuits and workload specs, and exhaustive verification of the job
//! lifecycle — catching user mistakes *before* jobs burn scarce QPU time.
//!
//! Every check reports through one [`diag`]nostic framework (stable `QLnnnn`
//! codes, severities, locations, human and JSON rendering) and belongs to one
//! of three pass families:
//!
//! * [`circuit_lints`] — structural circuit checks at two stages: logical
//!   (dead qubits, gates after terminal measurement, missing measurements,
//!   stabilizer-engine fit, mid-circuit operations that force the simulator
//!   off the batched Pauli-frame path) and routed (two-qubit gates on
//!   uncoupled pairs, gates outside the device basis, width vs. capacity) —
//!   the routed stage verifies against the routing metadata the transpiler
//!   emits.
//! * [`spec_lints`] — semantic checks on job and scenario specs:
//!   requirements no fleet device satisfies, scenario events beyond the
//!   arrival horizon, offered load beyond fleet capacity, strategy
//!   parameters the registered strategy would silently ignore.
//! * [`state_machine`] and [`audit`] — model-checking of the `JobState`
//!   transition table (reachability, terminal closure, liveness) and replay
//!   auditing of `JobEvent` watch logs from real runs.
//! * [`journal_lints`] — structural checks over `qrio-journal` durability
//!   logs: torn tails, snapshots ahead of the log head, undecodable or
//!   version-mismatched records.
//! * [`fault_lints`] — fault-tolerance configuration checks: retry policies
//!   that can never run, backoff schedules that outlive their deadline,
//!   saturated chaos fault rates, inverted circuit-breaker thresholds.
//!
//! The [`LintGate`] plugs the relevant passes into [`qrio::Qrio::enqueue`]
//! as a pre-admission check, and the `qrio-lint` binary runs everything over
//! scenario files and the shipped circuit corpus for CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod circuit_lints;
pub mod diag;
pub mod fault_lints;
pub mod gate;
pub mod journal_lints;
pub mod proto_lints;
pub mod spec_lints;
pub mod state_machine;

pub use audit::{audit_watch_log, AuditOptions};
pub use circuit_lints::{
    lint_engine_fit, lint_logical_circuit, lint_routed_circuit, lint_simulation_path,
    lint_transpile_result, lint_width_against_fleet, EngineHint, TargetView,
};
pub use diag::{Diagnostic, LintCode, Location, Report, Severity};
pub use fault_lints::{lint_breaker_config, lint_chaos_scenario, lint_retry_policy};
pub use gate::LintGate;
pub use journal_lints::{lint_journal_bytes, lint_journal_file};
pub use proto_lints::{
    lint_envelope_trace_bytes, lint_envelope_trace_file, looks_like_envelope_trace,
};
pub use spec_lints::{lint_requirements, lint_scenario, lint_strategy_spec};
pub use state_machine::{verify_job_state_machine, StateMachineReport};
