//! Circuit deflation: shrink a device-sized circuit down to its active qubits.
//!
//! After routing, a circuit is expressed over *all* physical qubits of its
//! target device even though only a handful are touched. Simulation cost
//! scales with register size, so the meta server's scoring paths (and
//! Mapomatic itself, which calls this step "deflation") first restrict the
//! circuit — and the backend's calibration data — to the active qubits.

use std::collections::BTreeMap;

use qrio_backend::{Backend, CouplingMap};
use qrio_circuit::Circuit;

use crate::error::TranspilerError;

/// A deflated circuit together with the matching sub-device.
#[derive(Debug, Clone)]
pub struct DeflatedCircuit {
    /// The circuit re-indexed over its active qubits only.
    pub circuit: Circuit,
    /// A backend restricted to the active qubits (calibration preserved),
    /// suitable for building a noise model for the deflated circuit.
    pub backend: Backend,
    /// `active_physical[new_index] = original_physical_qubit`.
    pub active_physical: Vec<usize>,
}

/// Deflate `circuit` (expressed over `backend`'s physical qubits) to its
/// active qubits.
///
/// # Errors
///
/// Returns an error if the restricted backend cannot be constructed (which
/// would indicate inconsistent calibration data).
pub fn deflate(circuit: &Circuit, backend: &Backend) -> Result<DeflatedCircuit, TranspilerError> {
    let active = circuit.active_qubits();
    if active.is_empty() {
        // Nothing to shrink: return a single-qubit placeholder device so the
        // result is still well-formed.
        let sub = Backend::uniform(
            format!("{}-deflated", backend.name()),
            CouplingMap::new(1),
            0.0,
            0.0,
        );
        return Ok(DeflatedCircuit {
            circuit: Circuit::with_name(circuit.name().to_string(), 1, circuit.num_clbits()),
            backend: sub,
            active_physical: vec![0],
        });
    }

    // old physical index -> new compact index
    let mut compact = vec![0usize; circuit.num_qubits()];
    for (new_idx, &old) in active.iter().enumerate() {
        compact[old] = new_idx;
    }
    let deflated_circuit = circuit.remap_qubits(&compact, active.len())?;

    // Restrict the backend to the active qubits.
    let mut coupling = CouplingMap::new(active.len());
    let mut gates = BTreeMap::new();
    for (i, &a) in active.iter().enumerate() {
        for (j, &b) in active.iter().enumerate().skip(i + 1) {
            if backend.coupling_map().has_edge(a, b) {
                coupling.add_edge(i, j);
                if let Some(props) = backend.two_qubit_gate(a, b) {
                    gates.insert((i, j), *props);
                }
            }
        }
    }
    let qubit_props = active.iter().map(|&q| *backend.qubit(q)).collect();
    let sub_backend = Backend::new(
        format!("{}-deflated", backend.name()),
        coupling,
        qubit_props,
        gates,
        backend.basis_gates().clone(),
    )
    .map_err(|e| TranspilerError::UnusableDevice(e.to_string()))?;

    Ok(DeflatedCircuit {
        circuit: deflated_circuit,
        backend: sub_backend,
        active_physical: active,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpile;
    use qrio_backend::topology;
    use qrio_circuit::library;
    use qrio_sim::run_ideal;

    #[test]
    fn deflation_shrinks_routed_circuits() {
        let circuit = library::ghz(4).unwrap();
        let backend = Backend::uniform("big", topology::grid(5, 6), 0.01, 0.05);
        let routed = transpile(&circuit, &backend).unwrap();
        assert_eq!(routed.circuit.num_qubits(), 30);
        let deflated = deflate(&routed.circuit, &backend).unwrap();
        assert!(deflated.circuit.num_qubits() <= 8);
        assert_eq!(
            deflated.circuit.num_qubits(),
            deflated.active_physical.len()
        );
        assert_eq!(deflated.backend.num_qubits(), deflated.circuit.num_qubits());
        // Semantics preserved: still a GHZ distribution.
        let counts = run_ideal(&deflated.circuit, 1024, 3).unwrap();
        let all_ones = 0b1111u64;
        assert!(counts.probability(0) + counts.probability(all_ones) > 0.99);
    }

    #[test]
    fn calibration_is_carried_over() {
        let circuit = library::ghz(3).unwrap();
        let backend = Backend::uniform("cal", topology::line(10), 0.02, 0.07);
        let routed = transpile(&circuit, &backend).unwrap();
        let deflated = deflate(&routed.circuit, &backend).unwrap();
        for edge in deflated.backend.coupling_map().edges() {
            let err = deflated
                .backend
                .two_qubit_gate(edge.0, edge.1)
                .unwrap()
                .error;
            assert!((err - 0.07).abs() < 1e-12);
        }
        for q in 0..deflated.backend.num_qubits() {
            assert!((deflated.backend.qubit(q).single_qubit_error - 0.02).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_circuit_deflates_to_placeholder() {
        let circuit = Circuit::new(20, 0);
        let backend = Backend::uniform("empty", topology::line(20), 0.0, 0.0);
        let deflated = deflate(&circuit, &backend).unwrap();
        assert_eq!(deflated.circuit.num_qubits(), 1);
        assert!(deflated.circuit.is_empty());
    }

    #[test]
    fn two_qubit_gates_stay_coupled_after_deflation() {
        let circuit = library::random_circuit_with_cx_count(5, 10, 3).unwrap();
        let backend = Backend::uniform("dev", topology::ring(12), 0.01, 0.05);
        let routed = transpile(&circuit, &backend).unwrap();
        let deflated = deflate(&routed.circuit, &backend).unwrap();
        for inst in deflated.circuit.instructions() {
            if inst.is_two_qubit_gate() {
                assert!(deflated
                    .backend
                    .coupling_map()
                    .has_edge(inst.qubits[0], inst.qubits[1]));
            }
        }
    }
}
