//! Initial layout selection: placing virtual circuit qubits on physical
//! device qubits (the "Placement on Physical Qubits" step of the Qiskit
//! pipeline the paper describes in §2.3).

use std::collections::BTreeSet;

use qrio_backend::Backend;
use qrio_circuit::Circuit;

use crate::error::TranspilerError;

/// A mapping from virtual circuit qubits to physical device qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// `virtual_to_physical[v]` is the physical qubit assigned to virtual `v`.
    virtual_to_physical: Vec<usize>,
    num_physical: usize,
}

impl Layout {
    /// Build a layout from an explicit assignment vector.
    ///
    /// # Errors
    ///
    /// Returns an error if any physical index is out of range or repeated.
    pub fn new(
        virtual_to_physical: Vec<usize>,
        num_physical: usize,
    ) -> Result<Self, TranspilerError> {
        let mut seen = BTreeSet::new();
        for &p in &virtual_to_physical {
            if p >= num_physical {
                return Err(TranspilerError::UnusableDevice(format!(
                    "layout maps to physical qubit {p} outside a {num_physical}-qubit device"
                )));
            }
            if !seen.insert(p) {
                return Err(TranspilerError::UnusableDevice(format!(
                    "layout maps two virtual qubits to physical qubit {p}"
                )));
            }
        }
        Ok(Layout {
            virtual_to_physical,
            num_physical,
        })
    }

    /// The identity layout over `num_virtual` qubits.
    pub fn trivial(num_virtual: usize, num_physical: usize) -> Result<Self, TranspilerError> {
        Layout::new((0..num_virtual).collect(), num_physical)
    }

    /// Number of virtual qubits covered.
    pub fn num_virtual(&self) -> usize {
        self.virtual_to_physical.len()
    }

    /// Number of physical qubits on the target device.
    pub fn num_physical(&self) -> usize {
        self.num_physical
    }

    /// Physical qubit assigned to virtual qubit `v`.
    pub fn physical(&self, v: usize) -> usize {
        self.virtual_to_physical[v]
    }

    /// The full assignment vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.virtual_to_physical
    }

    /// Inverse mapping: `physical -> Some(virtual)` for assigned qubits.
    pub fn inverse(&self) -> Vec<Option<usize>> {
        let mut inv = vec![None; self.num_physical];
        for (v, &p) in self.virtual_to_physical.iter().enumerate() {
            inv[p] = Some(v);
        }
        inv
    }
}

/// Strategy used to choose the initial layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutStrategy {
    /// Virtual qubit `i` goes to physical qubit `i`.
    Trivial,
    /// Greedy error/connectivity-aware placement (default).
    #[default]
    Dense,
}

/// Choose an initial layout for `circuit` on `backend` using `strategy`.
///
/// The dense strategy grows a connected region of the device around the
/// lowest-error edge, then assigns the most interaction-heavy virtual qubits
/// to the best-connected physical qubits in that region.
///
/// # Errors
///
/// Returns an error if the circuit does not fit on the device.
pub fn select_layout(
    circuit: &Circuit,
    backend: &Backend,
    strategy: LayoutStrategy,
) -> Result<Layout, TranspilerError> {
    let needed = circuit.num_qubits();
    let available = backend.num_qubits();
    if needed > available {
        return Err(TranspilerError::CircuitTooLarge {
            required: needed,
            available,
        });
    }
    match strategy {
        LayoutStrategy::Trivial => Layout::trivial(needed, available),
        LayoutStrategy::Dense => dense_layout(circuit, backend),
    }
}

fn dense_layout(circuit: &Circuit, backend: &Backend) -> Result<Layout, TranspilerError> {
    let needed = circuit.num_qubits();
    let map = backend.coupling_map();
    if needed == 0 {
        return Layout::new(Vec::new(), backend.num_qubits());
    }

    // 1. Seed with the endpoint qubits of the lowest-error edge (or qubit 0).
    let mut region: Vec<usize> = Vec::with_capacity(needed);
    let mut in_region = vec![false; backend.num_qubits()];
    let seed_edge = map.edges().into_iter().min_by(|&(a1, b1), &(a2, b2)| {
        let e1 = backend.two_qubit_error_or_default(a1, b1);
        let e2 = backend.two_qubit_error_or_default(a2, b2);
        e1.partial_cmp(&e2).unwrap_or(std::cmp::Ordering::Equal)
    });
    match seed_edge {
        Some((a, b)) => {
            region.push(a);
            in_region[a] = true;
            if needed > 1 {
                region.push(b);
                in_region[b] = true;
            }
        }
        None => {
            region.push(0);
            in_region[0] = true;
        }
    }

    // 2. Grow the region greedily: prefer candidates with many links into the
    //    region and low error on those links.
    while region.len() < needed {
        let mut best: Option<(usize, f64)> = None;
        for &member in &region {
            for &candidate in map.neighbors(member) {
                if in_region[candidate] {
                    continue;
                }
                let links = map
                    .neighbors(candidate)
                    .iter()
                    .filter(|&&n| in_region[n])
                    .count();
                let err: f64 = map
                    .neighbors(candidate)
                    .iter()
                    .filter(|&&n| in_region[n])
                    .map(|&n| backend.two_qubit_error_or_default(candidate, n))
                    .sum::<f64>()
                    / links.max(1) as f64;
                let score = links as f64 - err;
                if best.map_or(true, |(_, s)| score > s) {
                    best = Some((candidate, score));
                }
            }
        }
        match best {
            Some((candidate, _)) => {
                in_region[candidate] = true;
                region.push(candidate);
            }
            None => {
                // Disconnected device: fall back to any unused physical qubit.
                match (0..backend.num_qubits()).find(|&p| !in_region[p]) {
                    Some(p) => {
                        in_region[p] = true;
                        region.push(p);
                    }
                    None => break,
                }
            }
        }
    }
    if region.len() < needed {
        return Err(TranspilerError::CircuitTooLarge {
            required: needed,
            available: region.len(),
        });
    }

    // 3. Assign interaction-heavy virtual qubits to well-connected physical
    //    qubits inside the region.
    let mut virtual_weight = vec![0usize; needed];
    for ((a, b), count) in circuit.interaction_counts() {
        virtual_weight[a] += count;
        virtual_weight[b] += count;
    }
    let mut virtual_order: Vec<usize> = (0..needed).collect();
    virtual_order.sort_by_key(|&v| std::cmp::Reverse(virtual_weight[v]));

    let mut physical_order = region.clone();
    physical_order.sort_by_key(|&p| {
        std::cmp::Reverse(map.neighbors(p).iter().filter(|&&n| in_region[n]).count())
    });

    let mut assignment = vec![usize::MAX; needed];
    for (rank, &v) in virtual_order.iter().enumerate() {
        assignment[v] = physical_order[rank];
    }
    Layout::new(assignment, backend.num_qubits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use qrio_circuit::library;

    fn backend_line(n: usize) -> Backend {
        Backend::uniform("line", topology::line(n), 0.01, 0.05)
    }

    #[test]
    fn trivial_layout_is_identity() {
        let circuit = library::ghz(3).unwrap();
        let layout = select_layout(&circuit, &backend_line(5), LayoutStrategy::Trivial).unwrap();
        assert_eq!(layout.as_slice(), &[0, 1, 2]);
        assert_eq!(layout.num_virtual(), 3);
        assert_eq!(layout.num_physical(), 5);
    }

    #[test]
    fn dense_layout_is_injective_and_in_range() {
        let circuit = library::random_circuit(5, 4, 1).unwrap();
        let backend = Backend::uniform("grid", topology::grid(3, 3), 0.01, 0.05);
        let layout = select_layout(&circuit, &backend, LayoutStrategy::Dense).unwrap();
        let mut seen = BTreeSet::new();
        for v in 0..5 {
            let p = layout.physical(v);
            assert!(p < 9);
            assert!(seen.insert(p));
        }
    }

    #[test]
    fn too_large_circuit_is_rejected() {
        let circuit = library::ghz(6).unwrap();
        assert!(matches!(
            select_layout(&circuit, &backend_line(4), LayoutStrategy::Dense),
            Err(TranspilerError::CircuitTooLarge { .. })
        ));
    }

    #[test]
    fn layout_validation() {
        assert!(Layout::new(vec![0, 0], 3).is_err());
        assert!(Layout::new(vec![0, 7], 3).is_err());
        let layout = Layout::new(vec![2, 0], 3).unwrap();
        let inv = layout.inverse();
        assert_eq!(inv[2], Some(0));
        assert_eq!(inv[0], Some(1));
        assert_eq!(inv[1], None);
    }

    #[test]
    fn dense_layout_prefers_low_error_edges() {
        // Build a 4-qubit line where edge (2,3) is much better than (0,1).
        let map = topology::line(4);
        let mut gates = std::collections::BTreeMap::new();
        for (edge, err) in [((0usize, 1usize), 0.5), ((1, 2), 0.4), ((2, 3), 0.01)] {
            gates.insert(
                edge,
                qrio_backend::TwoQubitGateProperties {
                    error: err,
                    duration_ns: 300.0,
                },
            );
        }
        let props = vec![qrio_backend::QubitProperties::default(); 4];
        let backend = Backend::new(
            "biased",
            map,
            props,
            gates,
            qrio_backend::BasisGates::ibm_default(),
        )
        .unwrap();
        let mut bell = Circuit::new(2, 2);
        bell.h(0).unwrap();
        bell.cx(0, 1).unwrap();
        let layout = select_layout(&bell, &backend, LayoutStrategy::Dense).unwrap();
        let placed: BTreeSet<usize> = layout.as_slice().iter().copied().collect();
        assert_eq!(placed, BTreeSet::from([2, 3]));
    }

    #[test]
    fn empty_circuit_layout() {
        let circuit = Circuit::new(0, 0);
        let layout = select_layout(&circuit, &backend_line(3), LayoutStrategy::Dense).unwrap();
        assert_eq!(layout.num_virtual(), 0);
    }
}
