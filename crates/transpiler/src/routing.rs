//! Routing: inserting SWAPs so every two-qubit gate acts on coupled qubits
//! (the "Routing on Restricted Topology" step of §2.3).
//!
//! Two routers are provided:
//!
//! * [`RoutingStrategy::ShortestPath`] — a simple, always-correct router that
//!   walks each blocked gate's operands together along a BFS shortest path.
//! * [`RoutingStrategy::Sabre`] — a SABRE-style heuristic router (Li, Ding &
//!   Xie 2019, cited by the paper via Mapomatic) that chooses SWAPs by
//!   minimising the summed distance of the blocked front layer with a
//!   lookahead window; it falls back to shortest-path moves if it stalls.

use std::collections::VecDeque;

use qrio_backend::Backend;
use qrio_circuit::{Circuit, Gate, Instruction};

use crate::error::TranspilerError;
use crate::layout::Layout;

/// Which routing algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingStrategy {
    /// Walk blocked gates along BFS shortest paths.
    ShortestPath,
    /// SABRE-style heuristic with lookahead (default).
    #[default]
    Sabre,
}

/// The outcome of routing a circuit onto a device.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The routed circuit, expressed over physical qubits.
    pub circuit: Circuit,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
    /// Final mapping `virtual -> physical` after all inserted SWAPs.
    pub final_mapping: Vec<usize>,
}

/// Route `circuit` onto `backend` starting from `layout`.
///
/// The returned circuit acts on `backend.num_qubits()` physical qubits;
/// measurements keep their classical bits.
///
/// # Errors
///
/// Returns an error if the device is disconnected in a way that blocks a gate
/// or if circuit reconstruction fails.
pub fn route(
    circuit: &Circuit,
    backend: &Backend,
    layout: &Layout,
    strategy: RoutingStrategy,
) -> Result<RoutedCircuit, TranspilerError> {
    match strategy {
        RoutingStrategy::ShortestPath => route_shortest_path(circuit, backend, layout),
        RoutingStrategy::Sabre => route_sabre(circuit, backend, layout),
    }
}

/// Tracks where each virtual qubit currently lives as SWAPs are inserted.
#[derive(Debug, Clone)]
struct LiveMapping {
    virt_to_phys: Vec<usize>,
}

impl LiveMapping {
    fn new(layout: &Layout) -> Self {
        LiveMapping {
            virt_to_phys: layout.as_slice().to_vec(),
        }
    }

    fn phys(&self, v: usize) -> usize {
        self.virt_to_phys[v]
    }

    /// Swap the virtual occupants of two *physical* qubits.
    fn swap_physical(&mut self, p1: usize, p2: usize) {
        for slot in &mut self.virt_to_phys {
            if *slot == p1 {
                *slot = p2;
            } else if *slot == p2 {
                *slot = p1;
            }
        }
    }
}

fn emit_swap(out: &mut Circuit, p1: usize, p2: usize) -> Result<(), TranspilerError> {
    out.swap(p1, p2)?;
    Ok(())
}

fn emit_instruction(
    out: &mut Circuit,
    inst: &Instruction,
    mapping: &LiveMapping,
) -> Result<(), TranspilerError> {
    let qubits: Vec<usize> = inst.qubits.iter().map(|&v| mapping.phys(v)).collect();
    if inst.gate == Gate::Measure {
        out.measure(qubits[0], inst.clbits[0])?;
    } else if inst.gate == Gate::Barrier {
        out.barrier(&qubits)?;
    } else {
        out.append(inst.gate, &qubits)?;
    }
    Ok(())
}

fn route_shortest_path(
    circuit: &Circuit,
    backend: &Backend,
    layout: &Layout,
) -> Result<RoutedCircuit, TranspilerError> {
    let map = backend.coupling_map();
    let mut mapping = LiveMapping::new(layout);
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        backend.num_qubits(),
        circuit.num_clbits(),
    );
    let mut swaps = 0usize;

    for inst in circuit.instructions() {
        if inst.is_two_qubit_gate() {
            let (a, b) = (mapping.phys(inst.qubits[0]), mapping.phys(inst.qubits[1]));
            if !map.has_edge(a, b) {
                let path = map.shortest_path(a, b).ok_or_else(|| {
                    TranspilerError::RoutingStuck(format!(
                        "no path between physical qubits {a} and {b} on device '{}'",
                        backend.name()
                    ))
                })?;
                // Walk the first operand along the path until adjacent to b.
                for window in path.windows(2).take(path.len().saturating_sub(2)) {
                    emit_swap(&mut out, window[0], window[1])?;
                    mapping.swap_physical(window[0], window[1]);
                    swaps += 1;
                }
            }
        }
        emit_instruction(&mut out, inst, &mapping)?;
    }
    Ok(RoutedCircuit {
        circuit: out,
        swaps_inserted: swaps,
        final_mapping: mapping.virt_to_phys,
    })
}

/// Number of upcoming two-qubit gates included in the SABRE lookahead window.
const SABRE_LOOKAHEAD: usize = 20;
/// Weight of the lookahead term relative to the front layer.
const SABRE_LOOKAHEAD_WEIGHT: f64 = 0.5;
/// Safety valve: maximum SWAPs inserted between two scheduled gates before
/// falling back to deterministic shortest-path routing.
const SABRE_MAX_STALL: usize = 64;

fn route_sabre(
    circuit: &Circuit,
    backend: &Backend,
    layout: &Layout,
) -> Result<RoutedCircuit, TranspilerError> {
    let map = backend.coupling_map();
    let dist = map.distance_matrix();
    let mut mapping = LiveMapping::new(layout);
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        backend.num_qubits(),
        circuit.num_clbits(),
    );
    let mut swaps = 0usize;

    // Remaining instructions in program order; we schedule greedily from the
    // front, which respects dependencies because we only ever skip over
    // instructions that commute trivially (none here — we preserve order and
    // simply stall the queue on a blocked 2q gate).
    let mut queue: VecDeque<&Instruction> = circuit.instructions().iter().collect();
    let mut stall = 0usize;

    while let Some(inst) = queue.front().copied() {
        let executable = if inst.is_two_qubit_gate() {
            let (a, b) = (mapping.phys(inst.qubits[0]), mapping.phys(inst.qubits[1]));
            map.has_edge(a, b)
        } else {
            true
        };
        if executable {
            queue.pop_front();
            emit_instruction(&mut out, inst, &mapping)?;
            stall = 0;
            continue;
        }

        // Blocked: pick the SWAP that best reduces the heuristic cost.
        let front_pairs: Vec<(usize, usize)> = blocked_pairs(&queue, &mapping, 1);
        let lookahead_pairs: Vec<(usize, usize)> = blocked_pairs(&queue, &mapping, SABRE_LOOKAHEAD);
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in &front_pairs {
            for &n in map.neighbors(a) {
                candidates.push((a.min(n), a.max(n)));
            }
            for &n in map.neighbors(b) {
                candidates.push((b.min(n), b.max(n)));
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        let score = |candidate: (usize, usize)| -> f64 {
            let mut trial = mapping.clone();
            trial.swap_physical(candidate.0, candidate.1);
            let front_cost: f64 = pair_cost(&front_pairs, candidate, &dist);
            let look_cost: f64 = pair_cost(&lookahead_pairs, candidate, &dist);
            front_cost + SABRE_LOOKAHEAD_WEIGHT * look_cost / lookahead_pairs.len().max(1) as f64
        };

        let current_front_cost = pair_cost(&front_pairs, (usize::MAX, usize::MAX), &dist);
        let best = candidates.iter().copied().min_by(|&c1, &c2| {
            score(c1)
                .partial_cmp(&score(c2))
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        stall += 1;
        if stall > SABRE_MAX_STALL || best.is_none() {
            // Deterministic fallback: move the blocked pair together directly.
            let (a, b) = (mapping.phys(inst.qubits[0]), mapping.phys(inst.qubits[1]));
            let path = map.shortest_path(a, b).ok_or_else(|| {
                TranspilerError::RoutingStuck(format!(
                    "no path between physical qubits {a} and {b} on device '{}'",
                    backend.name()
                ))
            })?;
            for window in path.windows(2).take(path.len().saturating_sub(2)) {
                emit_swap(&mut out, window[0], window[1])?;
                mapping.swap_physical(window[0], window[1]);
                swaps += 1;
            }
            stall = 0;
            continue;
        }

        let chosen = best.expect("candidate list checked non-empty above");
        // Only accept swaps that do not make the front layer strictly worse;
        // otherwise fall through to the deterministic path on the next stall.
        let improves = score(chosen) <= current_front_cost + f64::EPSILON;
        if improves {
            emit_swap(&mut out, chosen.0, chosen.1)?;
            mapping.swap_physical(chosen.0, chosen.1);
            swaps += 1;
        } else {
            stall = SABRE_MAX_STALL; // force the fallback next iteration
        }
    }

    Ok(RoutedCircuit {
        circuit: out,
        swaps_inserted: swaps,
        final_mapping: mapping.virt_to_phys,
    })
}

/// Physical-qubit pairs of the first `limit` blocked two-qubit gates.
fn blocked_pairs(
    queue: &VecDeque<&Instruction>,
    mapping: &LiveMapping,
    limit: usize,
) -> Vec<(usize, usize)> {
    queue
        .iter()
        .filter(|inst| inst.is_two_qubit_gate())
        .take(limit)
        .map(|inst| (mapping.phys(inst.qubits[0]), mapping.phys(inst.qubits[1])))
        .collect()
}

/// Summed distance of `pairs` after hypothetically applying `swap` (pass an
/// out-of-range pair to score the current mapping).
fn pair_cost(pairs: &[(usize, usize)], swap: (usize, usize), dist: &[Vec<usize>]) -> f64 {
    let remap = |q: usize| -> usize {
        if q == swap.0 {
            swap.1
        } else if q == swap.1 {
            swap.0
        } else {
            q
        }
    };
    pairs
        .iter()
        .map(|&(a, b)| {
            let (a, b) = (remap(a), remap(b));
            let d = dist[a][b];
            if d == usize::MAX {
                1e9
            } else {
                d.saturating_sub(1) as f64
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{select_layout, LayoutStrategy};
    use qrio_backend::topology;
    use qrio_circuit::library;
    use qrio_sim::run_ideal;

    fn check_routed(circuit: &Circuit, backend: &Backend, routed: &RoutedCircuit) {
        // Every two-qubit gate in the routed circuit must act on a coupled pair.
        for inst in routed.circuit.instructions() {
            if inst.is_two_qubit_gate() {
                assert!(
                    backend
                        .coupling_map()
                        .has_edge(inst.qubits[0], inst.qubits[1]),
                    "gate {:?} on uncoupled pair",
                    inst
                );
            }
        }
        // Gate counts (excluding inserted swaps) are preserved.
        let original_cx = circuit.two_qubit_gate_count();
        let routed_cx = routed.circuit.two_qubit_gate_count();
        assert_eq!(routed_cx, original_cx + routed.swaps_inserted);
        assert_eq!(
            routed.circuit.measurement_count(),
            circuit.measurement_count()
        );
    }

    #[test]
    fn already_routable_circuits_get_no_swaps() {
        let circuit = library::ghz(4).unwrap();
        let backend = Backend::uniform("line", topology::line(4), 0.0, 0.0);
        let layout = Layout::trivial(4, 4).unwrap();
        for strategy in [RoutingStrategy::ShortestPath, RoutingStrategy::Sabre] {
            let routed = route(&circuit, &backend, &layout, strategy).unwrap();
            assert_eq!(routed.swaps_inserted, 0);
            check_routed(&circuit, &backend, &routed);
        }
    }

    #[test]
    fn distant_gates_get_swapped_into_adjacency() {
        let mut circuit = Circuit::new(4, 4);
        circuit.h(0).unwrap();
        circuit.cx(0, 3).unwrap();
        circuit.measure_all().unwrap();
        let backend = Backend::uniform("line", topology::line(4), 0.0, 0.0);
        let layout = Layout::trivial(4, 4).unwrap();
        for strategy in [RoutingStrategy::ShortestPath, RoutingStrategy::Sabre] {
            let routed = route(&circuit, &backend, &layout, strategy).unwrap();
            assert!(routed.swaps_inserted >= 1);
            check_routed(&circuit, &backend, &routed);
        }
    }

    #[test]
    fn routing_preserves_semantics_on_line() {
        // GHZ over a star interaction pattern routed onto a line must still
        // produce the GHZ distribution.
        let mut circuit = Circuit::new(4, 4);
        circuit.h(0).unwrap();
        for t in 1..4 {
            circuit.cx(0, t).unwrap();
        }
        circuit.measure_all().unwrap();
        let backend = Backend::uniform("line", topology::line(4), 0.0, 0.0);
        let layout = Layout::trivial(4, 4).unwrap();
        let reference = run_ideal(&circuit, 2000, 3).unwrap();
        for strategy in [RoutingStrategy::ShortestPath, RoutingStrategy::Sabre] {
            let routed = route(&circuit, &backend, &layout, strategy).unwrap();
            check_routed(&circuit, &backend, &routed);
            let counts = run_ideal(&routed.circuit, 2000, 3).unwrap();
            let fidelity = counts.hellinger_fidelity(&reference);
            assert!(
                fidelity > 0.98,
                "{strategy:?} broke semantics: fidelity {fidelity}"
            );
        }
    }

    #[test]
    fn random_circuits_route_on_sparse_devices() {
        let circuit = library::random_circuit(6, 6, 5).unwrap();
        let backend = Backend::uniform("ring", topology::ring(8), 0.0, 0.0);
        let layout = select_layout(&circuit, &backend, LayoutStrategy::Dense).unwrap();
        for strategy in [RoutingStrategy::ShortestPath, RoutingStrategy::Sabre] {
            let routed = route(&circuit, &backend, &layout, strategy).unwrap();
            check_routed(&circuit, &backend, &routed);
        }
    }

    #[test]
    fn sabre_is_not_much_worse_than_shortest_path() {
        let circuit = library::random_circuit_with_cx_count(8, 20, 13).unwrap();
        let backend = Backend::uniform("grid", topology::grid(3, 3), 0.0, 0.0);
        let layout = select_layout(&circuit, &backend, LayoutStrategy::Dense).unwrap();
        let sp = route(&circuit, &backend, &layout, RoutingStrategy::ShortestPath).unwrap();
        let sabre = route(&circuit, &backend, &layout, RoutingStrategy::Sabre).unwrap();
        check_routed(&circuit, &backend, &sp);
        check_routed(&circuit, &backend, &sabre);
        assert!(sabre.swaps_inserted <= sp.swaps_inserted * 3 + 3);
    }

    #[test]
    fn disconnected_device_reports_error() {
        let mut circuit = Circuit::new(2, 0);
        circuit.cx(0, 1).unwrap();
        let backend = Backend::uniform("disc", qrio_backend::CouplingMap::new(2), 0.0, 0.0);
        let layout = Layout::trivial(2, 2).unwrap();
        let result = route(&circuit, &backend, &layout, RoutingStrategy::ShortestPath);
        assert!(matches!(result, Err(TranspilerError::RoutingStuck(_))));
    }
}
