//! Error types for the transpiler crate.

use std::error::Error;
use std::fmt;

use qrio_circuit::CircuitError;

/// Errors produced while transpiling a circuit to a device.
#[derive(Debug, Clone, PartialEq)]
pub enum TranspilerError {
    /// The circuit needs more qubits than the device provides.
    CircuitTooLarge {
        /// Qubits required by the circuit.
        required: usize,
        /// Qubits available on the device.
        available: usize,
    },
    /// The device's coupling map is disconnected or otherwise unusable.
    UnusableDevice(String),
    /// A gate could not be translated to the device basis.
    TranslationFailed {
        /// Name of the offending gate.
        gate: String,
    },
    /// Routing failed to make progress (should not happen on connected devices).
    RoutingStuck(String),
    /// An underlying circuit manipulation failed.
    Circuit(CircuitError),
}

impl fmt::Display for TranspilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranspilerError::CircuitTooLarge {
                required,
                available,
            } => {
                write!(
                    f,
                    "circuit needs {required} qubits but the device has only {available}"
                )
            }
            TranspilerError::UnusableDevice(msg) => write!(f, "unusable device: {msg}"),
            TranspilerError::TranslationFailed { gate } => {
                write!(f, "gate '{gate}' cannot be translated to the device basis")
            }
            TranspilerError::RoutingStuck(msg) => write!(f, "routing made no progress: {msg}"),
            TranspilerError::Circuit(err) => write!(f, "circuit error during transpilation: {err}"),
        }
    }
}

impl Error for TranspilerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TranspilerError::Circuit(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CircuitError> for TranspilerError {
    fn from(err: CircuitError) -> Self {
        TranspilerError::Circuit(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = TranspilerError::CircuitTooLarge {
            required: 10,
            available: 5,
        };
        assert!(err.to_string().contains("10"));
        let err: TranspilerError = CircuitError::DuplicateQubit { qubit: 1 }.into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
