//! # qrio-transpiler
//!
//! Quantum transpilation for the QRIO quantum-cloud orchestrator
//! (reproduction of *Empowering the Quantum Cloud User with QRIO*, IISWC 2024).
//!
//! Every job QRIO schedules is transpiled to its assigned device before
//! execution (§3.3): the generated runner reads the node's backend, adapts the
//! user's QASM circuit to the device's connectivity and native gates, and then
//! runs it. This crate implements that pipeline, mirroring the Qiskit flow the
//! paper describes in §2.3:
//!
//! * [`layout`] — placement of virtual qubits on physical qubits (trivial and
//!   error/connectivity-aware dense strategies),
//! * [`routing`] — SWAP insertion on the restricted topology (shortest-path
//!   and SABRE-style heuristics),
//! * [`translation`] — decomposition into the device basis (`u1,u2,u3,cx` for
//!   the paper's fleet),
//! * [`optimization`] — single-qubit fusion, CX cancellation and identity
//!   removal,
//! * [`transpile`] / [`transpile_with_options`] — the end-to-end pipeline.
//!
//! # Examples
//!
//! ```
//! use qrio_backend::{topology, Backend};
//! use qrio_circuit::library;
//! use qrio_transpiler::transpile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = library::ghz(4)?;
//! let backend = Backend::uniform("demo", topology::line(6), 0.01, 0.05);
//! let result = transpile(&circuit, &backend)?;
//! assert!(result.circuit.two_qubit_gate_count() >= circuit.two_qubit_gate_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deflate;
mod error;
pub mod layout;
pub mod optimization;
pub mod pipeline;
pub mod routing;
pub mod translation;

pub use deflate::{deflate, DeflatedCircuit};
pub use error::TranspilerError;
pub use layout::{select_layout, Layout, LayoutStrategy};
pub use pipeline::{
    transpile, transpile_with_options, RoutingTarget, TranspileOptions, TranspileResult,
};
pub use routing::{route, RoutedCircuit, RoutingStrategy};
pub use translation::{translate_to_basis, unroll_multi_qubit_gates};
