//! Basis translation: rewriting every gate into the device's native gate set
//! (the "Translation to Basis Gates" step of §2.3).
//!
//! The paper's fleet is defined over the IBM-style `{u1, u2, u3, cx}` basis
//! (Table 2); this pass decomposes every supported gate into that basis.

use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

use qrio_backend::BasisGates;
use qrio_circuit::{Circuit, Gate, Instruction};

use crate::error::TranspilerError;

/// Translate `circuit` so that every unitary gate is native in `basis`.
///
/// Gates already in the basis pass through untouched; measurements, resets and
/// barriers are always kept.
///
/// # Errors
///
/// Returns [`TranspilerError::TranslationFailed`] if a gate has no known
/// decomposition into the requested basis.
pub fn translate_to_basis(
    circuit: &Circuit,
    basis: &BasisGates,
) -> Result<Circuit, TranspilerError> {
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        circuit.num_qubits(),
        circuit.num_clbits(),
    );
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Measure => out.measure(inst.qubits[0], inst.clbits[0])?,
            Gate::Barrier => out.barrier(&inst.qubits)?,
            Gate::Reset => out.append(Gate::Reset, &inst.qubits)?,
            gate if basis.contains(gate.name()) => out.append(gate, &inst.qubits)?,
            gate => {
                for step in decompose(&gate, &inst.qubits, basis)? {
                    out.append(step.gate, &step.qubits)?;
                }
            }
        }
    }
    Ok(out)
}

/// Unroll every gate acting on three or more qubits (currently [`Gate::CCX`])
/// into one- and two-qubit gates, leaving everything else untouched.
///
/// This mirrors Qiskit's `Unroll3qOrMore` pass and must run before layout and
/// routing: the router only guarantees adjacency for two-qubit gates, so any
/// wider gate has to be reduced to the two-qubit level first or its
/// decomposition would land on uncoupled pairs.
///
/// # Errors
///
/// Returns an error only if circuit reconstruction fails (qubit out of range),
/// which cannot happen for circuits validated on construction.
pub fn unroll_multi_qubit_gates(circuit: &Circuit) -> Result<Circuit, TranspilerError> {
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        circuit.num_qubits(),
        circuit.num_clbits(),
    );
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Measure => out.measure(inst.qubits[0], inst.clbits[0])?,
            Gate::Barrier => out.barrier(&inst.qubits)?,
            Gate::CCX => {
                for step in ccx_unrolled(inst.qubits[0], inst.qubits[1], inst.qubits[2]) {
                    out.append(step.gate, &step.qubits)?;
                }
            }
            gate => out.append(gate, &inst.qubits)?,
        }
    }
    Ok(out)
}

fn one(gate: Gate, q: usize) -> Instruction {
    Instruction::new(gate, vec![q])
}

fn two(gate: Gate, a: usize, b: usize) -> Instruction {
    Instruction::new(gate, vec![a, b])
}

/// The standard 6-CX Toffoli decomposition over `{h, t, tdg, cx}` — the single
/// source of truth for CCX, shared by [`unroll_multi_qubit_gates`] and
/// [`translate_to_basis`].
fn ccx_unrolled(a: usize, b: usize, c: usize) -> Vec<Instruction> {
    vec![
        one(Gate::H, c),
        two(Gate::CX, b, c),
        one(Gate::Tdg, c),
        two(Gate::CX, a, c),
        one(Gate::T, c),
        two(Gate::CX, b, c),
        one(Gate::Tdg, c),
        two(Gate::CX, a, c),
        one(Gate::T, b),
        one(Gate::T, c),
        one(Gate::H, c),
        two(Gate::CX, a, b),
        one(Gate::T, a),
        one(Gate::Tdg, b),
        two(Gate::CX, a, b),
    ]
}

/// Decompose a single gate into basis instructions.
fn decompose(
    gate: &Gate,
    qubits: &[usize],
    basis: &BasisGates,
) -> Result<Vec<Instruction>, TranspilerError> {
    let unsupported = || TranspilerError::TranslationFailed {
        gate: gate.name().to_string(),
    };
    if !basis.contains("cx") || !basis.contains("u3") {
        // The built-in decompositions target the IBM basis of the paper.
        return Err(unsupported());
    }
    let q0 = qubits.first().copied().unwrap_or(0);
    let steps = match *gate {
        Gate::I => vec![],
        Gate::X => vec![one(Gate::U3(PI, 0.0, PI), q0)],
        Gate::Y => vec![one(Gate::U3(PI, FRAC_PI_2, FRAC_PI_2), q0)],
        Gate::Z => vec![one(Gate::U1(PI), q0)],
        Gate::H => vec![one(Gate::U2(0.0, PI), q0)],
        Gate::S => vec![one(Gate::U1(FRAC_PI_2), q0)],
        Gate::Sdg => vec![one(Gate::U1(-FRAC_PI_2), q0)],
        Gate::T => vec![one(Gate::U1(FRAC_PI_4), q0)],
        Gate::Tdg => vec![one(Gate::U1(-FRAC_PI_4), q0)],
        Gate::SX => vec![one(Gate::U3(FRAC_PI_2, -FRAC_PI_2, FRAC_PI_2), q0)],
        Gate::RX(theta) => vec![one(Gate::U3(theta, -FRAC_PI_2, FRAC_PI_2), q0)],
        Gate::RY(theta) => vec![one(Gate::U3(theta, 0.0, 0.0), q0)],
        Gate::RZ(theta) => vec![one(Gate::U1(theta), q0)],
        Gate::U1(theta) => vec![one(Gate::U1(theta), q0)],
        Gate::U2(phi, lambda) => vec![one(Gate::U2(phi, lambda), q0)],
        Gate::U3(theta, phi, lambda) => vec![one(Gate::U3(theta, phi, lambda), q0)],
        Gate::CX => vec![two(Gate::CX, qubits[0], qubits[1])],
        Gate::CZ => {
            let (c, t) = (qubits[0], qubits[1]);
            vec![
                one(Gate::U2(0.0, PI), t),
                two(Gate::CX, c, t),
                one(Gate::U2(0.0, PI), t),
            ]
        }
        Gate::CY => {
            let (c, t) = (qubits[0], qubits[1]);
            vec![
                one(Gate::U1(-FRAC_PI_2), t),
                two(Gate::CX, c, t),
                one(Gate::U1(FRAC_PI_2), t),
            ]
        }
        Gate::Swap => {
            let (a, b) = (qubits[0], qubits[1]);
            vec![
                two(Gate::CX, a, b),
                two(Gate::CX, b, a),
                two(Gate::CX, a, b),
            ]
        }
        Gate::CP(lambda) => {
            let (c, t) = (qubits[0], qubits[1]);
            vec![
                one(Gate::U1(lambda / 2.0), c),
                two(Gate::CX, c, t),
                one(Gate::U1(-lambda / 2.0), t),
                two(Gate::CX, c, t),
                one(Gate::U1(lambda / 2.0), t),
            ]
        }
        Gate::CRZ(lambda) => {
            let (c, t) = (qubits[0], qubits[1]);
            vec![
                one(Gate::U1(lambda / 2.0), t),
                two(Gate::CX, c, t),
                one(Gate::U1(-lambda / 2.0), t),
                two(Gate::CX, c, t),
            ]
        }
        Gate::CCX => {
            // Delegate to the shared unrolled form, then translate each of its
            // named gates (h/t/tdg) into the basis.
            let mut steps = Vec::new();
            for inst in ccx_unrolled(qubits[0], qubits[1], qubits[2]) {
                if basis.contains(inst.gate.name()) {
                    steps.push(inst);
                } else {
                    steps.extend(decompose(&inst.gate, &inst.qubits, basis)?);
                }
            }
            steps
        }
        Gate::Measure | Gate::Reset | Gate::Barrier => vec![],
    };
    // Final sanity check: every emitted gate must be native.
    for step in &steps {
        if !basis.contains(step.gate.name()) {
            return Err(unsupported());
        }
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_circuit::library;
    use qrio_sim::run_ideal;

    fn assert_equivalent(original: &Circuit, translated: &Circuit) {
        let a = run_ideal(original, 3000, 17).unwrap();
        let b = run_ideal(translated, 3000, 17).unwrap();
        let fidelity = a.hellinger_fidelity(&b);
        assert!(
            fidelity > 0.97,
            "translation changed semantics: fidelity {fidelity}"
        );
    }

    #[test]
    fn translated_circuits_only_use_basis_gates() {
        let basis = BasisGates::ibm_default();
        let circuit = library::random_circuit(5, 6, 3).unwrap();
        let translated = translate_to_basis(&circuit, &basis).unwrap();
        for inst in translated.instructions() {
            if inst.gate.is_directive() {
                continue;
            }
            assert!(
                basis.contains(inst.gate.name()),
                "non-native gate {:?}",
                inst.gate
            );
        }
    }

    #[test]
    fn named_gates_preserve_semantics() {
        let basis = BasisGates::ibm_default();
        let mut circuit = Circuit::new(3, 3);
        circuit.h(0).unwrap();
        circuit.s(1).unwrap();
        circuit.tdg(2).unwrap();
        circuit.y(1).unwrap();
        circuit.cz(0, 1).unwrap();
        circuit.swap(1, 2).unwrap();
        circuit.cx(0, 2).unwrap();
        circuit.measure_all().unwrap();
        let translated = translate_to_basis(&circuit, &basis).unwrap();
        assert_equivalent(&circuit, &translated);
    }

    #[test]
    fn toffoli_and_controlled_phases_preserve_semantics() {
        let basis = BasisGates::ibm_default();
        let mut circuit = Circuit::new(3, 3);
        circuit.x(0).unwrap();
        circuit.x(1).unwrap();
        circuit.ccx(0, 1, 2).unwrap();
        circuit.append(Gate::CP(0.9), &[0, 2]).unwrap();
        circuit.append(Gate::CRZ(1.3), &[1, 2]).unwrap();
        circuit.measure_all().unwrap();
        let translated = translate_to_basis(&circuit, &basis).unwrap();
        assert_equivalent(&circuit, &translated);
        assert!(translated.count_ops().contains_key("cx"));
        assert!(!translated.count_ops().contains_key("ccx"));
    }

    #[test]
    fn unroll_preserves_toffoli_semantics() {
        let mut circuit = Circuit::new(3, 3);
        circuit.x(0).unwrap();
        circuit.x(1).unwrap();
        circuit.ccx(0, 1, 2).unwrap();
        circuit.ccx(1, 2, 0).unwrap();
        circuit.h(1).unwrap();
        circuit.measure_all().unwrap();
        let unrolled = unroll_multi_qubit_gates(&circuit).unwrap();
        assert!(unrolled
            .instructions()
            .iter()
            .all(|inst| inst.qubits.len() <= 2));
        assert!(!unrolled.count_ops().contains_key("ccx"));
        assert_equivalent(&circuit, &unrolled);
    }

    #[test]
    fn grover_translates_and_runs() {
        let basis = BasisGates::ibm_default();
        let circuit = library::grover(3, 6).unwrap();
        let translated = translate_to_basis(&circuit, &basis).unwrap();
        let counts = run_ideal(&translated, 2048, 5).unwrap();
        assert_eq!(counts.most_frequent(), Some(6));
    }

    #[test]
    fn non_ibm_basis_is_rejected() {
        let basis = BasisGates::new(["rz", "sx", "cz"]);
        let mut circuit = Circuit::new(1, 0);
        circuit.h(0).unwrap();
        assert!(matches!(
            translate_to_basis(&circuit, &basis),
            Err(TranspilerError::TranslationFailed { .. })
        ));
    }

    #[test]
    fn measurements_and_barriers_survive() {
        let basis = BasisGates::ibm_default();
        let mut circuit = Circuit::new(2, 2);
        circuit.h(0).unwrap();
        circuit.barrier(&[]).unwrap();
        circuit.measure_all().unwrap();
        let translated = translate_to_basis(&circuit, &basis).unwrap();
        assert_eq!(translated.measurement_count(), 2);
        assert!(translated.count_ops().contains_key("u2"));
    }
}
