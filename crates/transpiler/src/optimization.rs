//! Physical-circuit optimization passes (the "Virtual/Physical Circuit
//! Optimization" steps of §2.3): single-qubit gate fusion and CX cancellation.

use qrio_circuit::{Circuit, Gate, Instruction};
use qrio_sim::{single_qubit_matrix, Complex64};

use crate::error::TranspilerError;

/// Angles below this magnitude are treated as zero when dropping identities.
const ANGLE_EPSILON: f64 = 1e-9;

/// Run the optimization pipeline: fuse runs of single-qubit gates into a
/// single `u1`/`u3`, cancel adjacent identical CX pairs, and drop identity
/// rotations. The pass is applied repeatedly until it reaches a fixed point
/// (at most a few iterations).
///
/// # Errors
///
/// Returns an error if an instruction cannot be rebuilt (should not occur for
/// circuits produced by the earlier passes).
pub fn optimize(circuit: &Circuit) -> Result<Circuit, TranspilerError> {
    let mut current = circuit.clone();
    for _ in 0..4 {
        let fused = fuse_single_qubit_runs(&current)?;
        let cancelled = cancel_adjacent_cx(&fused)?;
        let cleaned = drop_identities(&cancelled)?;
        if cleaned == current {
            return Ok(cleaned);
        }
        current = cleaned;
    }
    Ok(current)
}

/// Fuse maximal runs of single-qubit unitaries on the same qubit into one
/// `u3` gate (or `u1` when the run is diagonal).
pub fn fuse_single_qubit_runs(circuit: &Circuit) -> Result<Circuit, TranspilerError> {
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        circuit.num_qubits(),
        circuit.num_clbits(),
    );
    // Pending accumulated unitary per qubit.
    let mut pending: Vec<Option<[[Complex64; 2]; 2]>> = vec![None; circuit.num_qubits().max(1)];

    let flush = |out: &mut Circuit,
                 pending: &mut Vec<Option<[[Complex64; 2]; 2]>>,
                 q: usize|
     -> Result<(), TranspilerError> {
        if let Some(matrix) = pending[q].take() {
            if let Some(gate) = matrix_to_gate(&matrix) {
                out.append(gate, &[q])?;
            }
        }
        Ok(())
    };

    for inst in circuit.instructions() {
        let is_fusable_1q = inst.gate.num_qubits() == 1
            && !inst.gate.is_directive()
            && single_qubit_matrix(&inst.gate).is_some();
        if is_fusable_1q {
            let q = inst.qubits[0];
            let matrix = single_qubit_matrix(&inst.gate).expect("checked above");
            let acc = pending[q].unwrap_or(IDENTITY);
            pending[q] = Some(matmul(&matrix, &acc));
        } else {
            for &q in &inst.qubits {
                flush(&mut out, &mut pending, q)?;
            }
            out.push(Instruction {
                gate: inst.gate,
                qubits: inst.qubits.clone(),
                clbits: inst.clbits.clone(),
            })?;
        }
    }
    for q in 0..circuit.num_qubits() {
        flush(&mut out, &mut pending, q)?;
    }
    Ok(out)
}

/// Cancel immediately-adjacent identical CX gates (and adjacent SWAP pairs).
pub fn cancel_adjacent_cx(circuit: &Circuit) -> Result<Circuit, TranspilerError> {
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        circuit.num_qubits(),
        circuit.num_clbits(),
    );
    let instructions = circuit.instructions();
    let mut skip = vec![false; instructions.len()];
    for i in 0..instructions.len() {
        if skip[i] {
            continue;
        }
        let inst = &instructions[i];
        if matches!(inst.gate, Gate::CX | Gate::CZ | Gate::Swap) {
            // Look ahead for the next instruction touching either qubit.
            let mut j = i + 1;
            let mut blocked = false;
            while j < instructions.len() {
                let other = &instructions[j];
                if skip[j] {
                    j += 1;
                    continue;
                }
                let overlaps = other.qubits.iter().any(|q| inst.qubits.contains(q));
                if overlaps {
                    let same = other.gate == inst.gate
                        && (other.qubits == inst.qubits
                            || (matches!(inst.gate, Gate::CZ | Gate::Swap)
                                && other.qubits.len() == 2
                                && other.qubits[0] == inst.qubits[1]
                                && other.qubits[1] == inst.qubits[0]));
                    // Only cancel when the intervening instructions touched
                    // neither qubit (we stop at the first overlap), and the
                    // overlap is exactly the inverse gate.
                    if same && other.qubits.iter().all(|q| inst.qubits.contains(q)) {
                        skip[i] = true;
                        skip[j] = true;
                    }
                    blocked = true;
                    break;
                }
                j += 1;
            }
            let _ = blocked;
        }
        if !skip[i] {
            out.push(Instruction {
                gate: inst.gate,
                qubits: inst.qubits.clone(),
                clbits: inst.clbits.clone(),
            })?;
        }
    }
    Ok(out)
}

/// Drop gates that are numerically the identity (zero-angle rotations).
pub fn drop_identities(circuit: &Circuit) -> Result<Circuit, TranspilerError> {
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        circuit.num_qubits(),
        circuit.num_clbits(),
    );
    for inst in circuit.instructions() {
        let is_identity = match inst.gate {
            Gate::I => true,
            Gate::RZ(t) | Gate::RX(t) | Gate::RY(t) | Gate::U1(t) | Gate::CP(t) | Gate::CRZ(t) => {
                t.abs() < ANGLE_EPSILON
            }
            Gate::U3(t, p, l) => {
                t.abs() < ANGLE_EPSILON && p.abs() < ANGLE_EPSILON && l.abs() < ANGLE_EPSILON
            }
            _ => false,
        };
        if !is_identity {
            out.push(Instruction {
                gate: inst.gate,
                qubits: inst.qubits.clone(),
                clbits: inst.clbits.clone(),
            })?;
        }
    }
    Ok(out)
}

const IDENTITY: [[Complex64; 2]; 2] = [
    [Complex64::ONE, Complex64::ZERO],
    [Complex64::ZERO, Complex64::ONE],
];

/// `a · b` for 2×2 complex matrices.
fn matmul(a: &[[Complex64; 2]; 2], b: &[[Complex64; 2]; 2]) -> [[Complex64; 2]; 2] {
    let mut out = [[Complex64::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// Convert a 2×2 unitary back into a `u1`/`u3` gate (up to global phase), or
/// `None` if it is the identity.
fn matrix_to_gate(matrix: &[[Complex64; 2]; 2]) -> Option<Gate> {
    let (theta, phi, lambda) = zyz_angles(matrix);
    if theta.abs() < ANGLE_EPSILON {
        let total = phi + lambda;
        if normalized_angle(total).abs() < ANGLE_EPSILON {
            return None;
        }
        return Some(Gate::U1(normalized_angle(total)));
    }
    Some(Gate::U3(
        theta,
        normalized_angle(phi),
        normalized_angle(lambda),
    ))
}

/// Extract `u3(θ, φ, λ)` angles (up to global phase) from a 2×2 unitary.
fn zyz_angles(matrix: &[[Complex64; 2]; 2]) -> (f64, f64, f64) {
    let u00 = matrix[0][0];
    let u01 = matrix[0][1];
    let u10 = matrix[1][0];
    let u11 = matrix[1][1];
    let arg = |z: Complex64| z.im.atan2(z.re);
    let theta = 2.0 * u10.abs().atan2(u00.abs());
    if u00.abs() > 1e-12 {
        let gamma = arg(u00);
        let phi = if u10.abs() > 1e-12 {
            arg(u10) - gamma
        } else {
            0.0
        };
        let lambda = if u11.abs() > 1e-12 {
            arg(u11) - gamma - phi
        } else if u01.abs() > 1e-12 {
            arg(-u01) - gamma
        } else {
            0.0
        };
        (theta, phi, lambda)
    } else {
        // theta == pi: only φ − λ matters; put everything into φ.
        let phi = arg(u10) - arg(-u01);
        (theta, phi, 0.0)
    }
}

/// Map an angle into `(-π, π]`.
fn normalized_angle(theta: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut a = theta % two_pi;
    if a > std::f64::consts::PI {
        a -= two_pi;
    } else if a <= -std::f64::consts::PI {
        a += two_pi;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_circuit::library;
    use qrio_sim::run_ideal;

    fn assert_equivalent(original: &Circuit, optimized: &Circuit) {
        let a = run_ideal(original, 3000, 23).unwrap();
        let b = run_ideal(optimized, 3000, 23).unwrap();
        let fidelity = a.hellinger_fidelity(&b);
        assert!(
            fidelity > 0.97,
            "optimization changed semantics: fidelity {fidelity}"
        );
    }

    #[test]
    fn fuses_runs_of_single_qubit_gates() {
        let mut circuit = Circuit::new(1, 1);
        circuit.h(0).unwrap();
        circuit.t(0).unwrap();
        circuit.h(0).unwrap();
        circuit.s(0).unwrap();
        circuit.measure(0, 0).unwrap();
        let optimized = optimize(&circuit).unwrap();
        let unitary_count = optimized.len() - optimized.measurement_count();
        assert_eq!(
            unitary_count, 1,
            "expected a single fused gate: {optimized}"
        );
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn adjacent_cx_pairs_cancel() {
        let mut circuit = Circuit::new(2, 2);
        circuit.h(0).unwrap();
        circuit.cx(0, 1).unwrap();
        circuit.cx(0, 1).unwrap();
        circuit.measure_all().unwrap();
        let optimized = optimize(&circuit).unwrap();
        assert_eq!(optimized.two_qubit_gate_count(), 0);
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn cx_pairs_with_interposed_gates_do_not_cancel() {
        let mut circuit = Circuit::new(2, 2);
        circuit.cx(0, 1).unwrap();
        circuit.x(1).unwrap();
        circuit.cx(0, 1).unwrap();
        circuit.measure_all().unwrap();
        let optimized = optimize(&circuit).unwrap();
        assert_eq!(optimized.two_qubit_gate_count(), 2);
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn reversed_cz_and_swap_cancel() {
        let mut circuit = Circuit::new(2, 2);
        circuit.cz(0, 1).unwrap();
        circuit.cz(1, 0).unwrap();
        circuit.swap(0, 1).unwrap();
        circuit.swap(1, 0).unwrap();
        circuit.h(0).unwrap();
        circuit.measure_all().unwrap();
        let optimized = optimize(&circuit).unwrap();
        assert_eq!(optimized.two_qubit_gate_count(), 0);
        assert_equivalent(&circuit, &optimized);
    }

    #[test]
    fn identity_rotations_are_dropped() {
        let mut circuit = Circuit::new(1, 1);
        circuit.rz(0.0, 0).unwrap();
        circuit.append(Gate::I, &[0]).unwrap();
        circuit.u3(0.0, 0.0, 0.0, 0).unwrap();
        circuit.measure(0, 0).unwrap();
        let optimized = optimize(&circuit).unwrap();
        assert_eq!(optimized.len(), 1);
    }

    #[test]
    fn optimizing_random_circuits_preserves_semantics_and_reduces_depth() {
        for seed in [1u64, 2, 3] {
            let circuit = library::random_circuit(4, 6, seed).unwrap();
            let optimized = optimize(&circuit).unwrap();
            assert!(optimized.depth() <= circuit.depth());
            assert_equivalent(&circuit, &optimized);
        }
    }

    #[test]
    fn bv_survives_optimization() {
        let circuit = library::bernstein_vazirani(6, 0b101101).unwrap();
        let optimized = optimize(&circuit).unwrap();
        let counts = run_ideal(&optimized, 512, 1).unwrap();
        assert_eq!(counts.most_frequent(), Some(0b101101));
    }

    #[test]
    fn zyz_reconstruction_matches_original_matrix() {
        for gate in [
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::RX(0.37),
            Gate::RY(1.2),
            Gate::RZ(2.4),
            Gate::U3(0.7, 0.3, -1.1),
        ] {
            let matrix = single_qubit_matrix(&gate).unwrap();
            let rebuilt_gate = matrix_to_gate(&matrix).unwrap_or(Gate::I);
            let rebuilt = single_qubit_matrix(&rebuilt_gate).unwrap();
            // Compare up to global phase: U† V should be proportional to identity.
            let mut udag = [[Complex64::ZERO; 2]; 2];
            for i in 0..2 {
                for j in 0..2 {
                    udag[i][j] = matrix[j][i].conj();
                }
            }
            let product = matmul(&udag, &rebuilt);
            let off_diag = product[0][1].abs() + product[1][0].abs();
            assert!(off_diag < 1e-6, "gate {gate:?}: off-diagonal {off_diag}");
            let phase_diff = (product[0][0] - product[1][1]).abs();
            assert!(
                phase_diff < 1e-6,
                "gate {gate:?}: diagonal mismatch {phase_diff}"
            );
        }
    }
}
