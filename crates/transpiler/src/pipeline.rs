//! The end-to-end transpilation pipeline.
//!
//! Mirrors the Qiskit flow the paper describes (§2.3): placement on physical
//! qubits, routing on the restricted topology, translation to basis gates and
//! physical circuit optimization. The generated runner script in the paper's
//! master server performs exactly this step before executing a job on its
//! assigned node.

use qrio_backend::{Backend, BasisGates, CouplingMap};
use qrio_circuit::Circuit;

use crate::error::TranspilerError;
use crate::layout::{select_layout, Layout, LayoutStrategy};
use crate::optimization::optimize;
use crate::routing::{route, RoutingStrategy};
use crate::translation::{translate_to_basis, unroll_multi_qubit_gates};

/// Options controlling the transpilation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TranspileOptions {
    /// How to pick the initial layout.
    pub layout: LayoutStrategy,
    /// Which router to use.
    pub routing: RoutingStrategy,
    /// Whether to run the optimization passes after translation.
    pub skip_optimization: bool,
}

/// The routing target a circuit was transpiled against: a snapshot of the
/// device constraints (width, coupling map, basis) the pipeline enforced.
///
/// Emitting this alongside the circuit lets downstream consumers — most
/// importantly the `qrio-analyzer` routed-circuit lints — verify the output
/// against the *actual* target instead of re-guessing which device was meant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTarget {
    /// Name of the device the circuit was routed for.
    pub device: String,
    /// Number of physical qubits on the device.
    pub num_qubits: usize,
    /// The coupling map routing enforced adjacency against.
    pub coupling_map: CouplingMap,
    /// The native gate set translation targeted.
    pub basis_gates: BasisGates,
}

impl RoutingTarget {
    /// Snapshot the routing-relevant constraints of a backend.
    pub fn from_backend(backend: &Backend) -> Self {
        RoutingTarget {
            device: backend.name().to_string(),
            num_qubits: backend.num_qubits(),
            coupling_map: backend.coupling_map().clone(),
            basis_gates: backend.basis_gates().clone(),
        }
    }
}

/// The result of transpiling a circuit for a device.
#[derive(Debug, Clone)]
pub struct TranspileResult {
    /// The executable circuit, expressed over the device's physical qubits in
    /// the device's native basis.
    pub circuit: Circuit,
    /// The initial layout chosen for the circuit.
    pub initial_layout: Layout,
    /// Final virtual→physical mapping after routing.
    pub final_mapping: Vec<usize>,
    /// Number of SWAPs the router inserted (before basis translation).
    pub swaps_inserted: usize,
    /// The device constraints the circuit was routed and translated for.
    pub target: RoutingTarget,
}

impl TranspileResult {
    /// Expected success probability of the transpiled circuit on `backend`,
    /// estimated as the product of per-gate and per-readout success
    /// probabilities — the same analytic estimate Mapomatic-style scoring
    /// uses.
    pub fn estimated_success_probability(&self, backend: &Backend) -> f64 {
        let mut success: f64 = 1.0;
        for inst in self.circuit.instructions() {
            match inst.gate {
                qrio_circuit::Gate::Measure => {
                    success *= 1.0 - backend.qubit(inst.qubits[0]).readout_error;
                }
                qrio_circuit::Gate::Barrier | qrio_circuit::Gate::Reset => {}
                ref gate if gate.is_two_qubit() => {
                    success *=
                        1.0 - backend.two_qubit_error_or_default(inst.qubits[0], inst.qubits[1]);
                }
                _ => {
                    success *= 1.0 - backend.qubit(inst.qubits[0]).single_qubit_error;
                }
            }
        }
        success.clamp(0.0, 1.0)
    }
}

/// Transpile `circuit` for `backend` with default options.
///
/// # Errors
///
/// Returns an error if the circuit does not fit the device, routing fails, or
/// a gate cannot be expressed in the device basis.
pub fn transpile(circuit: &Circuit, backend: &Backend) -> Result<TranspileResult, TranspilerError> {
    transpile_with_options(circuit, backend, TranspileOptions::default())
}

/// Transpile `circuit` for `backend` with explicit options.
///
/// # Errors
///
/// Returns an error if the circuit does not fit the device, routing fails, or
/// a gate cannot be expressed in the device basis.
pub fn transpile_with_options(
    circuit: &Circuit,
    backend: &Backend,
    options: TranspileOptions,
) -> Result<TranspileResult, TranspilerError> {
    // Reduce >2-qubit gates first: the router only guarantees adjacency for
    // two-qubit gates, and layout should see the true interaction graph.
    let unrolled = unroll_multi_qubit_gates(circuit)?;
    let initial_layout = select_layout(&unrolled, backend, options.layout)?;
    let routed = route(&unrolled, backend, &initial_layout, options.routing)?;
    let translated = translate_to_basis(&routed.circuit, backend.basis_gates())?;
    let final_circuit = if options.skip_optimization {
        translated
    } else {
        optimize(&translated)?
    };
    Ok(TranspileResult {
        circuit: final_circuit,
        initial_layout,
        final_mapping: routed.final_mapping,
        swaps_inserted: routed.swaps_inserted,
        target: RoutingTarget::from_backend(backend),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::{fleet, topology};
    use qrio_circuit::library;
    use qrio_sim::run_ideal;

    #[test]
    fn transpiled_circuits_respect_device_constraints() {
        let circuit = library::random_circuit(6, 5, 2).unwrap();
        let backend = Backend::uniform("ring", topology::ring(10), 0.01, 0.05);
        let result = transpile(&circuit, &backend).unwrap();
        for inst in result.circuit.instructions() {
            if inst.is_two_qubit_gate() {
                assert!(backend
                    .coupling_map()
                    .has_edge(inst.qubits[0], inst.qubits[1]));
            }
            if !inst.gate.is_directive() {
                assert!(backend.basis_gates().contains(inst.gate.name()));
            }
        }
        assert_eq!(result.circuit.num_qubits(), backend.num_qubits());
    }

    #[test]
    fn transpiled_bv_still_finds_the_secret() {
        let secret = 0b10110u64;
        let circuit = library::bernstein_vazirani_with_ancilla(5, secret).unwrap();
        let backend = Backend::uniform("line", topology::line(8), 0.0, 0.0);
        let result = transpile(&circuit, &backend).unwrap();
        let counts = run_ideal(&result.circuit, 1024, 4).unwrap();
        assert_eq!(counts.most_frequent(), Some(secret));
    }

    #[test]
    fn transpiled_ghz_preserves_distribution_on_paper_fleet_device() {
        let circuit = library::ghz(4).unwrap();
        let fleet = fleet::generate_fleet(&fleet::FleetConfig::small(), 3).unwrap();
        let backend = &fleet[0];
        let result = transpile(&circuit, backend).unwrap();
        // Run without noise: the routed+translated circuit must still be GHZ.
        let counts = run_ideal(&result.circuit, 1024, 9).unwrap();
        // Reconstruct the two GHZ outcomes over classical bits 0..4.
        let all_ones = 0b1111u64;
        let p = counts.probability(0) + counts.probability(all_ones);
        assert!(p > 0.99, "GHZ structure lost: {counts}");
    }

    #[test]
    fn options_control_optimization() {
        let circuit = library::random_circuit(4, 4, 7).unwrap();
        let backend = Backend::uniform("grid", topology::grid(2, 3), 0.01, 0.02);
        let optimized = transpile(&circuit, &backend).unwrap();
        let raw = transpile_with_options(
            &circuit,
            &backend,
            TranspileOptions {
                skip_optimization: true,
                ..TranspileOptions::default()
            },
        )
        .unwrap();
        assert!(optimized.circuit.len() <= raw.circuit.len());
    }

    #[test]
    fn success_probability_estimate_is_in_range_and_monotone() {
        let circuit = library::ghz(4).unwrap();
        let good = Backend::uniform("good", topology::line(4), 0.001, 0.005);
        let bad = Backend::uniform("bad", topology::line(4), 0.05, 0.3);
        let good_result = transpile(&circuit, &good).unwrap();
        let bad_result = transpile(&circuit, &bad).unwrap();
        let pg = good_result.estimated_success_probability(&good);
        let pb = bad_result.estimated_success_probability(&bad);
        assert!((0.0..=1.0).contains(&pg));
        assert!((0.0..=1.0).contains(&pb));
        assert!(pg > pb);
    }

    #[test]
    fn result_carries_the_routing_target() {
        let circuit = library::ghz(4).unwrap();
        let backend = Backend::uniform("ring", topology::ring(6), 0.01, 0.05);
        let result = transpile(&circuit, &backend).unwrap();
        assert_eq!(result.target, RoutingTarget::from_backend(&backend));
        assert_eq!(result.target.device, "ring");
        assert_eq!(result.target.num_qubits, 6);
        assert!(result.target.coupling_map.has_edge(0, 1));
        assert!(result.target.basis_gates.contains("cx"));
    }

    #[test]
    fn circuit_larger_than_device_fails() {
        let circuit = library::ghz(12).unwrap();
        let backend = Backend::uniform("small", topology::line(5), 0.0, 0.0);
        assert!(matches!(
            transpile(&circuit, &backend),
            Err(TranspilerError::CircuitTooLarge { .. })
        ));
    }
}
