//! Error types for the layout-scoring crate.

use std::error::Error;
use std::fmt;

/// Errors produced while searching for or scoring layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The layout vector does not cover every circuit qubit.
    LayoutTooShort {
        /// Provided layout length.
        layout_len: usize,
        /// Qubits required by the circuit.
        circuit_qubits: usize,
    },
    /// A physical qubit index exceeds the device size.
    PhysicalOutOfRange {
        /// Offending physical qubit.
        physical: usize,
        /// Device size.
        device_qubits: usize,
    },
    /// No embedding of the requested interaction graph exists on the device.
    NoEmbedding {
        /// Device name.
        device: String,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::LayoutTooShort {
                layout_len,
                circuit_qubits,
            } => {
                write!(
                    f,
                    "layout of length {layout_len} cannot place a {circuit_qubits}-qubit circuit"
                )
            }
            LayoutError::PhysicalOutOfRange {
                physical,
                device_qubits,
            } => {
                write!(
                    f,
                    "physical qubit {physical} out of range for a {device_qubits}-qubit device"
                )
            }
            LayoutError::NoEmbedding { device } => {
                write!(
                    f,
                    "no embedding of the requested topology exists on device '{device}'"
                )
            }
        }
    }
}

impl Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LayoutError::NoEmbedding {
            device: "dev".into(),
        };
        assert!(e.to_string().contains("dev"));
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<LayoutError>();
    }
}
