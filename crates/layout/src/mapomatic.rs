//! Mapomatic-style device evaluation: find the lowest-error placement of a
//! circuit's interaction graph on each candidate device and rank devices by
//! that score (paper §3.4.2, reproducing the role of Mapomatic \[21\]).

use qrio_backend::Backend;
use qrio_circuit::Circuit;

use crate::error::LayoutError;
use crate::scoring::score_layout;
use crate::vf2::{find_embeddings, PatternGraph, SearchOptions};

/// A candidate placement of the circuit on a device, with its error score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredLayout {
    /// `layout[virtual_qubit] = physical_qubit`.
    pub layout: Vec<usize>,
    /// Mapomatic cost (lower is better, 0 = error-free).
    pub score: f64,
}

/// Result of evaluating one device for a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEvaluation {
    /// Device name.
    pub device: String,
    /// The best (lowest-score) layout found.
    pub best: ScoredLayout,
    /// Number of embeddings examined.
    pub embeddings_examined: usize,
}

/// Find the best layouts of `circuit` on `backend`, ranked by score
/// (lowest first). At most `max_layouts` are returned.
///
/// Isolated circuit qubits (no two-qubit interaction) are placed greedily on
/// the lowest-readout-error unused physical qubits after the interacting core
/// has been embedded.
///
/// # Errors
///
/// Returns [`LayoutError::NoEmbedding`] when the interaction graph cannot be
/// embedded in the device's coupling map at all.
pub fn best_layouts(
    circuit: &Circuit,
    backend: &Backend,
    max_layouts: usize,
) -> Result<Vec<ScoredLayout>, LayoutError> {
    if circuit.num_qubits() > backend.num_qubits() {
        return Err(LayoutError::NoEmbedding {
            device: backend.name().to_string(),
        });
    }
    let pattern = PatternGraph::new(circuit.num_qubits(), &circuit.interaction_graph());
    let options = SearchOptions::default();
    let embeddings = find_embeddings(&pattern, backend.coupling_map(), options);
    if embeddings.is_empty() {
        return Err(LayoutError::NoEmbedding {
            device: backend.name().to_string(),
        });
    }
    let mut scored = Vec::with_capacity(embeddings.len());
    for embedding in &embeddings {
        let layout = complete_layout(embedding, circuit.num_qubits(), backend);
        let score = score_layout(circuit, backend, &layout)?;
        scored.push(ScoredLayout { layout, score });
    }
    scored.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    scored.truncate(max_layouts.max(1));
    Ok(scored)
}

/// Evaluate a circuit on a single device: the best layout plus its score.
///
/// # Errors
///
/// Returns [`LayoutError::NoEmbedding`] when the device cannot host the
/// circuit's interaction graph.
pub fn evaluate_device(
    circuit: &Circuit,
    backend: &Backend,
) -> Result<DeviceEvaluation, LayoutError> {
    let layouts = best_layouts(circuit, backend, 8)?;
    let examined = layouts.len();
    let best = layouts
        .into_iter()
        .next()
        .expect("best_layouts returns at least one layout");
    Ok(DeviceEvaluation {
        device: backend.name().to_string(),
        best,
        embeddings_examined: examined,
    })
}

/// Evaluate a circuit across many devices, returning successful evaluations
/// ranked by score (lowest first). Devices with no embedding are skipped.
pub fn rank_devices(circuit: &Circuit, backends: &[Backend]) -> Vec<DeviceEvaluation> {
    let mut evaluations: Vec<DeviceEvaluation> = backends
        .iter()
        .filter_map(|b| evaluate_device(circuit, b).ok())
        .collect();
    evaluations.sort_by(|a, b| {
        a.best
            .score
            .partial_cmp(&b.best.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    evaluations
}

/// Fill the unassigned (non-interacting) virtual qubits of an embedding with
/// the best remaining physical qubits.
fn complete_layout(embedding: &[usize], num_virtual: usize, backend: &Backend) -> Vec<usize> {
    let mut layout = vec![usize::MAX; num_virtual];
    let mut used = vec![false; backend.num_qubits()];
    for (v, &p) in embedding.iter().enumerate() {
        layout[v] = p;
        used[p] = true;
    }
    // Remaining physical qubits sorted by readout quality.
    let mut free: Vec<usize> = (0..backend.num_qubits()).filter(|&p| !used[p]).collect();
    free.sort_by(|&a, &b| {
        backend
            .qubit(a)
            .readout_error
            .partial_cmp(&backend.qubit(b).readout_error)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut free_iter = free.into_iter();
    for slot in layout.iter_mut() {
        if *slot == usize::MAX {
            *slot = free_iter
                .next()
                .expect("device has at least as many qubits as the circuit");
        }
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use qrio_circuit::library;

    #[test]
    fn best_layouts_are_sorted_and_valid() {
        let circuit = library::topology_circuit(3, &[(0, 1), (1, 2)]).unwrap();
        let backend = Backend::uniform("ring", topology::ring(6), 0.01, 0.05);
        let layouts = best_layouts(&circuit, &backend, 5).unwrap();
        assert!(!layouts.is_empty());
        assert!(layouts.len() <= 5);
        for window in layouts.windows(2) {
            assert!(window[0].score <= window[1].score);
        }
        for sl in &layouts {
            assert_eq!(sl.layout.len(), 3);
        }
    }

    #[test]
    fn no_embedding_is_an_error() {
        let triangle = library::topology_circuit(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let tree = Backend::uniform("tree", topology::binary_tree(7), 0.0, 0.0);
        assert!(matches!(
            evaluate_device(&triangle, &tree),
            Err(LayoutError::NoEmbedding { .. })
        ));
        let big = library::topology_circuit(10, &[(0, 1)]).unwrap();
        let small = Backend::uniform("small", topology::line(4), 0.0, 0.0);
        assert!(best_layouts(&big, &small, 3).is_err());
    }

    #[test]
    fn rank_devices_prefers_matching_topology() {
        // A tree-shaped request against tree / ring / line devices with equal
        // error rates: only the tree device can host it without penalty
        // (this is the Fig. 9 scenario).
        let tree_map = topology::binary_tree(10);
        let request = library::topology_circuit(10, &tree_map.edges()).unwrap();
        let devices = vec![
            Backend::uniform("device-ring", topology::ring(10), 0.01, 0.05),
            Backend::uniform("device-tree", topology::binary_tree(10), 0.01, 0.05),
            Backend::uniform("device-line", topology::line(10), 0.01, 0.05),
        ];
        let ranking = rank_devices(&request, &devices);
        assert_eq!(
            ranking.len(),
            1,
            "only the tree device embeds the tree request"
        );
        assert_eq!(ranking[0].device, "device-tree");
    }

    #[test]
    fn rank_devices_prefers_lower_error_when_both_embed() {
        let request = library::topology_circuit(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let devices = vec![
            Backend::uniform("noisy", topology::line(6), 0.02, 0.3),
            Backend::uniform("quiet", topology::line(6), 0.001, 0.01),
        ];
        let ranking = rank_devices(&request, &devices);
        assert_eq!(ranking.len(), 2);
        assert_eq!(ranking[0].device, "quiet");
        assert!(ranking[0].best.score < ranking[1].best.score);
    }

    #[test]
    fn isolated_qubits_get_placed() {
        // 4-qubit circuit where qubit 3 never interacts.
        let mut circuit = Circuit::new(4, 4);
        circuit.cx(0, 1).unwrap();
        circuit.cx(1, 2).unwrap();
        circuit.h(3).unwrap();
        circuit.measure_all().unwrap();
        let backend = Backend::uniform("line", topology::line(6), 0.01, 0.05);
        let layouts = best_layouts(&circuit, &backend, 3).unwrap();
        for sl in &layouts {
            let mut sorted = sl.layout.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "layout must be injective: {:?}", sl.layout);
        }
    }

    #[test]
    fn evaluate_device_reports_name() {
        let circuit = library::topology_circuit(2, &[(0, 1)]).unwrap();
        let backend = Backend::uniform("named-device", topology::line(3), 0.0, 0.05);
        let eval = evaluate_device(&circuit, &backend).unwrap();
        assert_eq!(eval.device, "named-device");
        assert!(eval.embeddings_examined >= 1);
    }
}
