//! Subgraph monomorphism search (VF2-style backtracking).
//!
//! The topology-ranking strategy needs to find placements of the user's
//! requested interaction graph inside a device's coupling map (paper §3.4.2).
//! This module enumerates injective vertex mappings under which every pattern
//! edge lands on a device edge, with degree-based pruning and a result limit
//! so dense devices stay tractable (the paper notes Mapomatic itself struggles
//! on densely connected devices).

use qrio_backend::CouplingMap;

/// A pattern graph to embed: `num_vertices` vertices and undirected edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternGraph {
    num_vertices: usize,
    edges: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
}

impl PatternGraph {
    /// Build a pattern from an edge list. Self-loops and out-of-range edges
    /// are ignored.
    ///
    /// Deduplication is O(E) via a hash set (the previous `Vec::contains`
    /// scan per edge was O(E²), which hurt on dense patterns); first-seen
    /// order of the cleaned edges is preserved.
    pub fn new(num_vertices: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![Vec::new(); num_vertices];
        let mut cleaned = Vec::with_capacity(edges.len());
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for &(a, b) in edges {
            if a == b || a >= num_vertices || b >= num_vertices {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                continue;
            }
            cleaned.push(key);
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        PatternGraph {
            num_vertices,
            edges: cleaned,
            adjacency,
        }
    }

    /// Number of pattern vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The deduplicated pattern edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Degree of a pattern vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }
}

/// Options for the monomorphism search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    /// Stop after finding this many embeddings.
    pub max_results: usize,
    /// Abort after exploring this many search-tree nodes (guards against the
    /// combinatorial blow-up on densely connected devices).
    pub max_nodes: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_results: 256,
            max_nodes: 200_000,
        }
    }
}

/// Find injective mappings `pattern vertex -> device qubit` such that every
/// pattern edge maps onto a device edge.
///
/// Returns at most `options.max_results` embeddings; each embedding is a
/// vector indexed by pattern vertex. Vertices are matched in
/// highest-degree-first order, which prunes aggressively on sparse devices.
pub fn find_embeddings(
    pattern: &PatternGraph,
    device: &CouplingMap,
    options: SearchOptions,
) -> Vec<Vec<usize>> {
    let p = pattern.num_vertices();
    if p == 0 {
        return vec![Vec::new()];
    }
    if p > device.num_qubits() {
        return Vec::new();
    }
    // Match order: decreasing degree, then index (stable).
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(pattern.degree(v)));

    let mut results = Vec::new();
    let mut mapping = vec![usize::MAX; p];
    let mut used = vec![false; device.num_qubits()];
    let mut nodes_explored = 0usize;
    search(
        pattern,
        device,
        &order,
        0,
        &mut mapping,
        &mut used,
        &mut results,
        &options,
        &mut nodes_explored,
    );
    results
}

#[allow(clippy::too_many_arguments)]
fn search(
    pattern: &PatternGraph,
    device: &CouplingMap,
    order: &[usize],
    depth: usize,
    mapping: &mut Vec<usize>,
    used: &mut Vec<bool>,
    results: &mut Vec<Vec<usize>>,
    options: &SearchOptions,
    nodes: &mut usize,
) {
    if results.len() >= options.max_results || *nodes >= options.max_nodes {
        return;
    }
    if depth == order.len() {
        results.push(mapping.clone());
        return;
    }
    let v = order[depth];
    // Candidates: if v has an already-mapped neighbor, restrict to the device
    // neighborhood of one such neighbor; otherwise any unused device qubit.
    let mapped_neighbor = pattern_neighbors(pattern, v)
        .iter()
        .copied()
        .find(|&n| mapping[n] != usize::MAX);
    let candidates: Vec<usize> = match mapped_neighbor {
        Some(n) => device.neighbors(mapping[n]).to_vec(),
        None => (0..device.num_qubits()).collect(),
    };
    for candidate in candidates {
        if used[candidate] {
            continue;
        }
        *nodes += 1;
        if *nodes >= options.max_nodes {
            return;
        }
        if device.degree(candidate) < pattern.degree(v) {
            continue;
        }
        // Consistency: every mapped pattern neighbor must be a device neighbor.
        let consistent = pattern_neighbors(pattern, v)
            .iter()
            .filter(|&&n| mapping[n] != usize::MAX)
            .all(|&n| device.has_edge(candidate, mapping[n]));
        if !consistent {
            continue;
        }
        mapping[v] = candidate;
        used[candidate] = true;
        search(
            pattern,
            device,
            order,
            depth + 1,
            mapping,
            used,
            results,
            options,
            nodes,
        );
        mapping[v] = usize::MAX;
        used[candidate] = false;
        if results.len() >= options.max_results {
            return;
        }
    }
}

fn pattern_neighbors(pattern: &PatternGraph, v: usize) -> &[usize] {
    &pattern.adjacency[v]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;

    #[test]
    fn line_embeds_in_ring() {
        let pattern = PatternGraph::new(3, &[(0, 1), (1, 2)]);
        let ring = topology::ring(5);
        let embeddings = find_embeddings(&pattern, &ring, SearchOptions::default());
        assert!(!embeddings.is_empty());
        for emb in &embeddings {
            assert!(ring.has_edge(emb[0], emb[1]));
            assert!(ring.has_edge(emb[1], emb[2]));
            // Injective.
            assert_ne!(emb[0], emb[2]);
        }
    }

    #[test]
    fn triangle_does_not_embed_in_tree() {
        let pattern = PatternGraph::new(3, &[(0, 1), (1, 2), (0, 2)]);
        let tree = topology::binary_tree(7);
        assert!(find_embeddings(&pattern, &tree, SearchOptions::default()).is_empty());
    }

    #[test]
    fn star_needs_a_high_degree_vertex() {
        let star4 = PatternGraph::new(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let line = topology::line(10);
        assert!(find_embeddings(&star4, &line, SearchOptions::default()).is_empty());
        let device_star = topology::star(6);
        assert!(!find_embeddings(&star4, &device_star, SearchOptions::default()).is_empty());
    }

    #[test]
    fn pattern_larger_than_device_has_no_embedding() {
        let pattern = PatternGraph::new(6, &[(0, 1)]);
        let device = topology::line(4);
        assert!(find_embeddings(&pattern, &device, SearchOptions::default()).is_empty());
    }

    #[test]
    fn empty_pattern_has_trivial_embedding() {
        let pattern = PatternGraph::new(0, &[]);
        let device = topology::line(3);
        let embeddings = find_embeddings(&pattern, &device, SearchOptions::default());
        assert_eq!(embeddings, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn result_limit_is_respected() {
        let pattern = PatternGraph::new(2, &[(0, 1)]);
        let device = topology::fully_connected(10);
        let options = SearchOptions {
            max_results: 5,
            max_nodes: 100_000,
        };
        let embeddings = find_embeddings(&pattern, &device, options);
        assert_eq!(embeddings.len(), 5);
    }

    #[test]
    fn node_budget_terminates_search_on_dense_devices() {
        let pattern = PatternGraph::new(6, &topology::fully_connected(6).edges());
        let device = topology::fully_connected(40);
        let options = SearchOptions {
            max_results: 10_000,
            max_nodes: 5_000,
        };
        // Must terminate quickly; correctness of partial enumeration is fine.
        let embeddings = find_embeddings(&pattern, &device, options);
        assert!(embeddings.len() <= 10_000);
    }

    #[test]
    fn pattern_graph_cleans_input() {
        let pattern = PatternGraph::new(3, &[(0, 1), (1, 0), (2, 2), (0, 9)]);
        assert_eq!(pattern.edges(), &[(0, 1)]);
        assert_eq!(pattern.degree(0), 1);
        assert_eq!(pattern.degree(2), 0);
    }

    #[test]
    fn dense_pattern_graph_dedups_quickly_and_correctly() {
        // A fully-connected 120-vertex pattern, every edge listed in both
        // orientations plus self-loops: 14 280 raw entries deduplicating to
        // 7 140. The old O(E²) scan took quadratic time here; the hash-set
        // path is linear and must preserve first-seen order.
        let n = 120;
        let mut raw = Vec::new();
        for a in 0..n {
            raw.push((a, a)); // self-loop, dropped
            for b in (a + 1)..n {
                raw.push((a, b));
                raw.push((b, a)); // duplicate orientation, dropped
            }
        }
        let pattern = PatternGraph::new(n, &raw);
        assert_eq!(pattern.edges().len(), n * (n - 1) / 2);
        assert_eq!(pattern.num_vertices(), n);
        for v in 0..n {
            assert_eq!(pattern.degree(v), n - 1);
        }
        // First-seen order preserved: (0,1) first, (n-2, n-1) last.
        assert_eq!(pattern.edges()[0], (0, 1));
        assert_eq!(*pattern.edges().last().unwrap(), (n - 2, n - 1));
    }

    #[test]
    fn disconnected_pattern_embeds() {
        // Two disjoint edges into a line of 5.
        let pattern = PatternGraph::new(4, &[(0, 1), (2, 3)]);
        let device = topology::line(5);
        let embeddings = find_embeddings(&pattern, &device, SearchOptions::default());
        assert!(!embeddings.is_empty());
        for emb in &embeddings {
            assert!(device.has_edge(emb[0], emb[1]));
            assert!(device.has_edge(emb[2], emb[3]));
        }
    }
}
