//! # qrio-layout
//!
//! Mapomatic-style layout search and scoring for the QRIO quantum-cloud
//! orchestrator (reproduction of *Empowering the Quantum Cloud User with
//! QRIO*, IISWC 2024).
//!
//! The paper's topology-ranking strategy (§3.4.2) relies on Mapomatic \[21\]:
//! identify device subgraphs that can host a circuit's interaction graph and
//! score each with an error-aware cost function, then pick the device whose
//! best subgraph scores lowest. This crate reproduces that machinery:
//!
//! * [`vf2`] — bounded subgraph-monomorphism search over coupling maps,
//! * [`scoring`] — the `1 − Π(1 − ε)` layout cost function,
//! * [`mapomatic`] — per-device evaluation ([`evaluate_device`]) and
//!   cross-device ranking ([`rank_devices`]).
//!
//! # Examples
//!
//! ```
//! use qrio_backend::{topology, Backend};
//! use qrio_circuit::library;
//! use qrio_layout::rank_devices;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let request = library::topology_circuit(3, &[(0, 1), (1, 2)])?;
//! let devices = vec![
//!     Backend::uniform("noisy", topology::line(5), 0.02, 0.3),
//!     Backend::uniform("quiet", topology::line(5), 0.001, 0.01),
//! ];
//! let ranking = rank_devices(&request, &devices);
//! assert_eq!(ranking[0].device, "quiet");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod mapomatic;
pub mod scoring;
pub mod vf2;

pub use error::LayoutError;
pub use mapomatic::{best_layouts, evaluate_device, rank_devices, DeviceEvaluation, ScoredLayout};
pub use scoring::{score_layout, score_layout_percent};
pub use vf2::{find_embeddings, PatternGraph, SearchOptions};
