//! Error-aware layout scoring (the Mapomatic cost function).
//!
//! Each candidate embedding of a circuit onto a device subgraph is scored with
//! an estimate of the error the circuit would accumulate there: the complement
//! of the product of per-gate and per-readout success probabilities. Lower is
//! better, matching the paper's convention that the scheduler picks the device
//! with the lowest score (§3.5).

use qrio_backend::Backend;
use qrio_circuit::{Circuit, Gate};

use crate::error::LayoutError;

/// Score a concrete layout of `circuit` on `backend`.
///
/// `layout[virtual_qubit]` is the physical qubit assigned to that virtual
/// qubit. The score is `1 − Π(1 − ε)` over all gates and measurements, so a
/// perfect device scores 0 and an unusable one approaches 1. Two-qubit gates
/// mapped onto uncoupled pairs contribute an error of 1, driving the score to
/// its maximum — exactly the behaviour needed to discard invalid embeddings.
///
/// # Errors
///
/// Returns an error if the layout does not cover the circuit or maps outside
/// the device.
pub fn score_layout(
    circuit: &Circuit,
    backend: &Backend,
    layout: &[usize],
) -> Result<f64, LayoutError> {
    if layout.len() < circuit.num_qubits() {
        return Err(LayoutError::LayoutTooShort {
            layout_len: layout.len(),
            circuit_qubits: circuit.num_qubits(),
        });
    }
    for &p in layout.iter().take(circuit.num_qubits()) {
        if p >= backend.num_qubits() {
            return Err(LayoutError::PhysicalOutOfRange {
                physical: p,
                device_qubits: backend.num_qubits(),
            });
        }
    }
    let mut success: f64 = 1.0;
    let mut measured_any = false;
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Barrier | Gate::Reset => {}
            Gate::Measure => {
                measured_any = true;
                let p = layout[inst.qubits[0]];
                success *= 1.0 - backend.qubit(p).readout_error;
            }
            ref gate if gate.is_two_qubit() => {
                let (a, b) = (layout[inst.qubits[0]], layout[inst.qubits[1]]);
                success *= 1.0 - backend.two_qubit_error_or_default(a, b);
            }
            Gate::CCX => {
                // Three-qubit gates decompose into 6 CX; approximate with the
                // product of the three pairwise errors.
                let (a, b, c) = (
                    layout[inst.qubits[0]],
                    layout[inst.qubits[1]],
                    layout[inst.qubits[2]],
                );
                success *= 1.0 - backend.two_qubit_error_or_default(a, c);
                success *= 1.0 - backend.two_qubit_error_or_default(b, c);
                success *= 1.0 - backend.two_qubit_error_or_default(a, b);
            }
            _ => {
                let p = layout[inst.qubits[0]];
                success *= 1.0 - backend.qubit(p).single_qubit_error;
            }
        }
    }
    if !measured_any {
        // Mapomatic always accounts for readout on the active qubits.
        for &v in &circuit.active_qubits() {
            success *= 1.0 - backend.qubit(layout[v]).readout_error;
        }
    }
    Ok((1.0 - success).clamp(0.0, 1.0))
}

/// Score expressed on the 0–100 scale used by the QRIO meta server when it
/// replies to the scheduler's ranking plugin.
pub fn score_layout_percent(
    circuit: &Circuit,
    backend: &Backend,
    layout: &[usize],
) -> Result<f64, LayoutError> {
    Ok(score_layout(circuit, backend, layout)? * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use qrio_circuit::library;

    #[test]
    fn perfect_device_scores_zero() {
        let circuit = library::ghz(3).unwrap();
        let backend = Backend::uniform("perfect", topology::line(3), 0.0, 0.0);
        let score = score_layout(&circuit, &backend, &[0, 1, 2]).unwrap();
        assert!(score.abs() < 1e-12);
    }

    #[test]
    fn noisier_devices_score_higher() {
        let circuit = library::ghz(3).unwrap();
        let good = Backend::uniform("good", topology::line(3), 0.001, 0.01);
        let bad = Backend::uniform("bad", topology::line(3), 0.01, 0.2);
        let s_good = score_layout(&circuit, &good, &[0, 1, 2]).unwrap();
        let s_bad = score_layout(&circuit, &bad, &[0, 1, 2]).unwrap();
        assert!(s_bad > s_good);
        assert!((0.0..=1.0).contains(&s_bad));
    }

    #[test]
    fn uncoupled_mapping_is_heavily_penalised() {
        let mut circuit = Circuit::new(2, 2);
        circuit.cx(0, 1).unwrap();
        circuit.measure_all().unwrap();
        let backend = Backend::uniform("line", topology::line(4), 0.0, 0.01);
        let coupled = score_layout(&circuit, &backend, &[0, 1]).unwrap();
        let uncoupled = score_layout(&circuit, &backend, &[0, 3]).unwrap();
        assert!(coupled < 0.1);
        assert!(uncoupled > 0.9);
    }

    #[test]
    fn layout_errors_are_reported() {
        let circuit = library::ghz(3).unwrap();
        let backend = Backend::uniform("line", topology::line(3), 0.0, 0.0);
        assert!(score_layout(&circuit, &backend, &[0, 1]).is_err());
        assert!(score_layout(&circuit, &backend, &[0, 1, 7]).is_err());
    }

    #[test]
    fn readout_counts_even_without_measurements() {
        let circuit = library::topology_circuit(2, &[(0, 1)]).unwrap();
        let backend =
            Backend::uniform("line", topology::line(2), 0.0, 0.0).with_uniform_readout_error(0.1);
        let score = score_layout(&circuit, &backend, &[0, 1]).unwrap();
        assert!(score > 0.15, "readout error should contribute: {score}");
    }

    #[test]
    fn percent_scale_matches() {
        let circuit = library::ghz(2).unwrap();
        let backend = Backend::uniform("line", topology::line(2), 0.0, 0.1);
        let raw = score_layout(&circuit, &backend, &[0, 1]).unwrap();
        let pct = score_layout_percent(&circuit, &backend, &[0, 1]).unwrap();
        assert!((pct - raw * 100.0).abs() < 1e-9);
    }
}
