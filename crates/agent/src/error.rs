//! Typed errors for agent and transport operations.

use std::fmt;

use qrio_proto::ProtoError;

/// Errors surfaced by [`crate::Transport`] implementations and
/// [`crate::NodeAgent`] frame handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentError {
    /// A frame failed wire decoding.
    Proto(ProtoError),
    /// A command was addressed to a node no agent owns.
    UnknownNode {
        /// The unrecognised node id.
        node: String,
    },
    /// The transport's channel to its workers (or back) is closed.
    Disconnected,
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::Proto(err) => write!(f, "wire error: {err}"),
            AgentError::UnknownNode { node } => {
                write!(f, "no agent registered for node '{node}'")
            }
            AgentError::Disconnected => write!(f, "transport channel disconnected"),
        }
    }
}

impl std::error::Error for AgentError {}

impl From<ProtoError> for AgentError {
    fn from(err: ProtoError) -> Self {
        AgentError::Proto(err)
    }
}
