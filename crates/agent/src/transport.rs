//! The transport seam between the orchestrator and its node agents.
//!
//! Both implementations carry **encoded** [`qrio_proto::Envelope`] frames, so
//! the full encode→decode path is exercised no matter which mode is active:
//!
//! * [`InProcTransport`] — agents live in the caller's thread and process
//!   each frame synchronously at `send` time. Fully deterministic in virtual
//!   time; the default for every bench.
//! * [`ChannelTransport`] — agents live on real `std::thread` workers
//!   (round-robin by registration order) and frames travel over `mpsc`
//!   channels. Reports may lag commands, but because agents are pure
//!   functions of their per-node command streams, final results are
//!   byte-identical for any worker count.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::mpsc;
use std::thread::JoinHandle;

use qrio_proto::Envelope;

use crate::agent::NodeAgent;
use crate::error::AgentError;

/// A bidirectional frame pipe between the orchestrator and its agents.
///
/// `send` carries one encoded command envelope toward the node it names;
/// `recv` yields encoded report envelopes as they become available. The
/// agent protocol guarantees one report per command, so callers can await
/// replies by counting.
pub trait Transport: fmt::Debug {
    /// Short mode name (`"in-proc"` / `"threaded"`), for logs and reports.
    fn mode(&self) -> &'static str;

    /// Hand a new agent to the transport.
    ///
    /// # Errors
    ///
    /// Fails when the transport's workers are gone.
    fn register(&mut self, agent: NodeAgent) -> Result<(), AgentError>;

    /// Deliver one encoded command envelope to the node it is addressed to.
    ///
    /// # Errors
    ///
    /// Fails when the frame is malformed, names an unregistered node, or the
    /// transport's workers are gone.
    fn send(&mut self, frame: Vec<u8>) -> Result<(), AgentError>;

    /// Fetch the next encoded report envelope.
    ///
    /// Returns `Ok(None)` when nothing is pending. With `wait = true` the
    /// call blocks until a report arrives, provided at least one command is
    /// still unanswered (it never blocks on an idle transport).
    ///
    /// # Errors
    ///
    /// Fails when the transport's workers are gone.
    fn recv(&mut self, wait: bool) -> Result<Option<Vec<u8>>, AgentError>;

    /// Names of all registered nodes, sorted.
    fn node_names(&self) -> Vec<String>;
}

/// Deterministic single-thread transport: every `send` runs the target agent
/// to completion and queues its reports.
#[derive(Debug, Default)]
pub struct InProcTransport {
    agents: BTreeMap<String, NodeAgent>,
    inbox: VecDeque<Vec<u8>>,
}

impl InProcTransport {
    /// An empty transport with no agents.
    pub fn new() -> Self {
        InProcTransport::default()
    }
}

impl Transport for InProcTransport {
    fn mode(&self) -> &'static str {
        "in-proc"
    }

    fn register(&mut self, agent: NodeAgent) -> Result<(), AgentError> {
        self.agents.insert(agent.node_id().to_string(), agent);
        Ok(())
    }

    fn send(&mut self, frame: Vec<u8>) -> Result<(), AgentError> {
        let (envelope, _) = Envelope::decode(&frame)?;
        let agent = self
            .agents
            .get_mut(&envelope.node_id)
            .ok_or(AgentError::UnknownNode {
                node: envelope.node_id.clone(),
            })?;
        for reply in agent.handle_frame(&frame)? {
            self.inbox.push_back(reply);
        }
        Ok(())
    }

    fn recv(&mut self, _wait: bool) -> Result<Option<Vec<u8>>, AgentError> {
        Ok(self.inbox.pop_front())
    }

    fn node_names(&self) -> Vec<String> {
        self.agents.keys().cloned().collect()
    }
}

enum WorkerMsg {
    Attach(Box<NodeAgent>),
    Frame(Vec<u8>),
    Shutdown,
}

struct Worker {
    tx: mpsc::Sender<WorkerMsg>,
    handle: Option<JoinHandle<()>>,
}

/// Threaded transport: agents are partitioned round-robin over real worker
/// threads and frames cross `mpsc` channels in both directions.
pub struct ChannelTransport {
    workers: Vec<Worker>,
    assignment: BTreeMap<String, usize>,
    next_worker: usize,
    report_rx: mpsc::Receiver<Vec<u8>>,
    in_flight: u64,
}

impl fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("workers", &self.workers.len())
            .field("assignment", &self.assignment)
            .field("in_flight", &self.in_flight)
            .finish()
    }
}

fn worker_loop(rx: mpsc::Receiver<WorkerMsg>, tx: mpsc::Sender<Vec<u8>>) {
    let mut agents: BTreeMap<String, NodeAgent> = BTreeMap::new();
    while let Ok(message) = rx.recv() {
        match message {
            WorkerMsg::Attach(agent) => {
                agents.insert(agent.node_id().to_string(), *agent);
            }
            WorkerMsg::Frame(frame) => {
                let replies = match Envelope::decode(&frame) {
                    Ok((envelope, _)) => match agents.get_mut(&envelope.node_id) {
                        Some(agent) => agent.handle_frame(&frame).unwrap_or_default(),
                        None => Vec::new(),
                    },
                    Err(_) => Vec::new(),
                };
                for reply in replies {
                    if tx.send(reply).is_err() {
                        return;
                    }
                }
            }
            WorkerMsg::Shutdown => return,
        }
    }
}

impl ChannelTransport {
    /// Spawn `threads` worker threads (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (report_tx, report_rx) = mpsc::channel();
        let workers = (0..threads)
            .map(|_| {
                let (tx, rx) = mpsc::channel();
                let report_tx = report_tx.clone();
                let handle = std::thread::spawn(move || worker_loop(rx, report_tx));
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        ChannelTransport {
            workers,
            assignment: BTreeMap::new(),
            next_worker: 0,
            report_rx,
            in_flight: 0,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }
}

impl Transport for ChannelTransport {
    fn mode(&self) -> &'static str {
        "threaded"
    }

    fn register(&mut self, agent: NodeAgent) -> Result<(), AgentError> {
        let index = self.next_worker % self.workers.len();
        self.next_worker += 1;
        self.assignment.insert(agent.node_id().to_string(), index);
        self.workers[index]
            .tx
            .send(WorkerMsg::Attach(Box::new(agent)))
            .map_err(|_| AgentError::Disconnected)
    }

    fn send(&mut self, frame: Vec<u8>) -> Result<(), AgentError> {
        let (envelope, _) = Envelope::decode(&frame)?;
        let index = *self
            .assignment
            .get(&envelope.node_id)
            .ok_or(AgentError::UnknownNode {
                node: envelope.node_id.clone(),
            })?;
        self.workers[index]
            .tx
            .send(WorkerMsg::Frame(frame))
            .map_err(|_| AgentError::Disconnected)?;
        self.in_flight += 1;
        Ok(())
    }

    fn recv(&mut self, wait: bool) -> Result<Option<Vec<u8>>, AgentError> {
        if self.in_flight == 0 {
            return Ok(None);
        }
        if wait {
            let frame = self
                .report_rx
                .recv()
                .map_err(|_| AgentError::Disconnected)?;
            self.in_flight -= 1;
            return Ok(Some(frame));
        }
        match self.report_rx.try_recv() {
            Ok(frame) => {
                self.in_flight -= 1;
                Ok(Some(frame))
            }
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(AgentError::Disconnected),
        }
    }

    fn node_names(&self) -> Vec<String> {
        self.assignment.keys().cloned().collect()
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        for worker in &self.workers {
            let _ = worker.tx.send(WorkerMsg::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_cluster::{ExecutionOutcome, ImageBundle, JobRunner, JobSpec};
    use qrio_proto::{NodeCommand, NodeReport, Payload};

    #[derive(Debug)]
    struct NullRunner;

    impl JobRunner for NullRunner {
        fn run(
            &self,
            _spec: &JobSpec,
            _image: &ImageBundle,
            _backend: &qrio_backend::Backend,
        ) -> Result<ExecutionOutcome, String> {
            Err("no device".into())
        }
    }

    fn probe(node: &str, seq: u64) -> Vec<u8> {
        Envelope {
            seq,
            node_id: node.into(),
            virtual_ts: 0,
            payload: Payload::Command(NodeCommand::Probe),
        }
        .encode()
    }

    fn drive(transport: &mut dyn Transport) {
        for node in ["a", "b", "c"] {
            transport
                .register(NodeAgent::new(node, Box::new(NullRunner)))
                .unwrap();
        }
        for (seq, node) in ["a", "b", "c", "a"].iter().enumerate() {
            transport.send(probe(node, seq as u64 / 3)).unwrap();
        }
        let mut statuses = 0;
        while let Some(frame) = transport.recv(true).unwrap() {
            let (envelope, _) = Envelope::decode(&frame).unwrap();
            assert!(matches!(
                envelope.payload,
                Payload::Report(NodeReport::Status { .. })
            ));
            statuses += 1;
            if statuses == 4 {
                break;
            }
        }
        assert_eq!(statuses, 4);
        // Idle transports never block.
        assert_eq!(transport.recv(true).unwrap(), None);
    }

    #[test]
    fn in_proc_round_trips_probes() {
        drive(&mut InProcTransport::new());
    }

    #[test]
    fn threaded_round_trips_probes_at_various_widths() {
        for threads in [1, 2, 8] {
            drive(&mut ChannelTransport::new(threads));
        }
    }

    #[test]
    fn unknown_nodes_are_typed_errors_in_both_modes() {
        let mut in_proc = InProcTransport::new();
        assert!(matches!(
            in_proc.send(probe("ghost", 0)),
            Err(AgentError::UnknownNode { .. })
        ));
        let mut threaded = ChannelTransport::new(2);
        assert!(matches!(
            threaded.send(probe("ghost", 0)),
            Err(AgentError::UnknownNode { .. })
        ));
    }
}
