//! # qrio-agent
//!
//! Node agents for the QRIO control plane (reproduction of *Empowering the
//! Quantum Cloud User with QRIO*, IISWC 2024). A [`NodeAgent`] is one
//! device's worker: it holds a replica of the device calibration and the
//! fault-injection plan (both shipped in `Bind` commands), executes
//! self-contained `Run` work orders with a [`qrio_cluster::JobRunner`], and
//! answers every command with exactly one report.
//!
//! Agents never touch orchestrator state — all traffic is encoded
//! [`qrio_proto::Envelope`] frames crossing a [`Transport`]:
//!
//! | transport            | where agents run        | determinism                          |
//! |----------------------|-------------------------|--------------------------------------|
//! | [`InProcTransport`]  | the caller's thread     | fully deterministic in virtual time  |
//! | [`ChannelTransport`] | real `std::thread`s     | final reports byte-identical for any |
//! |                      | over `mpsc` channels    | worker count (agents are pure)       |
//!
//! ```
//! use qrio_agent::{InProcTransport, NodeAgent, Transport};
//! use qrio_cluster::{ExecutionOutcome, ImageBundle, JobRunner, JobSpec};
//! use qrio_proto::{Envelope, NodeCommand, Payload};
//!
//! #[derive(Debug)]
//! struct NullRunner;
//! impl JobRunner for NullRunner {
//!     fn run(
//!         &self,
//!         _spec: &JobSpec,
//!         _image: &ImageBundle,
//!         _backend: &qrio_backend::Backend,
//!     ) -> Result<ExecutionOutcome, String> {
//!         Err("not a real device".into())
//!     }
//! }
//!
//! let mut transport = InProcTransport::new();
//! transport.register(NodeAgent::new("dev-a", Box::new(NullRunner))).unwrap();
//! let probe = Envelope {
//!     seq: 0,
//!     node_id: "dev-a".into(),
//!     virtual_ts: 0,
//!     payload: Payload::Command(NodeCommand::Probe),
//! };
//! transport.send(probe.encode()).unwrap();
//! let reply = transport.recv(true).unwrap().expect("probe is answered");
//! assert!(Envelope::decode(&reply).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod error;
pub mod transport;

pub use agent::{fault_kind_from_wire, fault_kind_to_wire, fault_spec_to_wire, NodeAgent};
pub use error::AgentError;
pub use transport::{ChannelTransport, InProcTransport, Transport};
