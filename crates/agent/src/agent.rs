//! The per-device worker: owns one device's calibration replica and runner,
//! and turns `NodeCommand` envelopes into `NodeReport` envelopes.

use std::collections::BTreeSet;
use std::fmt;

use qrio_backend::{spec as backend_spec, Backend};
use qrio_cluster::{
    DeviceRequirements, FaultInjector, FaultKind, ImageBundle, JobRunner, JobSpec, Resources,
    StrategySpec,
};
use qrio_proto::{
    Envelope, FaultSpec, NodeCommand, NodeReport, Payload, RunPayload, RunVerdict, WireFaultKind,
};

use crate::error::AgentError;

/// Convert a cluster-side fault kind to its wire twin.
pub fn fault_kind_to_wire(kind: FaultKind) -> WireFaultKind {
    match kind {
        FaultKind::TransientExecution => WireFaultKind::Transient,
        FaultKind::CalibrationGlitch => WireFaultKind::Calibration,
        FaultKind::SlowJob => WireFaultKind::Slow,
        FaultKind::DeviceFlap => WireFaultKind::Flap,
    }
}

/// Convert a wire fault kind back to the cluster-side enum.
pub fn fault_kind_from_wire(kind: WireFaultKind) -> FaultKind {
    match kind {
        WireFaultKind::Transient => FaultKind::TransientExecution,
        WireFaultKind::Calibration => FaultKind::CalibrationGlitch,
        WireFaultKind::Slow => FaultKind::SlowJob,
        WireFaultKind::Flap => FaultKind::DeviceFlap,
    }
}

/// Convert the cluster's fault-injection plan to its wire form.
pub fn fault_spec_to_wire(injector: &FaultInjector) -> FaultSpec {
    FaultSpec {
        seed: injector.seed,
        transient_rate: injector.transient_rate,
        calibration_rate: injector.calibration_rate,
        slow_rate: injector.slow_rate,
        flap_rate: injector.flap_rate,
    }
}

fn fault_spec_from_wire(spec: &FaultSpec) -> FaultInjector {
    FaultInjector {
        seed: spec.seed,
        transient_rate: spec.transient_rate,
        calibration_rate: spec.calibration_rate,
        slow_rate: spec.slow_rate,
        flap_rate: spec.flap_rate,
    }
}

/// One device's worker process: holds a replica of the device calibration
/// (shipped as backend spec text in `Bind`/`Recalibrate` commands), a replica
/// of the fault-injection plan, and the job runner that executes circuits.
///
/// The agent is deliberately stateless about the *cluster*: it never sees
/// queues, bindings or breaker state. Everything a `Run` needs arrives in
/// the self-contained [`RunPayload`], and everything the orchestrator needs
/// back travels in the returned reports. Because the runner and the fault
/// decision are pure functions of their inputs, an agent replica computes
/// bit-identical results to an in-process call — which is what keeps the
/// benches byte-identical across transports.
///
/// Protocol invariant: **every command yields exactly one report** (`Run` →
/// `Phase`, `Bind`/`Recalibrate` → `Calibration`, everything else →
/// `Status`), so transports can account for in-flight round trips without
/// inspecting payloads.
pub struct NodeAgent {
    node_id: String,
    runner: Box<dyn JobRunner + Send>,
    backend: Option<Backend>,
    injector: Option<FaultInjector>,
    calibration_revision: u64,
    cordoned: bool,
    executed: u64,
    cancelled: BTreeSet<String>,
    report_seq: u64,
}

impl fmt::Debug for NodeAgent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeAgent")
            .field("node_id", &self.node_id)
            .field("bound", &self.backend.is_some())
            .field("calibration_revision", &self.calibration_revision)
            .field("cordoned", &self.cordoned)
            .field("executed", &self.executed)
            .field("report_seq", &self.report_seq)
            .finish()
    }
}

impl NodeAgent {
    /// A fresh, unbound agent for `node_id` executing circuits with `runner`.
    pub fn new(node_id: impl Into<String>, runner: Box<dyn JobRunner + Send>) -> Self {
        NodeAgent {
            node_id: node_id.into(),
            runner,
            backend: None,
            injector: None,
            calibration_revision: 0,
            cordoned: false,
            executed: 0,
            cancelled: BTreeSet::new(),
            report_seq: 0,
        }
    }

    /// The device this agent owns.
    pub fn node_id(&self) -> &str {
        &self.node_id
    }

    /// Current calibration revision (bumped on every successful
    /// `Bind`/`Recalibrate`).
    pub fn calibration_revision(&self) -> u64 {
        self.calibration_revision
    }

    /// Decode one command frame and answer with encoded report frames.
    ///
    /// # Errors
    ///
    /// Fails with a typed [`AgentError`] when the frame does not decode or is
    /// addressed to a different node.
    pub fn handle_frame(&mut self, frame: &[u8]) -> Result<Vec<Vec<u8>>, AgentError> {
        let (envelope, _) = Envelope::decode(frame)?;
        if envelope.node_id != self.node_id {
            return Err(AgentError::UnknownNode {
                node: envelope.node_id,
            });
        }
        Ok(self
            .handle(&envelope)
            .into_iter()
            .map(|reply| reply.encode())
            .collect())
    }

    /// Process one decoded envelope and produce the reply reports.
    ///
    /// Report envelopes carry this agent's own `seq` stream and echo the
    /// command's `virtual_ts`, so replies are deterministic functions of the
    /// command stream regardless of which thread the agent runs on.
    pub fn handle(&mut self, envelope: &Envelope) -> Vec<Envelope> {
        let command = match &envelope.payload {
            Payload::Command(command) => command,
            // Agents only consume commands; a misdirected report is dropped
            // after an advisory status reply so round-trip accounting holds.
            Payload::Report(_) => {
                let status = self.status_report();
                return vec![self.reply(envelope.virtual_ts, status)];
            }
        };
        let report = match command {
            NodeCommand::Bind {
                backend_spec,
                injector,
            } => {
                self.injector = injector.as_ref().map(fault_spec_from_wire);
                self.apply_calibration(backend_spec)
            }
            NodeCommand::Recalibrate { backend_spec } => self.apply_calibration(backend_spec),
            NodeCommand::Run { payload } => NodeReport::Phase {
                job: payload.job.clone(),
                attempt: payload.attempt,
                verdict: self.run(payload),
            },
            NodeCommand::Cancel { job, reason: _ } => {
                self.cancelled.insert(job.clone());
                self.status_report()
            }
            NodeCommand::Cordon => {
                self.cordoned = true;
                self.status_report()
            }
            NodeCommand::Uncordon => {
                self.cordoned = false;
                self.status_report()
            }
            NodeCommand::Probe => self.status_report(),
        };
        vec![self.reply(envelope.virtual_ts, report)]
    }

    fn apply_calibration(&mut self, spec_text: &str) -> NodeReport {
        if let Ok(backend) = backend_spec::from_spec(spec_text) {
            self.backend = Some(backend);
            self.calibration_revision += 1;
        } else {
            // An unparseable spec leaves the device unbound; subsequent runs
            // are rejected rather than executed against stale calibration.
            self.backend = None;
        }
        NodeReport::Calibration {
            revision: self.calibration_revision,
        }
    }

    /// Execute one attempt. Mirrors the order of the cluster substrate's
    /// direct execution path exactly: fault decision first (a pure function
    /// of `(job, node, attempt)` and the injector seed), then the runner.
    fn run(&mut self, payload: &RunPayload) -> RunVerdict {
        self.executed += 1;
        if self.cancelled.remove(&payload.job) {
            return RunVerdict::Rejected {
                reason: format!("job '{}' was cancelled before it started", payload.job),
            };
        }
        let Some(backend) = &self.backend else {
            return RunVerdict::Rejected {
                reason: format!("node '{}' has no bound calibration", self.node_id),
            };
        };
        if let Some(kind) = self
            .injector
            .and_then(|injector| injector.decide(&payload.job, &self.node_id, payload.attempt))
        {
            return RunVerdict::Faulted {
                kind: fault_kind_to_wire(kind),
            };
        }

        // Note: a cordoned agent still runs — cordoning gates *scheduling*
        // (the orchestrator's cluster substrate), not work already bound.

        let spec = JobSpec {
            name: payload.job.clone(),
            image: payload.image_name.clone(),
            qasm: payload.qasm.clone(),
            num_qubits: usize::try_from(payload.num_qubits).unwrap_or(usize::MAX),
            resources: Resources::new(0, 0),
            requirements: DeviceRequirements::none(),
            strategy: StrategySpec::new("fidelity"),
            priority: 0,
            shots: payload.shots,
            threads: usize::try_from(payload.threads).unwrap_or(usize::MAX),
            retry: None,
            deadline: None,
        };
        let mut image = ImageBundle::new(payload.image_name.clone());
        for (path, contents) in &payload.image_files {
            image.add_file(path.clone(), contents.clone());
        }
        match self.runner.run(&spec, &image, backend) {
            Ok(outcome) => RunVerdict::Succeeded {
                counts: outcome.counts,
                fidelity: outcome.fidelity,
                logs: outcome.logs,
            },
            Err(reason) => RunVerdict::Failed { reason },
        }
    }

    fn status_report(&self) -> NodeReport {
        NodeReport::Status {
            cordoned: self.cordoned,
            executed: self.executed,
            calibration_revision: self.calibration_revision,
        }
    }

    fn reply(&mut self, virtual_ts: u64, report: NodeReport) -> Envelope {
        let seq = self.report_seq;
        self.report_seq += 1;
        Envelope {
            seq,
            node_id: self.node_id.clone(),
            virtual_ts,
            payload: Payload::Report(report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_cluster::ExecutionOutcome;

    #[derive(Debug)]
    struct EchoRunner;

    impl JobRunner for EchoRunner {
        fn run(
            &self,
            spec: &JobSpec,
            image: &ImageBundle,
            backend: &Backend,
        ) -> Result<ExecutionOutcome, String> {
            Ok(ExecutionOutcome {
                counts: vec![("0".into(), spec.shots)],
                fidelity: None,
                logs: vec![format!("{} files on {}", image.len(), backend.name())],
            })
        }
    }

    fn command(node: &str, seq: u64, command: NodeCommand) -> Envelope {
        Envelope {
            seq,
            node_id: node.into(),
            virtual_ts: 5,
            payload: Payload::Command(command),
        }
    }

    fn bind_spec() -> String {
        let backend =
            qrio_backend::Backend::uniform("dev-α", qrio_backend::topology::line(3), 0.01, 0.02);
        backend_spec::to_spec(&backend)
    }

    #[test]
    fn unbound_runs_are_rejected_and_bind_enables_execution() {
        let mut agent = NodeAgent::new("dev-α", Box::new(EchoRunner));
        let run = NodeCommand::Run {
            payload: RunPayload {
                job: "j1".into(),
                attempt: 0,
                image_name: "img".into(),
                image_files: vec![],
                qasm: String::new(),
                num_qubits: 1,
                shots: 8,
                threads: 0,
            },
        };

        let replies = agent.handle(&command("dev-α", 0, run.clone()));
        assert_eq!(replies.len(), 1);
        match &replies[0].payload {
            Payload::Report(NodeReport::Phase { verdict, .. }) => {
                assert!(matches!(verdict, RunVerdict::Rejected { .. }));
            }
            other => panic!("unexpected reply: {other:?}"),
        }

        let replies = agent.handle(&command(
            "dev-α",
            1,
            NodeCommand::Bind {
                backend_spec: bind_spec(),
                injector: None,
            },
        ));
        assert!(matches!(
            replies[0].payload,
            Payload::Report(NodeReport::Calibration { revision: 1 })
        ));

        let replies = agent.handle(&command("dev-α", 2, run));
        match &replies[0].payload {
            Payload::Report(NodeReport::Phase { verdict, .. }) => {
                assert!(matches!(verdict, RunVerdict::Succeeded { .. }));
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        // Report seqs are dense per agent.
        assert_eq!(replies[0].seq, 2);
    }

    #[test]
    fn cancel_drops_the_next_run_and_frames_round_trip() {
        let mut agent = NodeAgent::new("dev-α", Box::new(EchoRunner));
        agent.handle(&command(
            "dev-α",
            0,
            NodeCommand::Bind {
                backend_spec: bind_spec(),
                injector: None,
            },
        ));
        agent.handle(&command(
            "dev-α",
            1,
            NodeCommand::Cancel {
                job: "j1".into(),
                reason: "user interrupt".into(),
            },
        ));
        let frame = command(
            "dev-α",
            2,
            NodeCommand::Run {
                payload: RunPayload {
                    job: "j1".into(),
                    attempt: 0,
                    image_name: "img".into(),
                    image_files: vec![],
                    qasm: String::new(),
                    num_qubits: 1,
                    shots: 8,
                    threads: 0,
                },
            },
        )
        .encode();
        let replies = agent.handle_frame(&frame).unwrap();
        let (reply, _) = Envelope::decode(&replies[0]).unwrap();
        match reply.payload {
            Payload::Report(NodeReport::Phase { verdict, .. }) => {
                assert!(matches!(verdict, RunVerdict::Rejected { .. }));
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    #[test]
    fn frames_for_other_nodes_are_a_typed_error() {
        let mut agent = NodeAgent::new("dev-α", Box::new(EchoRunner));
        let frame = command("dev-β", 0, NodeCommand::Probe).encode();
        assert!(matches!(
            agent.handle_frame(&frame),
            Err(AgentError::UnknownNode { .. })
        ));
    }
}
