//! The [`Backend`] type: a complete description of one quantum device.
//!
//! This is the Rust equivalent of the vendor-provided `backend.py` file the
//! paper requires on every cluster node (§3.1): coupling map, one- and
//! two-qubit error rates, readout errors and lengths, T1/T2 times and basis
//! gates.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::BackendError;
use crate::graph::CouplingMap;
use crate::properties::{QubitProperties, TwoQubitGateProperties};

/// The set of native gates a device executes directly.
///
/// The paper's fleet uses `{u1, u2, u3, cx}` (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasisGates(Vec<String>);

impl BasisGates {
    /// The IBM-style default basis used throughout the paper: `u1,u2,u3,cx`.
    pub fn ibm_default() -> Self {
        BasisGates(vec!["u1".into(), "u2".into(), "u3".into(), "cx".into()])
    }

    /// Create a basis from gate names.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        BasisGates(names.into_iter().map(Into::into).collect())
    }

    /// Whether `gate_name` is native on this device.
    pub fn contains(&self, gate_name: &str) -> bool {
        self.0.iter().any(|g| g == gate_name)
    }

    /// The gate names, in declaration order.
    pub fn names(&self) -> &[String] {
        &self.0
    }
}

impl Default for BasisGates {
    fn default() -> Self {
        BasisGates::ibm_default()
    }
}

impl fmt::Display for BasisGates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join(","))
    }
}

/// A full device description: connectivity plus calibration data.
///
/// # Examples
///
/// ```
/// use qrio_backend::{Backend, topology};
///
/// let backend = Backend::uniform("demo", topology::line(5), 0.01, 0.05);
/// assert_eq!(backend.num_qubits(), 5);
/// assert!(backend.avg_two_qubit_error() < 0.06);
/// assert!(backend.basis_gates().contains("cx"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Backend {
    name: String,
    coupling_map: CouplingMap,
    qubit_properties: Vec<QubitProperties>,
    two_qubit_gates: BTreeMap<(usize, usize), TwoQubitGateProperties>,
    basis_gates: BasisGates,
    /// Extra vendor-provided key/value metadata (the paper allows vendors to
    /// attach additional details such as pulse characteristics).
    metadata: BTreeMap<String, String>,
}

impl Backend {
    /// Build a backend from explicit parts.
    ///
    /// # Errors
    ///
    /// Returns an error if the property vector length does not match the
    /// coupling map, if a two-qubit entry references a non-edge, or if any
    /// property fails validation.
    pub fn new(
        name: impl Into<String>,
        coupling_map: CouplingMap,
        qubit_properties: Vec<QubitProperties>,
        two_qubit_gates: BTreeMap<(usize, usize), TwoQubitGateProperties>,
        basis_gates: BasisGates,
    ) -> Result<Self, BackendError> {
        let name = name.into();
        if qubit_properties.len() != coupling_map.num_qubits() {
            return Err(BackendError::Mismatch(format!(
                "backend '{name}' has {} qubit property entries for {} qubits",
                qubit_properties.len(),
                coupling_map.num_qubits()
            )));
        }
        for (i, props) in qubit_properties.iter().enumerate() {
            if !props.is_valid() {
                return Err(BackendError::InvalidCalibration(format!(
                    "backend '{name}' qubit {i} has invalid properties"
                )));
            }
        }
        for (&(a, b), props) in &two_qubit_gates {
            if !coupling_map.has_edge(a, b) {
                return Err(BackendError::Mismatch(format!(
                    "backend '{name}' declares a 2q gate on non-edge ({a},{b})"
                )));
            }
            if !props.is_valid() {
                return Err(BackendError::InvalidCalibration(format!(
                    "backend '{name}' edge ({a},{b}) has invalid gate properties"
                )));
            }
        }
        Ok(Backend {
            name,
            coupling_map,
            qubit_properties,
            two_qubit_gates,
            basis_gates,
            metadata: BTreeMap::new(),
        })
    }

    /// Build a backend where every qubit and every edge share the same error
    /// rates — handy for controlled experiments such as Fig. 9, where the
    /// paper equalises everything except topology. Readout is noise-free; use
    /// [`Backend::with_uniform_readout_error`] to add it.
    pub fn uniform(
        name: impl Into<String>,
        coupling_map: CouplingMap,
        single_qubit_error: f64,
        two_qubit_error: f64,
    ) -> Self {
        let n = coupling_map.num_qubits();
        let qubit_properties = vec![
            QubitProperties {
                single_qubit_error,
                readout_error: 0.0,
                ..QubitProperties::default()
            };
            n
        ];
        let mut two_qubit_gates = BTreeMap::new();
        for edge in coupling_map.edges() {
            two_qubit_gates.insert(
                edge,
                TwoQubitGateProperties {
                    error: two_qubit_error,
                    duration_ns: 300.0,
                },
            );
        }
        Backend {
            name: name.into(),
            coupling_map,
            qubit_properties,
            two_qubit_gates,
            basis_gates: BasisGates::ibm_default(),
            metadata: BTreeMap::new(),
        }
    }

    /// Set the same readout error on every qubit, returning the modified
    /// backend (builder style).
    pub fn with_uniform_readout_error(mut self, readout_error: f64) -> Self {
        for props in &mut self.qubit_properties {
            props.readout_error = readout_error;
        }
        self
    }

    /// The device name (used as the Kubernetes node name in QRIO).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.coupling_map.num_qubits()
    }

    /// The device's coupling map.
    pub fn coupling_map(&self) -> &CouplingMap {
        &self.coupling_map
    }

    /// The device's native gate set.
    pub fn basis_gates(&self) -> &BasisGates {
        &self.basis_gates
    }

    /// Properties of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn qubit(&self, q: usize) -> &QubitProperties {
        &self.qubit_properties[q]
    }

    /// All per-qubit properties.
    pub fn qubits(&self) -> &[QubitProperties] {
        &self.qubit_properties
    }

    /// Two-qubit gate properties on edge `(a, b)` (order-insensitive), if the
    /// edge exists.
    pub fn two_qubit_gate(&self, a: usize, b: usize) -> Option<&TwoQubitGateProperties> {
        let key = (a.min(b), a.max(b));
        self.two_qubit_gates.get(&key)
    }

    /// Two-qubit error on edge `(a, b)`, falling back to the device average
    /// when the pair is uncalibrated, and to 1.0 when the pair is not coupled.
    pub fn two_qubit_error_or_default(&self, a: usize, b: usize) -> f64 {
        if !self.coupling_map.has_edge(a, b) {
            return 1.0;
        }
        self.two_qubit_gate(a, b)
            .map_or_else(|| self.avg_two_qubit_error(), |g| g.error)
    }

    /// All calibrated two-qubit gates.
    pub fn two_qubit_gates(&self) -> &BTreeMap<(usize, usize), TwoQubitGateProperties> {
        &self.two_qubit_gates
    }

    /// Vendor metadata attached to the backend.
    pub fn metadata(&self) -> &BTreeMap<String, String> {
        &self.metadata
    }

    /// Attach a vendor metadata entry.
    pub fn set_metadata(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.metadata.insert(key.into(), value.into());
    }

    // --- Aggregate statistics (the node labels of §3.1) ---------------------------------

    /// Average two-qubit gate error over all calibrated edges (0 if none).
    pub fn avg_two_qubit_error(&self) -> f64 {
        if self.two_qubit_gates.is_empty() {
            return 0.0;
        }
        self.two_qubit_gates.values().map(|g| g.error).sum::<f64>()
            / self.two_qubit_gates.len() as f64
    }

    /// Average single-qubit gate error over all qubits.
    pub fn avg_single_qubit_error(&self) -> f64 {
        if self.qubit_properties.is_empty() {
            return 0.0;
        }
        self.qubit_properties
            .iter()
            .map(|q| q.single_qubit_error)
            .sum::<f64>()
            / self.qubit_properties.len() as f64
    }

    /// Average readout error over all qubits.
    pub fn avg_readout_error(&self) -> f64 {
        if self.qubit_properties.is_empty() {
            return 0.0;
        }
        self.qubit_properties
            .iter()
            .map(|q| q.readout_error)
            .sum::<f64>()
            / self.qubit_properties.len() as f64
    }

    /// Average T1 over all qubits (µs).
    pub fn avg_t1_us(&self) -> f64 {
        if self.qubit_properties.is_empty() {
            return 0.0;
        }
        self.qubit_properties.iter().map(|q| q.t1_us).sum::<f64>()
            / self.qubit_properties.len() as f64
    }

    /// Average T2 over all qubits (µs).
    pub fn avg_t2_us(&self) -> f64 {
        if self.qubit_properties.is_empty() {
            return 0.0;
        }
        self.qubit_properties.iter().map(|q| q.t2_us).sum::<f64>()
            / self.qubit_properties.len() as f64
    }

    /// Edge-connectivity ratio: edges present divided by edges in the complete
    /// graph (the "edge connects probability" knob of Table 2).
    pub fn edge_connectivity(&self) -> f64 {
        let n = self.num_qubits();
        if n < 2 {
            return 0.0;
        }
        let complete = (n * (n - 1)) / 2;
        self.coupling_map.num_edges() as f64 / complete as f64
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Backend '{}': {} qubits, {} edges, avg 2q err {:.4}, avg readout err {:.4}",
            self.name,
            self.num_qubits(),
            self.coupling_map.num_edges(),
            self.avg_two_qubit_error(),
            self.avg_readout_error()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn simple_backend() -> Backend {
        Backend::uniform("test", topology::line(4), 0.01, 0.05)
    }

    #[test]
    fn uniform_backend_statistics() {
        let b = simple_backend();
        assert_eq!(b.num_qubits(), 4);
        assert!((b.avg_two_qubit_error() - 0.05).abs() < 1e-12);
        assert!((b.avg_single_qubit_error() - 0.01).abs() < 1e-12);
        assert!(b.avg_t1_us() > 0.0);
        assert!(b.avg_t2_us() > 0.0);
    }

    #[test]
    fn two_qubit_lookup_is_order_insensitive() {
        let b = simple_backend();
        assert!(b.two_qubit_gate(1, 0).is_some());
        assert!(b.two_qubit_gate(0, 3).is_none());
        assert!((b.two_qubit_error_or_default(1, 0) - 0.05).abs() < 1e-12);
        assert_eq!(b.two_qubit_error_or_default(0, 3), 1.0);
    }

    #[test]
    fn new_validates_lengths_and_edges() {
        let map = topology::line(3);
        let props = vec![QubitProperties::default(); 2];
        assert!(Backend::new(
            "bad",
            map.clone(),
            props,
            BTreeMap::new(),
            BasisGates::default()
        )
        .is_err());

        let props = vec![QubitProperties::default(); 3];
        let mut gates = BTreeMap::new();
        gates.insert((0, 2), TwoQubitGateProperties::default());
        assert!(Backend::new(
            "bad",
            map.clone(),
            props.clone(),
            gates,
            BasisGates::default()
        )
        .is_err());

        let mut gates = BTreeMap::new();
        gates.insert(
            (0, 1),
            TwoQubitGateProperties {
                error: 2.0,
                duration_ns: 1.0,
            },
        );
        assert!(Backend::new(
            "bad",
            map.clone(),
            props.clone(),
            gates,
            BasisGates::default()
        )
        .is_err());

        let mut bad_props = props;
        bad_props[0].readout_error = 5.0;
        assert!(Backend::new(
            "bad",
            map,
            bad_props,
            BTreeMap::new(),
            BasisGates::default()
        )
        .is_err());
    }

    #[test]
    fn basis_gates_default_matches_table2() {
        let basis = BasisGates::ibm_default();
        for g in ["u1", "u2", "u3", "cx"] {
            assert!(basis.contains(g));
        }
        assert!(!basis.contains("h"));
        assert_eq!(basis.to_string(), "u1,u2,u3,cx");
    }

    #[test]
    fn edge_connectivity_ratio() {
        let full = Backend::uniform("full", topology::fully_connected(6), 0.0, 0.0);
        assert!((full.edge_connectivity() - 1.0).abs() < 1e-12);
        let line = simple_backend();
        assert!(line.edge_connectivity() < 1.0);
        let single = Backend::uniform("one", topology::line(1), 0.0, 0.0);
        assert_eq!(single.edge_connectivity(), 0.0);
    }

    #[test]
    fn metadata_round_trip() {
        let mut b = simple_backend();
        b.set_metadata("vendor", "umich");
        assert_eq!(
            b.metadata().get("vendor").map(String::as_str),
            Some("umich")
        );
    }

    #[test]
    fn display_contains_name() {
        assert!(simple_backend().to_string().contains("test"));
    }
}
