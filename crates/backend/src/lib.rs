//! # qrio-backend
//!
//! Quantum device modelling for the QRIO quantum-cloud orchestrator
//! (reproduction of *Empowering the Quantum Cloud User with QRIO*, IISWC 2024).
//!
//! A QRIO cluster node is a quantum device plus classical capacity. This crate
//! models that device exactly as the paper requires vendors to describe it
//! (§3.1): a coupling map, per-qubit T1/T2/readout calibration, per-edge
//! two-qubit gate errors and a basis gate set.
//!
//! * [`CouplingMap`] — the qubit-connectivity graph with BFS distances and
//!   path queries used by the transpiler and Mapomatic-style scoring.
//! * [`topology`] — standard shapes (line, ring, grid, heavy-square, tree,
//!   fully-connected) and the bounded-degree random generator behind the
//!   evaluation fleet.
//! * [`Backend`], [`QubitProperties`], [`TwoQubitGateProperties`],
//!   [`BasisGates`] — the device description itself.
//! * [`spec`] — the plain-text `backend.spec` vendor file format (the Rust
//!   equivalent of the paper's `backend.py`).
//! * [`fleet`] — the Table-2 fleet generator producing the 100 simulated
//!   devices used throughout the evaluation.
//! * [`NodeLabels`] — the summary labels QRIO attaches to cluster nodes for
//!   filter-stage scheduling.
//!
//! # Examples
//!
//! ```
//! use qrio_backend::{fleet, NodeLabels};
//!
//! # fn main() -> Result<(), qrio_backend::BackendError> {
//! let devices = fleet::paper_fleet()?;
//! assert_eq!(devices.len(), 100);
//! let labels = NodeLabels::from_backend(&devices[0], 4000, 8192);
//! assert!(labels.num_qubits >= 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod error;
pub mod fleet;
mod graph;
mod labels;
mod properties;
pub mod spec;
pub mod topology;

pub use backend::{Backend, BasisGates};
pub use error::BackendError;
pub use fleet::{generate_fleet, paper_fleet, FleetConfig};
pub use graph::CouplingMap;
pub use labels::NodeLabels;
pub use properties::{QubitProperties, TwoQubitGateProperties};
pub use topology::DefaultTopology;
