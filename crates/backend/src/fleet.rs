//! The simulated device fleet of the paper's evaluation (Table 2).
//!
//! The paper evaluates QRIO against 100 simulated quantum computers produced
//! by crossing 10 device sizes with 10 edge-connectivity values, drawing gate
//! and readout errors at random from fixed ranges. [`FleetConfig`] captures
//! those controllable parameters with the paper's values as defaults, and
//! [`generate_fleet`] reproduces the fleet deterministically from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::backend::{Backend, BasisGates};
use crate::error::BackendError;
use crate::properties::{QubitProperties, TwoQubitGateProperties};
use crate::topology;

/// Controllable backend parameters (Table 2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Device sizes (number of qubits) to generate.
    pub qubit_counts: Vec<usize>,
    /// Edge-connectivity probabilities; crossed with `qubit_counts`.
    pub edge_probabilities: Vec<f64>,
    /// Range of two-qubit gate error rates, sampled uniformly.
    pub two_qubit_error_range: (f64, f64),
    /// Range of single-qubit gate error rates, sampled uniformly.
    pub single_qubit_error_range: (f64, f64),
    /// Discrete set of readout error rates to choose from.
    pub readout_errors: Vec<f64>,
    /// Discrete set of T1 values (µs) to choose from.
    pub t1_values_us: Vec<f64>,
    /// Discrete set of T2 values (µs) to choose from.
    pub t2_values_us: Vec<f64>,
    /// Readout length (ns) shared by every qubit.
    pub readout_length_ns: f64,
    /// Maximum vertex degree of the generated coupling maps.
    pub max_degree: usize,
    /// Native gate set of every generated device.
    pub basis_gates: BasisGates,
    /// Classical CPU capacity (millicores) attached to each node.
    pub cpu_millis: u64,
    /// Classical memory capacity (MiB) attached to each node.
    pub memory_mib: u64,
}

impl FleetConfig {
    /// The exact Table 2 configuration used in the paper's evaluation.
    ///
    /// Note: the table header lists device sizes starting at 5 while the setup
    /// text (§4.1) says 15; we follow the table and use 5, which also gives
    /// small devices for the filtering experiment.
    pub fn paper_table2() -> Self {
        FleetConfig {
            qubit_counts: vec![5, 20, 27, 35, 50, 60, 78, 85, 95, 100],
            edge_probabilities: vec![0.1, 0.15, 0.3, 0.45, 0.54, 0.67, 0.7, 0.78, 0.89, 0.98],
            two_qubit_error_range: (0.01, 0.7),
            single_qubit_error_range: (0.01, 0.7),
            readout_errors: vec![0.05, 0.15],
            t1_values_us: vec![500e3, 100e3],
            t2_values_us: vec![500e3, 100e3],
            readout_length_ns: 30.0,
            max_degree: 4,
            basis_gates: BasisGates::ibm_default(),
            cpu_millis: 4000,
            memory_mib: 8192,
        }
    }

    /// A reduced configuration (every third size/connectivity) for fast tests.
    pub fn small() -> Self {
        let mut cfg = FleetConfig::paper_table2();
        cfg.qubit_counts = vec![5, 10, 16];
        cfg.edge_probabilities = vec![0.2, 0.6, 0.9];
        cfg
    }

    /// Number of devices this configuration will generate.
    pub fn fleet_size(&self) -> usize {
        self.qubit_counts.len() * self.edge_probabilities.len()
    }

    /// Validate ranges and counts.
    ///
    /// # Errors
    ///
    /// Returns an error when a range is inverted, a probability is outside
    /// `[0, 1]`, or any list is empty.
    pub fn validate(&self) -> Result<(), BackendError> {
        if self.qubit_counts.is_empty() || self.edge_probabilities.is_empty() {
            return Err(BackendError::InvalidParameter(
                "fleet config needs at least one size and one edge probability".into(),
            ));
        }
        if self.qubit_counts.contains(&0) {
            return Err(BackendError::InvalidParameter(
                "device sizes must be >= 1".into(),
            ));
        }
        let (lo2, hi2) = self.two_qubit_error_range;
        let (lo1, hi1) = self.single_qubit_error_range;
        if !(0.0..=1.0).contains(&lo2) || !(0.0..=1.0).contains(&hi2) || lo2 > hi2 {
            return Err(BackendError::InvalidParameter(
                "invalid 2q error range".into(),
            ));
        }
        if !(0.0..=1.0).contains(&lo1) || !(0.0..=1.0).contains(&hi1) || lo1 > hi1 {
            return Err(BackendError::InvalidParameter(
                "invalid 1q error range".into(),
            ));
        }
        if self
            .edge_probabilities
            .iter()
            .any(|p| !(0.0..=1.0).contains(p))
        {
            return Err(BackendError::InvalidParameter(
                "edge probabilities must be in [0,1]".into(),
            ));
        }
        if self.readout_errors.is_empty()
            || self.t1_values_us.is_empty()
            || self.t2_values_us.is_empty()
        {
            return Err(BackendError::InvalidParameter(
                "readout/T1/T2 value lists must be non-empty".into(),
            ));
        }
        Ok(())
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::paper_table2()
    }
}

/// Generate a single random backend with `num_qubits` qubits and the given
/// edge-connectivity probability, drawing calibration data per `config`.
pub fn generate_backend(
    name: impl Into<String>,
    num_qubits: usize,
    edge_probability: f64,
    config: &FleetConfig,
    rng: &mut StdRng,
) -> Result<Backend, BackendError> {
    if num_qubits == 0 {
        return Err(BackendError::InvalidParameter(
            "device needs at least one qubit".into(),
        ));
    }
    let coupling = topology::random_connected(num_qubits, edge_probability, config.max_degree, rng);
    let mut qubit_props = Vec::with_capacity(num_qubits);
    let (lo1, hi1) = config.single_qubit_error_range;
    for _ in 0..num_qubits {
        let t1 = config.t1_values_us[rng.gen_range(0..config.t1_values_us.len())];
        let t2 = config.t2_values_us[rng.gen_range(0..config.t2_values_us.len())];
        let readout_error = config.readout_errors[rng.gen_range(0..config.readout_errors.len())];
        let single_qubit_error = if hi1 > lo1 {
            rng.gen_range(lo1..hi1)
        } else {
            lo1
        };
        qubit_props.push(QubitProperties {
            t1_us: t1,
            t2_us: t2,
            readout_error,
            readout_length_ns: config.readout_length_ns,
            single_qubit_error,
        });
    }
    let (lo2, hi2) = config.two_qubit_error_range;
    let mut gates = std::collections::BTreeMap::new();
    for edge in coupling.edges() {
        let error = if hi2 > lo2 {
            rng.gen_range(lo2..hi2)
        } else {
            lo2
        };
        gates.insert(
            edge,
            TwoQubitGateProperties {
                error,
                duration_ns: 300.0,
            },
        );
    }
    Backend::new(
        name,
        coupling,
        qubit_props,
        gates,
        config.basis_gates.clone(),
    )
}

/// Generate the full fleet described by `config`, deterministically from
/// `seed`. Devices are named `qrio-dev-<qubits>q-p<edge-probability>`.
///
/// # Errors
///
/// Returns an error if the configuration fails validation.
pub fn generate_fleet(config: &FleetConfig, seed: u64) -> Result<Vec<Backend>, BackendError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fleet = Vec::with_capacity(config.fleet_size());
    for &n in &config.qubit_counts {
        for &p in &config.edge_probabilities {
            let name = format!("qrio-dev-{n}q-p{p:.2}");
            fleet.push(generate_backend(name, n, p, config, &mut rng)?);
        }
    }
    Ok(fleet)
}

/// Generate the paper's 100-device fleet with the canonical seed used across
/// the experiments in this repository.
///
/// # Errors
///
/// Propagates generation errors (none for the built-in configuration).
pub fn paper_fleet() -> Result<Vec<Backend>, BackendError> {
    generate_fleet(&FleetConfig::paper_table2(), PAPER_FLEET_SEED)
}

/// Seed used for the canonical 100-device fleet.
pub const PAPER_FLEET_SEED: u64 = 0x51_D0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fleet_has_100_devices() {
        let fleet = paper_fleet().unwrap();
        assert_eq!(fleet.len(), 100);
        // Every device is connected, has the IBM basis and valid error ranges.
        for backend in &fleet {
            assert!(backend.coupling_map().is_connected());
            assert!(backend.basis_gates().contains("cx"));
            assert!(backend.avg_two_qubit_error() >= 0.01);
            assert!(backend.avg_two_qubit_error() <= 0.7);
            assert!(backend.coupling_map().max_degree() <= 4);
        }
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = generate_fleet(&FleetConfig::small(), 7).unwrap();
        let b = generate_fleet(&FleetConfig::small(), 7).unwrap();
        assert_eq!(a, b);
        let c = generate_fleet(&FleetConfig::small(), 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn sizes_cross_probabilities() {
        let cfg = FleetConfig::small();
        let fleet = generate_fleet(&cfg, 1).unwrap();
        assert_eq!(fleet.len(), cfg.fleet_size());
        let names: Vec<&str> = fleet.iter().map(Backend::name).collect();
        assert!(names.contains(&"qrio-dev-5q-p0.20"));
        assert!(names.contains(&"qrio-dev-16q-p0.90"));
    }

    #[test]
    fn connectivity_increases_with_probability() {
        let cfg = FleetConfig::paper_table2();
        let mut rng = StdRng::seed_from_u64(3);
        let sparse = generate_backend("s", 50, 0.1, &cfg, &mut rng).unwrap();
        let dense = generate_backend("d", 50, 0.98, &cfg, &mut rng).unwrap();
        assert!(dense.coupling_map().num_edges() > sparse.coupling_map().num_edges());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = FleetConfig::paper_table2();
        cfg.qubit_counts.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = FleetConfig::paper_table2();
        cfg.two_qubit_error_range = (0.9, 0.1);
        assert!(cfg.validate().is_err());

        let mut cfg = FleetConfig::paper_table2();
        cfg.edge_probabilities = vec![1.5];
        assert!(cfg.validate().is_err());

        let mut cfg = FleetConfig::paper_table2();
        cfg.qubit_counts = vec![0];
        assert!(cfg.validate().is_err());

        let mut cfg = FleetConfig::paper_table2();
        cfg.readout_errors.clear();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn table2_matches_paper_values() {
        let cfg = FleetConfig::paper_table2();
        assert_eq!(cfg.fleet_size(), 100);
        assert_eq!(cfg.qubit_counts.len(), 10);
        assert_eq!(cfg.edge_probabilities.len(), 10);
        assert_eq!(cfg.two_qubit_error_range, (0.01, 0.7));
        assert_eq!(cfg.readout_errors, vec![0.05, 0.15]);
        assert_eq!(cfg.t1_values_us, vec![500e3, 100e3]);
        assert_eq!(cfg.readout_length_ns, 30.0);
    }
}
