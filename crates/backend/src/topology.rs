//! Standard and random device topologies.
//!
//! The paper's evaluation uses a set of *default topologies* for the
//! topology-request experiment (Fig. 6: grid, line, ring, heavy-square and
//! fully-connected) plus tree/ring/line 10-qubit devices for Fig. 9, and a
//! random coupling-map generator with bounded degree for the 100-device fleet
//! (Table 2). All of those constructions live here.

use rand::Rng;

use crate::graph::CouplingMap;

/// The default topology shapes offered to users by the QRIO visualizer
/// (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefaultTopology {
    /// 2D grid of 4 qubits (2×2).
    Grid4,
    /// Line of 6 qubits.
    Line6,
    /// Ring of 7 qubits.
    Ring7,
    /// Heavy-square lattice fragment of 6 qubits.
    HeavySquare6,
    /// Fully-connected graph of 6 qubits.
    FullyConnected6,
}

impl DefaultTopology {
    /// All default topologies, in the order the paper reports them (Fig. 6).
    pub const ALL: [DefaultTopology; 5] = [
        DefaultTopology::Grid4,
        DefaultTopology::Line6,
        DefaultTopology::Ring7,
        DefaultTopology::HeavySquare6,
        DefaultTopology::FullyConnected6,
    ];

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            DefaultTopology::Grid4 => "grid",
            DefaultTopology::Line6 => "line",
            DefaultTopology::Ring7 => "ring",
            DefaultTopology::HeavySquare6 => "heavy_square",
            DefaultTopology::FullyConnected6 => "fully_connected",
        }
    }

    /// Number of qubits in the requested topology.
    pub fn num_qubits(&self) -> usize {
        match self {
            DefaultTopology::Grid4 => 4,
            DefaultTopology::Line6
            | DefaultTopology::HeavySquare6
            | DefaultTopology::FullyConnected6 => 6,
            DefaultTopology::Ring7 => 7,
        }
    }

    /// The coupling map of the requested topology.
    pub fn coupling_map(&self) -> CouplingMap {
        match self {
            DefaultTopology::Grid4 => grid(2, 2),
            DefaultTopology::Line6 => line(6),
            DefaultTopology::Ring7 => ring(7),
            DefaultTopology::HeavySquare6 => heavy_square(6),
            DefaultTopology::FullyConnected6 => fully_connected(6),
        }
    }

    /// The interaction edge list of the requested topology (used to build the
    /// topology circuit the meta server scores).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.coupling_map().edges()
    }
}

/// A line (path graph) of `n` qubits.
pub fn line(n: usize) -> CouplingMap {
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    CouplingMap::from_edges(n, &edges)
}

/// A ring (cycle graph) of `n` qubits. For `n < 3` this degenerates to a line.
pub fn ring(n: usize) -> CouplingMap {
    let mut map = line(n);
    if n >= 3 {
        map.add_edge(n - 1, 0);
    }
    map
}

/// A `rows × cols` 2D grid.
pub fn grid(rows: usize, cols: usize) -> CouplingMap {
    let n = rows * cols;
    let mut map = CouplingMap::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            if c + 1 < cols {
                map.add_edge(idx, idx + 1);
            }
            if r + 1 < rows {
                map.add_edge(idx, idx + cols);
            }
        }
    }
    map
}

/// A fully-connected graph over `n` qubits.
pub fn fully_connected(n: usize) -> CouplingMap {
    let mut map = CouplingMap::new(n);
    for a in 0..n {
        for b in a + 1..n {
            map.add_edge(a, b);
        }
    }
    map
}

/// A star graph: qubit 0 connected to every other qubit.
pub fn star(n: usize) -> CouplingMap {
    let mut map = CouplingMap::new(n);
    for q in 1..n {
        map.add_edge(0, q);
    }
    map
}

/// A balanced binary tree over `n` qubits (qubit `i` is connected to its
/// parent `(i - 1) / 2`).
pub fn binary_tree(n: usize) -> CouplingMap {
    let mut map = CouplingMap::new(n);
    for q in 1..n {
        map.add_edge(q, (q - 1) / 2);
    }
    map
}

/// A heavy-square lattice fragment over `n` qubits: a ladder of plaquettes
/// with a bridging qubit on every rung, approximating IBM's heavy-square
/// connectivity at small sizes.
pub fn heavy_square(n: usize) -> CouplingMap {
    // Build a backbone line and attach every third qubit as a "heavy" bridge
    // hanging off the backbone, giving degree-3 vertices like the heavy-square
    // lattice while staying well-defined for any n.
    let mut map = CouplingMap::new(n);
    if n == 0 {
        return map;
    }
    let mut backbone = Vec::new();
    let mut bridges = Vec::new();
    for q in 0..n {
        if q % 3 == 2 {
            bridges.push(q);
        } else {
            backbone.push(q);
        }
    }
    for w in backbone.windows(2) {
        map.add_edge(w[0], w[1]);
    }
    for (i, &b) in bridges.iter().enumerate() {
        // Attach the bridge across two backbone qubits to form a plaquette edge.
        let left = backbone.get(i * 2).copied().unwrap_or(backbone[0]);
        let right = backbone
            .get(i * 2 + 2)
            .copied()
            .unwrap_or(*backbone.last().unwrap());
        map.add_edge(b, left);
        if right != left {
            map.add_edge(b, right);
        }
    }
    map
}

/// IBM-style heavy-hex lattice fragment over approximately `n` qubits,
/// produced by thinning a grid: useful as an additional realistic topology.
pub fn heavy_hex(n: usize) -> CouplingMap {
    // Approximate: take a ring backbone and add long-range chords every 4 qubits.
    let mut map = ring(n);
    let mut q = 0;
    while q + 4 < n {
        map.add_edge(q, q + 4);
        q += 4;
    }
    map
}

/// Generate a random connected coupling map with `n` qubits where each
/// potential edge is included with probability `edge_probability`, subject to
/// a maximum vertex degree of `max_degree` (the paper limits devices to at
/// most 4 connections per qubit).
///
/// A spanning line is always added first so that the device is connected, as
/// the paper notes that "no qubit is isolated" in the generated fleet.
pub fn random_connected<R: Rng + ?Sized>(
    n: usize,
    edge_probability: f64,
    max_degree: usize,
    rng: &mut R,
) -> CouplingMap {
    let mut map = line(n);
    if n < 3 {
        return map;
    }
    let p = edge_probability.clamp(0.0, 1.0);
    for a in 0..n {
        for b in a + 1..n {
            if map.has_edge(a, b) {
                continue;
            }
            if map.degree(a) >= max_degree || map.degree(b) >= max_degree {
                continue;
            }
            if rng.gen_bool(p) {
                map.add_edge(a, b);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_ring_grid_shapes() {
        assert_eq!(line(6).num_edges(), 5);
        assert_eq!(ring(7).num_edges(), 7);
        assert_eq!(grid(2, 2).num_edges(), 4);
        assert_eq!(grid(3, 3).num_edges(), 12);
        assert!(ring(7).has_cycle());
        assert!(!line(6).has_cycle());
    }

    #[test]
    fn fully_connected_and_star() {
        assert_eq!(fully_connected(6).num_edges(), 15);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(star(5).degree(0), 4);
    }

    #[test]
    fn binary_tree_is_acyclic_and_connected() {
        let t = binary_tree(10);
        assert!(t.is_connected());
        assert!(!t.has_cycle());
        assert_eq!(t.num_edges(), 9);
    }

    #[test]
    fn heavy_square_is_connected() {
        let h = heavy_square(6);
        assert!(h.is_connected());
        assert!(h.num_edges() >= 5);
        assert!(heavy_square(0).num_edges() == 0);
    }

    #[test]
    fn heavy_hex_has_chords() {
        let h = heavy_hex(12);
        assert!(h.is_connected());
        assert!(h.num_edges() > ring(12).num_edges());
    }

    #[test]
    fn default_topologies_report_paper_sizes() {
        assert_eq!(DefaultTopology::Grid4.num_qubits(), 4);
        assert_eq!(DefaultTopology::Line6.num_qubits(), 6);
        assert_eq!(DefaultTopology::Ring7.num_qubits(), 7);
        assert_eq!(DefaultTopology::HeavySquare6.num_qubits(), 6);
        assert_eq!(DefaultTopology::FullyConnected6.num_qubits(), 6);
        for topo in DefaultTopology::ALL {
            let map = topo.coupling_map();
            assert_eq!(map.num_qubits(), topo.num_qubits());
            assert!(map.is_connected(), "{} should be connected", topo.name());
            assert_eq!(topo.edges(), map.edges());
        }
    }

    #[test]
    fn random_connected_respects_constraints() {
        let mut rng = StdRng::seed_from_u64(11);
        for &p in &[0.1, 0.5, 0.98] {
            let map = random_connected(20, p, 4, &mut rng);
            assert!(map.is_connected());
            assert!(map.max_degree() <= 4);
        }
        // Higher probability should give (weakly) more edges on average.
        let mut rng = StdRng::seed_from_u64(5);
        let sparse = random_connected(30, 0.1, 4, &mut rng);
        let dense = random_connected(30, 0.98, 4, &mut rng);
        assert!(dense.num_edges() >= sparse.num_edges());
    }

    #[test]
    fn random_connected_is_deterministic_per_seed() {
        let a = random_connected(15, 0.3, 4, &mut StdRng::seed_from_u64(9));
        let b = random_connected(15, 0.3, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
