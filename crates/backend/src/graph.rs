//! Coupling-map graph: the qubit-connectivity graph of a quantum device.

use std::collections::VecDeque;
use std::fmt;

/// An undirected graph over `num_qubits` vertices describing which physical
/// qubit pairs support two-qubit gates.
///
/// # Examples
///
/// ```
/// use qrio_backend::CouplingMap;
///
/// let line = CouplingMap::from_edges(3, &[(0, 1), (1, 2)]);
/// assert!(line.has_edge(1, 0));
/// assert!(!line.has_edge(0, 2));
/// assert_eq!(line.distance(0, 2), Some(2));
/// assert!(line.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingMap {
    num_qubits: usize,
    /// Adjacency lists, each sorted ascending and free of duplicates.
    adjacency: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// An edgeless coupling map over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        CouplingMap {
            num_qubits,
            adjacency: vec![Vec::new(); num_qubits],
        }
    }

    /// Build a coupling map from an undirected edge list. Out-of-range edges
    /// and self loops are ignored; duplicates are collapsed.
    pub fn from_edges(num_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut map = CouplingMap::new(num_qubits);
        for &(a, b) in edges {
            map.add_edge(a, b);
        }
        map
    }

    /// Number of qubits (vertices).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Add an undirected edge between `a` and `b`. Self-loops and
    /// out-of-range endpoints are ignored; returns whether an edge was added.
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        if a == b || a >= self.num_qubits || b >= self.num_qubits {
            return false;
        }
        if self.adjacency[a].contains(&b) {
            return false;
        }
        self.adjacency[a].push(b);
        self.adjacency[b].push(a);
        self.adjacency[a].sort_unstable();
        self.adjacency[b].sort_unstable();
        true
    }

    /// Whether qubits `a` and `b` are directly coupled.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a < self.num_qubits && self.adjacency[a].contains(&b)
    }

    /// Neighbors of `q`, sorted ascending.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Degree of vertex `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.adjacency[q].len()
    }

    /// All undirected edges, each reported once as `(min, max)` and sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::with_capacity(self.num_edges());
        for (a, neighbors) in self.adjacency.iter().enumerate() {
            for &b in neighbors {
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        edges
    }

    /// Maximum degree across all vertices.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// BFS shortest-path distance between `a` and `b`, or `None` if
    /// disconnected or out of range.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        if a >= self.num_qubits || b >= self.num_qubits {
            return None;
        }
        if a == b {
            return Some(0);
        }
        let mut visited = vec![false; self.num_qubits];
        let mut queue = VecDeque::new();
        visited[a] = true;
        queue.push_back((a, 0usize));
        while let Some((node, dist)) = queue.pop_front() {
            for &next in &self.adjacency[node] {
                if next == b {
                    return Some(dist + 1);
                }
                if !visited[next] {
                    visited[next] = true;
                    queue.push_back((next, dist + 1));
                }
            }
        }
        None
    }

    /// All-pairs shortest-path distance matrix. Unreachable pairs are given
    /// `usize::MAX`.
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        let n = self.num_qubits;
        let mut matrix = vec![vec![usize::MAX; n]; n];
        #[allow(clippy::needless_range_loop)]
        for start in 0..n {
            matrix[start][start] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(start);
            while let Some(node) = queue.pop_front() {
                let d = matrix[start][node];
                for &next in &self.adjacency[node] {
                    if matrix[start][next] == usize::MAX {
                        matrix[start][next] = d + 1;
                        queue.push_back(next);
                    }
                }
            }
        }
        matrix
    }

    /// A shortest path (inclusive of endpoints) between `a` and `b`, if any.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a >= self.num_qubits || b >= self.num_qubits {
            return None;
        }
        if a == b {
            return Some(vec![a]);
        }
        let mut parent: Vec<Option<usize>> = vec![None; self.num_qubits];
        let mut visited = vec![false; self.num_qubits];
        let mut queue = VecDeque::new();
        visited[a] = true;
        queue.push_back(a);
        while let Some(node) = queue.pop_front() {
            for &next in &self.adjacency[node] {
                if !visited[next] {
                    visited[next] = true;
                    parent[next] = Some(node);
                    if next == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while let Some(p) = parent[cur] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Whether every qubit can reach every other qubit.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        let mut visited = vec![false; self.num_qubits];
        let mut queue = VecDeque::new();
        visited[0] = true;
        queue.push_back(0);
        let mut count = 1;
        while let Some(node) = queue.pop_front() {
            for &next in &self.adjacency[node] {
                if !visited[next] {
                    visited[next] = true;
                    count += 1;
                    queue.push_back(next);
                }
            }
        }
        count == self.num_qubits
    }

    /// Whether the graph contains a simple cycle.
    pub fn has_cycle(&self) -> bool {
        // An undirected graph has a cycle iff edges >= vertices within some
        // connected component; equivalently a DFS finds a back edge.
        let mut visited = vec![false; self.num_qubits];
        for start in 0..self.num_qubits {
            if visited[start] {
                continue;
            }
            let mut stack = vec![(start, usize::MAX)];
            visited[start] = true;
            while let Some((node, parent)) = stack.pop() {
                for &next in &self.adjacency[node] {
                    if !visited[next] {
                        visited[next] = true;
                        stack.push((next, node));
                    } else if next != parent {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Average vertex degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_qubits == 0 {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / self.num_qubits as f64
    }
}

impl fmt::Display for CouplingMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CouplingMap({} qubits, {} edges)",
            self.num_qubits,
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let mut map = CouplingMap::new(3);
        assert!(map.add_edge(0, 1));
        assert!(!map.add_edge(1, 0));
        assert!(!map.add_edge(1, 1));
        assert!(!map.add_edge(0, 9));
        assert_eq!(map.num_edges(), 1);
        assert!(map.has_edge(1, 0));
    }

    #[test]
    fn distances_and_paths() {
        let ring = CouplingMap::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(ring.distance(0, 2), Some(2));
        assert_eq!(ring.distance(0, 3), Some(2));
        let path = ring.shortest_path(0, 2).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], 0);
        assert_eq!(path[2], 2);
        assert_eq!(ring.distance(0, 0), Some(0));
    }

    #[test]
    fn disconnected_graphs() {
        let map = CouplingMap::from_edges(4, &[(0, 1)]);
        assert!(!map.is_connected());
        assert_eq!(map.distance(0, 3), None);
        assert_eq!(map.shortest_path(0, 3), None);
        let matrix = map.distance_matrix();
        assert_eq!(matrix[0][3], usize::MAX);
        assert_eq!(matrix[0][1], 1);
    }

    #[test]
    fn cycle_detection() {
        let line = CouplingMap::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(!line.has_cycle());
        let ring = CouplingMap::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(ring.has_cycle());
    }

    #[test]
    fn degree_statistics() {
        let star = CouplingMap::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(star.max_degree(), 3);
        assert_eq!(star.degree(0), 3);
        assert_eq!(star.degree(1), 1);
        assert!((star.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn distance_matrix_is_symmetric() {
        let map = CouplingMap::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let m = map.distance_matrix();
        for (a, row) in m.iter().enumerate() {
            for (b, &d) in row.iter().enumerate() {
                assert_eq!(d, m[b][a]);
            }
        }
        assert_eq!(m[0][4], 4);
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(CouplingMap::new(0).is_connected());
        assert!(!CouplingMap::new(2).is_connected());
    }
}
