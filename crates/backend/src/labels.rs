//! Node labels: the summary properties QRIO attaches to each cluster node.
//!
//! The paper labels every Kubernetes node with the number of qubits, average
//! two-qubit gate error, average T1/T2, average readout error and the node's
//! CPU/memory capacity (§3.1). The scheduler's filtering stage compares these
//! labels against the user's requested bounds.

use std::collections::BTreeMap;
use std::fmt;

use crate::backend::Backend;

/// The label set attached to a QRIO cluster node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLabels {
    /// Number of physical qubits on the node's device.
    pub num_qubits: usize,
    /// Average two-qubit gate error.
    pub avg_two_qubit_error: f64,
    /// Average single-qubit gate error.
    pub avg_single_qubit_error: f64,
    /// Average T1 (µs).
    pub avg_t1_us: f64,
    /// Average T2 (µs).
    pub avg_t2_us: f64,
    /// Average readout error.
    pub avg_readout_error: f64,
    /// Classical CPU capacity of the node, in millicores.
    pub cpu_millis: u64,
    /// Classical memory capacity of the node, in MiB.
    pub memory_mib: u64,
}

impl NodeLabels {
    /// Derive labels from a backend, with the given classical capacity.
    pub fn from_backend(backend: &Backend, cpu_millis: u64, memory_mib: u64) -> Self {
        NodeLabels {
            num_qubits: backend.num_qubits(),
            avg_two_qubit_error: backend.avg_two_qubit_error(),
            avg_single_qubit_error: backend.avg_single_qubit_error(),
            avg_t1_us: backend.avg_t1_us(),
            avg_t2_us: backend.avg_t2_us(),
            avg_readout_error: backend.avg_readout_error(),
            cpu_millis,
            memory_mib,
        }
    }

    /// Render as Kubernetes-style string labels (`qrio.io/<name>` keys), the
    /// form in which they are attached to cluster nodes.
    pub fn to_string_map(&self) -> BTreeMap<String, String> {
        let mut map = BTreeMap::new();
        map.insert("qrio.io/qubits".into(), self.num_qubits.to_string());
        map.insert(
            "qrio.io/avg-2q-error".into(),
            format!("{:.6}", self.avg_two_qubit_error),
        );
        map.insert(
            "qrio.io/avg-1q-error".into(),
            format!("{:.6}", self.avg_single_qubit_error),
        );
        map.insert("qrio.io/avg-t1-us".into(), format!("{:.1}", self.avg_t1_us));
        map.insert("qrio.io/avg-t2-us".into(), format!("{:.1}", self.avg_t2_us));
        map.insert(
            "qrio.io/avg-readout-error".into(),
            format!("{:.6}", self.avg_readout_error),
        );
        map.insert("qrio.io/cpu-millis".into(), self.cpu_millis.to_string());
        map.insert("qrio.io/memory-mib".into(), self.memory_mib.to_string());
        map
    }

    /// Parse labels back from a Kubernetes-style string map, using defaults
    /// for missing keys.
    pub fn from_string_map(map: &BTreeMap<String, String>) -> Self {
        let get_f64 = |key: &str| {
            map.get(key)
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(0.0)
        };
        let get_u64 = |key: &str| {
            map.get(key)
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
        };
        NodeLabels {
            num_qubits: get_u64("qrio.io/qubits") as usize,
            avg_two_qubit_error: get_f64("qrio.io/avg-2q-error"),
            avg_single_qubit_error: get_f64("qrio.io/avg-1q-error"),
            avg_t1_us: get_f64("qrio.io/avg-t1-us"),
            avg_t2_us: get_f64("qrio.io/avg-t2-us"),
            avg_readout_error: get_f64("qrio.io/avg-readout-error"),
            cpu_millis: get_u64("qrio.io/cpu-millis"),
            memory_mib: get_u64("qrio.io/memory-mib"),
        }
    }
}

impl fmt::Display for NodeLabels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} qubits, 2q err {:.4}, readout err {:.4}, T1 {:.0}us, T2 {:.0}us, {}m CPU, {}MiB",
            self.num_qubits,
            self.avg_two_qubit_error,
            self.avg_readout_error,
            self.avg_t1_us,
            self.avg_t2_us,
            self.cpu_millis,
            self.memory_mib
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn labels_derive_from_backend() {
        let backend = Backend::uniform("labelled", topology::line(7), 0.01, 0.04);
        let labels = NodeLabels::from_backend(&backend, 4000, 8192);
        assert_eq!(labels.num_qubits, 7);
        assert!((labels.avg_two_qubit_error - 0.04).abs() < 1e-12);
        assert_eq!(labels.cpu_millis, 4000);
    }

    #[test]
    fn string_map_roundtrip() {
        let backend = Backend::uniform("labelled", topology::ring(5), 0.02, 0.08);
        let labels = NodeLabels::from_backend(&backend, 2000, 4096);
        let map = labels.to_string_map();
        assert_eq!(map.get("qrio.io/qubits").map(String::as_str), Some("5"));
        let parsed = NodeLabels::from_string_map(&map);
        assert_eq!(parsed.num_qubits, 5);
        assert!((parsed.avg_two_qubit_error - labels.avg_two_qubit_error).abs() < 1e-5);
        assert_eq!(parsed.memory_mib, 4096);
    }

    #[test]
    fn missing_keys_default_to_zero() {
        let labels = NodeLabels::from_string_map(&BTreeMap::new());
        assert_eq!(labels.num_qubits, 0);
        assert_eq!(labels.cpu_millis, 0);
    }

    #[test]
    fn display_is_compact() {
        let backend = Backend::uniform("x", topology::line(3), 0.0, 0.0);
        let labels = NodeLabels::from_backend(&backend, 1000, 512);
        assert!(labels.to_string().contains("3 qubits"));
    }
}
