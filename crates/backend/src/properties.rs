//! Calibration data: per-qubit and per-gate device properties.

use std::fmt;

/// Calibration properties of a single physical qubit.
///
/// Times are in microseconds and the readout length in nanoseconds, matching
/// the units of Table 2 in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QubitProperties {
    /// Relaxation time T1 (µs).
    pub t1_us: f64,
    /// Dephasing time T2 (µs).
    pub t2_us: f64,
    /// Probability that a measurement result is flipped.
    pub readout_error: f64,
    /// Duration of a readout operation (ns).
    pub readout_length_ns: f64,
    /// Average single-qubit gate error on this qubit.
    pub single_qubit_error: f64,
}

impl QubitProperties {
    /// A perfect (noise-free) qubit, useful for building ideal reference
    /// devices such as the Fig. 9 equal-error testbed.
    pub fn ideal() -> Self {
        QubitProperties {
            t1_us: 500e3,
            t2_us: 500e3,
            readout_error: 0.0,
            readout_length_ns: 30.0,
            single_qubit_error: 0.0,
        }
    }

    /// Validate that probabilities are in `[0, 1]` and times are positive.
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.readout_error)
            && (0.0..=1.0).contains(&self.single_qubit_error)
            && self.t1_us > 0.0
            && self.t2_us > 0.0
            && self.readout_length_ns >= 0.0
    }
}

impl Default for QubitProperties {
    fn default() -> Self {
        QubitProperties {
            t1_us: 100e3,
            t2_us: 100e3,
            readout_error: 0.05,
            readout_length_ns: 30.0,
            single_qubit_error: 0.01,
        }
    }
}

impl fmt::Display for QubitProperties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T1={:.0}us T2={:.0}us ro_err={:.4} ro_len={:.0}ns 1q_err={:.4}",
            self.t1_us,
            self.t2_us,
            self.readout_error,
            self.readout_length_ns,
            self.single_qubit_error
        )
    }
}

/// Calibration properties of a two-qubit gate on a specific coupled pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoQubitGateProperties {
    /// Gate error probability.
    pub error: f64,
    /// Gate duration (ns).
    pub duration_ns: f64,
}

impl TwoQubitGateProperties {
    /// A perfect two-qubit gate.
    pub fn ideal() -> Self {
        TwoQubitGateProperties {
            error: 0.0,
            duration_ns: 300.0,
        }
    }

    /// Validate that the error probability is in `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.error) && self.duration_ns >= 0.0
    }
}

impl Default for TwoQubitGateProperties {
    fn default() -> Self {
        TwoQubitGateProperties {
            error: 0.05,
            duration_ns: 300.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(QubitProperties::default().is_valid());
        assert!(QubitProperties::ideal().is_valid());
        assert!(TwoQubitGateProperties::default().is_valid());
        assert!(TwoQubitGateProperties::ideal().is_valid());
    }

    #[test]
    fn invalid_values_detected() {
        let mut q = QubitProperties {
            readout_error: 1.2,
            ..Default::default()
        };
        assert!(!q.is_valid());
        q.readout_error = 0.1;
        q.t1_us = 0.0;
        assert!(!q.is_valid());
        let g = TwoQubitGateProperties {
            error: -0.1,
            duration_ns: 10.0,
        };
        assert!(!g.is_valid());
    }

    #[test]
    fn display_mentions_times() {
        let s = QubitProperties::default().to_string();
        assert!(s.contains("T1"));
        assert!(s.contains("T2"));
    }
}
