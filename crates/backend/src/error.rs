//! Error types for the backend crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, parsing or generating backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// Structural inconsistency (wrong vector lengths, non-existent edges...).
    Mismatch(String),
    /// Calibration values out of range.
    InvalidCalibration(String),
    /// A backend spec file could not be parsed.
    SpecParse {
        /// 1-based line number of the failure.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// A requested backend does not exist.
    UnknownBackend(String),
    /// A generator was configured with invalid parameters.
    InvalidParameter(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Mismatch(msg) => write!(f, "backend mismatch: {msg}"),
            BackendError::InvalidCalibration(msg) => write!(f, "invalid calibration: {msg}"),
            BackendError::SpecParse { line, message } => {
                write!(f, "backend spec parse error at line {line}: {message}")
            }
            BackendError::UnknownBackend(name) => write!(f, "unknown backend '{name}'"),
            BackendError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for BackendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(BackendError::UnknownBackend("x".into())
            .to_string()
            .contains('x'));
        assert!(BackendError::SpecParse {
            line: 2,
            message: "oops".into()
        }
        .to_string()
        .contains("line 2"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<BackendError>();
    }
}
