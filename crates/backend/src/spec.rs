//! The plain-text backend specification format.
//!
//! In the paper every cluster node carries a vendor-authored `backend.py`
//! file exposing a Qiskit `Backend` object (§3.1). This module provides the
//! Rust-native equivalent: a simple line-oriented `backend.spec` format that a
//! vendor writes once per device and that both the node and the QRIO Meta
//! Server load. The format is deliberately boring — `key = value` lines plus
//! `qubit` / `edge` records — so that it can be produced by hand or by a
//! calibration pipeline.
//!
//! ```text
//! # QRIO backend specification
//! name = ibmq_demo
//! qubits = 3
//! basis_gates = u1,u2,u3,cx
//! qubit 0 t1=100000 t2=80000 readout_error=0.05 readout_length=30 error_1q=0.01
//! qubit 1 t1=100000 t2=80000 readout_error=0.05 readout_length=30 error_1q=0.01
//! qubit 2 t1=100000 t2=80000 readout_error=0.05 readout_length=30 error_1q=0.01
//! edge 0 1 error=0.02 duration=300
//! edge 1 2 error=0.03 duration=300
//! meta vendor=example-lab
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::backend::{Backend, BasisGates};
use crate::error::BackendError;
use crate::graph::CouplingMap;
use crate::properties::{QubitProperties, TwoQubitGateProperties};

/// Serialize a backend into the `backend.spec` text format.
pub fn to_spec(backend: &Backend) -> String {
    let mut out = String::new();
    out.push_str("# QRIO backend specification\n");
    let _ = writeln!(out, "name = {}", backend.name());
    let _ = writeln!(out, "qubits = {}", backend.num_qubits());
    let _ = writeln!(out, "basis_gates = {}", backend.basis_gates());
    for (q, props) in backend.qubits().iter().enumerate() {
        let _ = writeln!(
            out,
            "qubit {q} t1={} t2={} readout_error={} readout_length={} error_1q={}",
            props.t1_us,
            props.t2_us,
            props.readout_error,
            props.readout_length_ns,
            props.single_qubit_error
        );
    }
    for (&(a, b), gate) in backend.two_qubit_gates() {
        let _ = writeln!(
            out,
            "edge {a} {b} error={} duration={}",
            gate.error, gate.duration_ns
        );
    }
    for (key, value) in backend.metadata() {
        let _ = writeln!(out, "meta {key}={value}");
    }
    out
}

/// Parse a `backend.spec` document into a [`Backend`].
///
/// # Errors
///
/// Returns [`BackendError::SpecParse`] on malformed lines, and the usual
/// construction errors if the parsed data is inconsistent.
pub fn from_spec(text: &str) -> Result<Backend, BackendError> {
    let mut name = String::from("unnamed");
    let mut num_qubits: Option<usize> = None;
    let mut basis = BasisGates::ibm_default();
    let mut qubit_props: BTreeMap<usize, QubitProperties> = BTreeMap::new();
    let mut edges: Vec<(usize, usize, TwoQubitGateProperties)> = Vec::new();
    let mut metadata: Vec<(String, String)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| BackendError::SpecParse {
            line: line_no,
            message,
        };
        if let Some(rest) = line.strip_prefix("qubit ") {
            let mut parts = rest.split_whitespace();
            let q: usize = parts
                .next()
                .ok_or_else(|| err("missing qubit index".into()))?
                .parse()
                .map_err(|_| err("invalid qubit index".into()))?;
            let mut props = QubitProperties::default();
            for field in parts {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| err(format!("expected key=value, found '{field}'")))?;
                let value: f64 = value
                    .parse()
                    .map_err(|_| err(format!("invalid number '{value}'")))?;
                match key {
                    "t1" => props.t1_us = value,
                    "t2" => props.t2_us = value,
                    "readout_error" => props.readout_error = value,
                    "readout_length" => props.readout_length_ns = value,
                    "error_1q" => props.single_qubit_error = value,
                    other => return Err(err(format!("unknown qubit field '{other}'"))),
                }
            }
            qubit_props.insert(q, props);
        } else if let Some(rest) = line.strip_prefix("edge ") {
            let mut parts = rest.split_whitespace();
            let a: usize = parts
                .next()
                .ok_or_else(|| err("missing edge endpoint".into()))?
                .parse()
                .map_err(|_| err("invalid edge endpoint".into()))?;
            let b: usize = parts
                .next()
                .ok_or_else(|| err("missing edge endpoint".into()))?
                .parse()
                .map_err(|_| err("invalid edge endpoint".into()))?;
            let mut gate = TwoQubitGateProperties::default();
            for field in parts {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| err(format!("expected key=value, found '{field}'")))?;
                let value: f64 = value
                    .parse()
                    .map_err(|_| err(format!("invalid number '{value}'")))?;
                match key {
                    "error" => gate.error = value,
                    "duration" => gate.duration_ns = value,
                    other => return Err(err(format!("unknown edge field '{other}'"))),
                }
            }
            edges.push((a, b, gate));
        } else if let Some(rest) = line.strip_prefix("meta ") {
            let (key, value) = rest
                .split_once('=')
                .ok_or_else(|| err("expected meta key=value".into()))?;
            metadata.push((key.trim().to_string(), value.trim().to_string()));
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            let value = value.trim();
            match key {
                "name" => name = value.to_string(),
                "qubits" => {
                    num_qubits = Some(
                        value
                            .parse()
                            .map_err(|_| err(format!("invalid qubit count '{value}'")))?,
                    );
                }
                "basis_gates" => {
                    basis =
                        BasisGates::new(value.split(',').map(str::trim).filter(|s| !s.is_empty()));
                }
                other => return Err(err(format!("unknown header field '{other}'"))),
            }
        } else {
            return Err(err(format!("unrecognised line '{line}'")));
        }
    }

    let n = num_qubits.ok_or(BackendError::SpecParse {
        line: 0,
        message: "missing 'qubits = N' header".into(),
    })?;
    let mut coupling = CouplingMap::new(n);
    let mut gate_map = BTreeMap::new();
    for (a, b, gate) in edges {
        if a >= n || b >= n {
            return Err(BackendError::Mismatch(format!(
                "edge ({a},{b}) out of range for {n} qubits"
            )));
        }
        coupling.add_edge(a, b);
        gate_map.insert((a.min(b), a.max(b)), gate);
    }
    let mut props = Vec::with_capacity(n);
    for q in 0..n {
        props.push(qubit_props.get(&q).copied().unwrap_or_default());
    }
    let mut backend = Backend::new(name, coupling, props, gate_map, basis)?;
    for (key, value) in metadata {
        backend.set_metadata(key, value);
    }
    Ok(backend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn roundtrip_uniform_backend() {
        let mut original = Backend::uniform("spec_test", topology::ring(5), 0.02, 0.07);
        original.set_metadata("vendor", "umich");
        let text = to_spec(&original);
        let parsed = from_spec(&text).unwrap();
        assert_eq!(parsed.name(), "spec_test");
        assert_eq!(parsed.num_qubits(), 5);
        assert_eq!(
            parsed.coupling_map().edges(),
            original.coupling_map().edges()
        );
        assert!((parsed.avg_two_qubit_error() - 0.07).abs() < 1e-9);
        assert_eq!(
            parsed.metadata().get("vendor").map(String::as_str),
            Some("umich")
        );
    }

    #[test]
    fn parses_documented_example() {
        let text = r#"
# QRIO backend specification
name = ibmq_demo
qubits = 3
basis_gates = u1,u2,u3,cx
qubit 0 t1=100000 t2=80000 readout_error=0.05 readout_length=30 error_1q=0.01
qubit 1 t1=100000 t2=80000 readout_error=0.05 readout_length=30 error_1q=0.01
qubit 2 t1=100000 t2=80000 readout_error=0.05 readout_length=30 error_1q=0.01
edge 0 1 error=0.02 duration=300
edge 1 2 error=0.03 duration=300
meta vendor=example-lab
"#;
        let backend = from_spec(text).unwrap();
        assert_eq!(backend.name(), "ibmq_demo");
        assert_eq!(backend.num_qubits(), 3);
        assert_eq!(backend.coupling_map().num_edges(), 2);
        assert!((backend.two_qubit_gate(0, 1).unwrap().error - 0.02).abs() < 1e-12);
    }

    #[test]
    fn missing_qubits_header_is_error() {
        assert!(from_spec("name = x\n").is_err());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(from_spec("qubits = 2\nqubit zero t1=1\n").is_err());
        assert!(from_spec("qubits = 2\nedge 0 1 error=abc\n").is_err());
        assert!(from_spec("qubits = 2\nwhat is this\n").is_err());
        assert!(from_spec("qubits = 2\nqubit 0 oops=3\n").is_err());
        assert!(from_spec("qubits = 2\nedge 0 5 error=0.1\n").is_err());
    }

    #[test]
    fn missing_qubit_records_use_defaults() {
        let backend = from_spec("qubits = 2\nedge 0 1 error=0.1 duration=100\n").unwrap();
        assert_eq!(backend.num_qubits(), 2);
        assert!(
            (backend.qubit(0).readout_error - QubitProperties::default().readout_error).abs()
                < 1e-12
        );
    }
}
