//! Cross-engine equivalence: random Clifford circuits must produce
//! statistically identical `Counts` on the packed stabilizer engine and the
//! dense statevector engine.
//!
//! The stabilizer run samples the circuit as-is (Clifford → CHP tableau
//! engine); the statevector run appends a `T·T†` identity so the engine
//! selector is forced onto the dense path without changing the state. Both
//! histograms are then tested with a pooled chi-square against the *exact*
//! distribution computed from the statevector amplitudes, and against each
//! other via Hellinger fidelity. Seeds are fixed, so a failure means an
//! engine is biased — never flake.

use qrio_circuit::{library, Circuit};
use qrio_sim::executor::{select_engine, Engine};
use qrio_sim::{run_ideal, Counts, StateVector};

/// Exact outcome distribution of a measurement-free circuit, from the dense
/// amplitudes.
fn exact_probabilities(circuit: &Circuit) -> Vec<f64> {
    let mut sv = StateVector::new(circuit.num_qubits()).unwrap();
    sv.apply_circuit(circuit).unwrap();
    sv.probabilities()
}

/// Pooled chi-square of `counts` against `probabilities` (expected counts
/// below 5 pool into one bucket). Returns `(statistic, degrees_of_freedom)`.
fn chi_square(counts: &Counts, probabilities: &[f64]) -> (f64, f64) {
    let shots = counts.total() as f64;
    let mut statistic = 0.0;
    let mut pooled_expected = 0.0;
    let mut pooled_observed = 0.0;
    let mut buckets = 0usize;
    for (index, &p) in probabilities.iter().enumerate() {
        let expected = p * shots;
        let observed = counts.get(index as u64) as f64;
        if expected < 5.0 {
            pooled_expected += expected;
            pooled_observed += observed;
        } else {
            let diff = observed - expected;
            statistic += diff * diff / expected;
            buckets += 1;
        }
    }
    if pooled_expected > 0.0 {
        let diff = pooled_observed - pooled_expected;
        statistic += diff * diff / pooled_expected.max(1e-9);
        buckets += 1;
    }
    (statistic, buckets.saturating_sub(1) as f64)
}

/// Generous chi-square critical bound at p ≈ 0.001 for df <= ~128.
fn critical(df: f64) -> f64 {
    df + 4.0 * (2.0 * df).sqrt() + 10.0
}

/// The statevector twin of a Clifford circuit: same unitary, but with a
/// `T·T†` identity prepended so `select_engine` picks the dense path.
fn statevector_twin(clifford: &Circuit) -> Circuit {
    let mut twin = Circuit::new(clifford.num_qubits(), clifford.num_qubits());
    twin.t(0).unwrap();
    twin.tdg(0).unwrap();
    for inst in clifford.instructions() {
        twin.append(inst.gate, &inst.qubits).unwrap();
    }
    twin.measure_all().unwrap();
    twin
}

#[test]
fn random_clifford_circuits_agree_across_engines() {
    let shots = 20_000u64;
    for seed in [3u64, 17, 42] {
        let clifford = library::random_clifford_circuit(6, 8, seed)
            .unwrap()
            .without_measurements();
        let exact = exact_probabilities(&clifford);

        let mut measured = clifford.clone();
        measured.measure_all().unwrap();
        assert_eq!(select_engine(&measured).unwrap(), Engine::Stabilizer);
        let stabilizer = run_ideal(&measured, shots, 1000 + seed).unwrap();

        let twin = statevector_twin(&clifford);
        assert_eq!(select_engine(&twin).unwrap(), Engine::Statevector);
        let statevector = run_ideal(&twin, shots, 2000 + seed).unwrap();

        // Each engine matches the exact distribution...
        for (label, counts) in [("stabilizer", &stabilizer), ("statevector", &statevector)] {
            let (statistic, df) = chi_square(counts, &exact);
            assert!(
                statistic < critical(df),
                "seed {seed}: {label} chi-square {statistic:.1} exceeds {:.1} (df {df})",
                critical(df)
            );
            assert_eq!(counts.total(), shots);
        }
        // ...and therefore each other.
        let fidelity = stabilizer.hellinger_fidelity(&statevector);
        assert!(
            fidelity > 0.99,
            "seed {seed}: engines disagree, Hellinger fidelity {fidelity}"
        );
        // Supports match exactly: any outcome one engine emits has nonzero
        // exact probability (Clifford supports are exact, so a single stray
        // outcome is an engine bug, not noise).
        for (label, counts) in [("stabilizer", &stabilizer), ("statevector", &statevector)] {
            for (outcome, _) in counts.iter() {
                assert!(
                    exact[outcome as usize] > 1e-12,
                    "seed {seed}: {label} emitted impossible outcome {outcome:b}"
                );
            }
        }
    }
}

#[test]
fn engines_agree_on_structured_clifford_families() {
    // GHZ and the repetition encoder exercise entangling structure the
    // random sweep may miss at low depth.
    let shots = 16_000u64;
    for (label, circuit) in [
        ("ghz", library::ghz(7).unwrap().without_measurements()),
        (
            "repetition",
            library::repetition_code_encoder(5)
                .unwrap()
                .without_measurements(),
        ),
    ] {
        let exact = exact_probabilities(&circuit);
        let mut measured = circuit.clone();
        measured.measure_all().unwrap();
        let stabilizer = run_ideal(&measured, shots, 7).unwrap();
        let statevector = run_ideal(&statevector_twin(&circuit), shots, 11).unwrap();
        for (engine, counts) in [("stabilizer", &stabilizer), ("statevector", &statevector)] {
            let (statistic, df) = chi_square(counts, &exact);
            assert!(
                statistic < critical(df),
                "{label}/{engine}: chi-square {statistic:.1} over {:.1}",
                critical(df)
            );
        }
        let fidelity = stabilizer.hellinger_fidelity(&statevector);
        assert!(fidelity > 0.99, "{label}: engines disagree ({fidelity})");
    }
}
