//! Cross-engine equivalence: random Clifford circuits must produce
//! statistically identical `Counts` on the packed stabilizer engine and the
//! dense statevector engine.
//!
//! The stabilizer run samples the circuit as-is (Clifford → CHP tableau
//! engine); the statevector run appends a `T·T†` identity so the engine
//! selector is forced onto the dense path without changing the state. Both
//! histograms are then tested with a pooled chi-square against the *exact*
//! distribution computed from the statevector amplitudes, and against each
//! other via Hellinger fidelity. Seeds are fixed, so a failure means an
//! engine is biased — never flake.

use proptest::prelude::*;

use qrio_circuit::{library, Circuit};
use qrio_sim::executor::{select_engine, Engine};
use qrio_sim::{
    run_ideal, run_with_noise_parallel, run_with_noise_path, Counts, ExecutionPath, NoiseModel,
    ParallelConfig, StateVector,
};

/// Exact outcome distribution of a measurement-free circuit, from the dense
/// amplitudes.
fn exact_probabilities(circuit: &Circuit) -> Vec<f64> {
    let mut sv = StateVector::new(circuit.num_qubits()).unwrap();
    sv.apply_circuit(circuit).unwrap();
    sv.probabilities()
}

/// Pooled chi-square of `counts` against `probabilities` (expected counts
/// below 5 pool into one bucket). Returns `(statistic, degrees_of_freedom)`.
fn chi_square(counts: &Counts, probabilities: &[f64]) -> (f64, f64) {
    let shots = counts.total() as f64;
    let mut statistic = 0.0;
    let mut pooled_expected = 0.0;
    let mut pooled_observed = 0.0;
    let mut buckets = 0usize;
    for (index, &p) in probabilities.iter().enumerate() {
        let expected = p * shots;
        let observed = counts.get(index as u64) as f64;
        if expected < 5.0 {
            pooled_expected += expected;
            pooled_observed += observed;
        } else {
            let diff = observed - expected;
            statistic += diff * diff / expected;
            buckets += 1;
        }
    }
    if pooled_expected > 0.0 {
        let diff = pooled_observed - pooled_expected;
        statistic += diff * diff / pooled_expected.max(1e-9);
        buckets += 1;
    }
    (statistic, buckets.saturating_sub(1) as f64)
}

/// Generous chi-square critical bound at p ≈ 0.001 for df <= ~128.
fn critical(df: f64) -> f64 {
    df + 4.0 * (2.0 * df).sqrt() + 10.0
}

/// Two-sample pooled chi-square: are `a` and `b` draws from one distribution?
/// Under H0 the expected count in a bucket is the pooled frequency scaled by
/// each sample's size; buckets whose smaller expectation is below 5 pool.
/// Returns `(statistic, degrees_of_freedom)`.
fn two_sample_chi_square(a: &Counts, b: &Counts) -> (f64, f64) {
    let na = a.total() as f64;
    let nb = b.total() as f64;
    let mut outcomes: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    outcomes.extend(a.iter().map(|(outcome, _)| outcome));
    outcomes.extend(b.iter().map(|(outcome, _)| outcome));
    let mut statistic = 0.0;
    let mut buckets = 0usize;
    let (mut pool_oa, mut pool_ob, mut pool_ea, mut pool_eb) = (0.0, 0.0, 0.0, 0.0);
    for outcome in outcomes {
        let oa = a.get(outcome) as f64;
        let ob = b.get(outcome) as f64;
        let pooled = (oa + ob) / (na + nb);
        let (ea, eb) = (pooled * na, pooled * nb);
        if ea.min(eb) < 5.0 {
            pool_oa += oa;
            pool_ob += ob;
            pool_ea += ea;
            pool_eb += eb;
        } else {
            statistic += (oa - ea).powi(2) / ea + (ob - eb).powi(2) / eb;
            buckets += 1;
        }
    }
    if pool_ea + pool_eb > 0.0 {
        statistic += (pool_oa - pool_ea).powi(2) / pool_ea.max(1e-9)
            + (pool_ob - pool_eb).powi(2) / pool_eb.max(1e-9);
        buckets += 1;
    }
    (statistic, buckets.saturating_sub(1) as f64)
}

/// The statevector twin of a Clifford circuit: same unitary, but with a
/// `T·T†` identity prepended so `select_engine` picks the dense path.
fn statevector_twin(clifford: &Circuit) -> Circuit {
    let mut twin = Circuit::new(clifford.num_qubits(), clifford.num_qubits());
    twin.t(0).unwrap();
    twin.tdg(0).unwrap();
    for inst in clifford.instructions() {
        twin.append(inst.gate, &inst.qubits).unwrap();
    }
    twin.measure_all().unwrap();
    twin
}

#[test]
fn random_clifford_circuits_agree_across_engines() {
    let shots = 20_000u64;
    for seed in [3u64, 17, 42] {
        let clifford = library::random_clifford_circuit(6, 8, seed)
            .unwrap()
            .without_measurements();
        let exact = exact_probabilities(&clifford);

        let mut measured = clifford.clone();
        measured.measure_all().unwrap();
        assert_eq!(select_engine(&measured).unwrap(), Engine::Stabilizer);
        let stabilizer = run_ideal(&measured, shots, 1000 + seed).unwrap();

        let twin = statevector_twin(&clifford);
        assert_eq!(select_engine(&twin).unwrap(), Engine::Statevector);
        let statevector = run_ideal(&twin, shots, 2000 + seed).unwrap();

        // Each engine matches the exact distribution...
        for (label, counts) in [("stabilizer", &stabilizer), ("statevector", &statevector)] {
            let (statistic, df) = chi_square(counts, &exact);
            assert!(
                statistic < critical(df),
                "seed {seed}: {label} chi-square {statistic:.1} exceeds {:.1} (df {df})",
                critical(df)
            );
            assert_eq!(counts.total(), shots);
        }
        // ...and therefore each other.
        let fidelity = stabilizer.hellinger_fidelity(&statevector);
        assert!(
            fidelity > 0.99,
            "seed {seed}: engines disagree, Hellinger fidelity {fidelity}"
        );
        // Supports match exactly: any outcome one engine emits has nonzero
        // exact probability (Clifford supports are exact, so a single stray
        // outcome is an engine bug, not noise).
        for (label, counts) in [("stabilizer", &stabilizer), ("statevector", &statevector)] {
            for (outcome, _) in counts.iter() {
                assert!(
                    exact[outcome as usize] > 1e-12,
                    "seed {seed}: {label} emitted impossible outcome {outcome:b}"
                );
            }
        }
    }
}

#[test]
fn engines_agree_on_structured_clifford_families() {
    // GHZ and the repetition encoder exercise entangling structure the
    // random sweep may miss at low depth.
    let shots = 16_000u64;
    for (label, circuit) in [
        ("ghz", library::ghz(7).unwrap().without_measurements()),
        (
            "repetition",
            library::repetition_code_encoder(5)
                .unwrap()
                .without_measurements(),
        ),
    ] {
        let exact = exact_probabilities(&circuit);
        let mut measured = circuit.clone();
        measured.measure_all().unwrap();
        let stabilizer = run_ideal(&measured, shots, 7).unwrap();
        let statevector = run_ideal(&statevector_twin(&circuit), shots, 11).unwrap();
        for (engine, counts) in [("stabilizer", &stabilizer), ("statevector", &statevector)] {
            let (statistic, df) = chi_square(counts, &exact);
            assert!(
                statistic < critical(df),
                "{label}/{engine}: chi-square {statistic:.1} over {:.1}",
                critical(df)
            );
        }
        let fidelity = stabilizer.hellinger_fidelity(&statevector);
        assert!(fidelity > 0.99, "{label}: engines disagree ({fidelity})");
    }
}

#[test]
fn frame_path_is_byte_identical_to_replay_under_noise() {
    // The Pauli-frame path mirrors the replay path's RNG draw order exactly,
    // so with identical seeds the histograms must be *equal*, not merely
    // statistically close — across every thread count.
    let shots = 4_000u64;
    for seed in [5u64, 21] {
        let mut circuit = library::random_clifford_circuit(8, 6, seed)
            .unwrap()
            .without_measurements();
        circuit.measure_all().unwrap();
        let noise = NoiseModel::uniform(8, 0.02, 0.05, 0.03);

        let replay = run_with_noise_path(
            &circuit,
            &noise,
            shots,
            900 + seed,
            &ParallelConfig::serial(),
            ExecutionPath::Replay,
        )
        .unwrap();
        for threads in [1usize, 2, 8] {
            let frame = run_with_noise_path(
                &circuit,
                &noise,
                shots,
                900 + seed,
                &ParallelConfig::with_threads(threads),
                ExecutionPath::Frame,
            )
            .unwrap();
            assert_eq!(
                frame, replay,
                "seed {seed}: frame path at {threads} threads diverged from serial replay"
            );
        }
        // Auto selects the frame path for this circuit and must agree too.
        let auto = run_with_noise_parallel(
            &circuit,
            &noise,
            shots,
            900 + seed,
            &ParallelConfig::serial(),
        )
        .unwrap();
        assert_eq!(auto, replay, "seed {seed}: auto path diverged from replay");
    }
}

#[test]
fn noisy_frame_matches_replay_and_statevector_monte_carlo() {
    // Three-way agreement under a *noisy* model: the frame path, the replay
    // path, and a statevector Monte Carlo twin all sample the same physical
    // distribution. The noise model has zero single-qubit gate error so the
    // twin's T·T† prefix adds no extra noise sites or RNG draws.
    let shots = 12_000u64;
    for seed in [3u64, 17] {
        let mut circuit = library::random_clifford_circuit(6, 8, seed)
            .unwrap()
            .without_measurements();
        let twin = statevector_twin(&circuit);
        circuit.measure_all().unwrap();
        let noise = NoiseModel::uniform(6, 0.0, 0.08, 0.02);

        let frame = run_with_noise_path(
            &circuit,
            &noise,
            shots,
            1000 + seed,
            &ParallelConfig::serial(),
            ExecutionPath::Frame,
        )
        .unwrap();
        let replay = run_with_noise_path(
            &circuit,
            &noise,
            shots,
            3000 + seed,
            &ParallelConfig::serial(),
            ExecutionPath::Replay,
        )
        .unwrap();
        assert_eq!(select_engine(&twin).unwrap(), Engine::Statevector);
        let statevector =
            run_with_noise_parallel(&twin, &noise, shots, 2000 + seed, &ParallelConfig::serial())
                .unwrap();

        for (label, other) in [("replay", &replay), ("statevector", &statevector)] {
            let (statistic, df) = two_sample_chi_square(&frame, other);
            assert!(
                statistic < critical(df),
                "seed {seed}: frame vs {label} chi-square {statistic:.1} exceeds {:.1} (df {df})",
                critical(df)
            );
            let fidelity = frame.hellinger_fidelity(other);
            assert!(
                fidelity > 0.99,
                "seed {seed}: frame vs {label} Hellinger fidelity {fidelity}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At zero noise the frame path and replay path share not just a
    /// distribution but every byte: both consume the measurement-coin RNG in
    /// the same order, so the histograms must be identical for any Clifford
    /// circuit.
    #[test]
    fn frame_path_matches_replay_bit_for_bit_at_zero_noise(
        qubits in 2usize..12,
        depth in 1usize..9,
        circuit_seed in 0u64..1_000_000,
        seed in 0u64..1_000_000,
    ) {
        let mut circuit = library::random_clifford_circuit(qubits, depth, circuit_seed)
            .unwrap()
            .without_measurements();
        circuit.measure_all().unwrap();
        let noise = NoiseModel::ideal(qubits);
        let shots = 192u64; // three shards

        let frame = run_with_noise_path(
            &circuit,
            &noise,
            shots,
            seed,
            &ParallelConfig::serial(),
            ExecutionPath::Frame,
        )
        .unwrap();
        let replay = run_with_noise_path(
            &circuit,
            &noise,
            shots,
            seed,
            &ParallelConfig::serial(),
            ExecutionPath::Replay,
        )
        .unwrap();
        prop_assert_eq!(frame, replay);
    }
}
