//! Property tests: the bit-packed CHP tableau matches the previous
//! `Vec<Vec<bool>>` implementation gate-for-gate.
//!
//! The reference below is the seed implementation kept verbatim (boolean
//! rows, per-qubit phase lookup). Both simulators consume the RNG identically
//! — one `gen_bool(0.5)` per random-outcome measurement — so with equal
//! seeds their measurement outcomes must be *bit-identical*, which is
//! strictly stronger than matching distributions.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qrio_circuit::{library, Circuit, Gate};
use qrio_sim::StabilizerSimulator;

/// The seed `Vec<Vec<bool>>` CHP tableau, kept as the semantic reference.
struct ReferenceTableau {
    n: usize,
    x: Vec<Vec<bool>>,
    z: Vec<Vec<bool>>,
    r: Vec<bool>,
}

impl ReferenceTableau {
    fn new(num_qubits: usize) -> Self {
        let n = num_qubits;
        let rows = 2 * n + 1;
        let mut x = vec![vec![false; n]; rows];
        let mut z = vec![vec![false; n]; rows];
        let r = vec![false; rows];
        for i in 0..n {
            x[i][i] = true;
            z[n + i][i] = true;
        }
        ReferenceTableau { n, x, z, r }
    }

    fn h(&mut self, a: usize) {
        for i in 0..2 * self.n {
            let (xi, zi) = (self.x[i][a], self.z[i][a]);
            self.r[i] ^= xi && zi;
            self.x[i][a] = zi;
            self.z[i][a] = xi;
        }
    }

    fn s(&mut self, a: usize) {
        for i in 0..2 * self.n {
            let (xi, zi) = (self.x[i][a], self.z[i][a]);
            self.r[i] ^= xi && zi;
            self.z[i][a] = zi ^ xi;
        }
    }

    fn sdg(&mut self, a: usize) {
        self.s(a);
        self.s(a);
        self.s(a);
    }

    fn cx(&mut self, a: usize, b: usize) {
        for i in 0..2 * self.n {
            let (xia, zia) = (self.x[i][a], self.z[i][a]);
            let (xib, zib) = (self.x[i][b], self.z[i][b]);
            self.r[i] ^= xia && zib && (xib ^ zia ^ true);
            self.x[i][b] = xib ^ xia;
            self.z[i][a] = zia ^ zib;
        }
    }

    fn x_gate(&mut self, a: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[i][a];
        }
    }

    fn z_gate(&mut self, a: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][a];
        }
    }

    fn y_gate(&mut self, a: usize) {
        self.z_gate(a);
        self.x_gate(a);
    }

    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase: i32 = i32::from(self.r[h]) * 2 + i32::from(self.r[i]) * 2;
        for j in 0..self.n {
            phase += g(self.x[i][j], self.z[i][j], self.x[h][j], self.z[h][j]);
        }
        self.r[h] = phase.rem_euclid(4) == 2;
        for j in 0..self.n {
            self.x[h][j] ^= self.x[i][j];
            self.z[h][j] ^= self.z[i][j];
        }
    }

    fn measure<R: Rng + ?Sized>(&mut self, a: usize, rng: &mut R) -> bool {
        let n = self.n;
        let mut p = None;
        for i in n..2 * n {
            if self.x[i][a] {
                p = Some(i);
                break;
            }
        }
        if let Some(p) = p {
            for i in 0..2 * n {
                if i != p && self.x[i][a] {
                    self.rowsum(i, p);
                }
            }
            self.x[p - n] = self.x[p].clone();
            self.z[p - n] = self.z[p].clone();
            self.r[p - n] = self.r[p];
            for j in 0..n {
                self.x[p][j] = false;
                self.z[p][j] = false;
            }
            self.z[p][a] = true;
            let outcome = rng.gen_bool(0.5);
            self.r[p] = outcome;
            outcome
        } else {
            let scratch = 2 * n;
            for j in 0..n {
                self.x[scratch][j] = false;
                self.z[scratch][j] = false;
            }
            self.r[scratch] = false;
            for i in 0..n {
                if self.x[i][a] {
                    self.rowsum(scratch, i + n);
                }
            }
            self.r[scratch]
        }
    }

    /// The seed decomposition of every supported Clifford gate, verbatim.
    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        match *gate {
            Gate::I | Gate::Barrier => {}
            Gate::H => self.h(qubits[0]),
            Gate::S => self.s(qubits[0]),
            Gate::Sdg => self.sdg(qubits[0]),
            Gate::X => self.x_gate(qubits[0]),
            Gate::Y => self.y_gate(qubits[0]),
            Gate::Z => self.z_gate(qubits[0]),
            Gate::SX => {
                self.h(qubits[0]);
                self.s(qubits[0]);
                self.h(qubits[0]);
            }
            Gate::CX => self.cx(qubits[0], qubits[1]),
            Gate::CZ => {
                self.h(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.h(qubits[1]);
            }
            Gate::CY => {
                self.sdg(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.s(qubits[1]);
            }
            Gate::Swap => {
                self.cx(qubits[0], qubits[1]);
                self.cx(qubits[1], qubits[0]);
                self.cx(qubits[0], qubits[1]);
            }
            Gate::RZ(theta) | Gate::U1(theta) => self.apply_quarter_z(qubits[0], theta),
            Gate::RX(theta) => {
                self.h(qubits[0]);
                self.apply_quarter_z(qubits[0], theta);
                self.h(qubits[0]);
            }
            Gate::RY(theta) => {
                self.sdg(qubits[0]);
                self.h(qubits[0]);
                self.apply_quarter_z(qubits[0], theta);
                self.h(qubits[0]);
                self.s(qubits[0]);
            }
            Gate::U2(phi, lambda) => {
                self.apply_u3(qubits[0], std::f64::consts::FRAC_PI_2, phi, lambda);
            }
            Gate::U3(theta, phi, lambda) => self.apply_u3(qubits[0], theta, phi, lambda),
            Gate::CP(theta) | Gate::CRZ(theta) => {
                let k = (theta / std::f64::consts::PI).round() as i64;
                if k.rem_euclid(2) == 1 {
                    self.h(qubits[1]);
                    self.cx(qubits[0], qubits[1]);
                    self.h(qubits[1]);
                }
                if matches!(gate, Gate::CRZ(_)) {
                    self.apply_quarter_z(qubits[0], -theta / 2.0);
                }
            }
            ref g => panic!("reference tableau: unsupported gate {g:?}"),
        }
    }

    fn apply_quarter_z(&mut self, q: usize, theta: f64) {
        let k = (theta / std::f64::consts::FRAC_PI_2).round() as i64;
        match k.rem_euclid(4) {
            1 => self.s(q),
            2 => self.z_gate(q),
            3 => self.sdg(q),
            _ => {}
        }
    }

    fn apply_u3(&mut self, q: usize, theta: f64, phi: f64, lambda: f64) {
        self.apply_quarter_z(q, lambda);
        self.sdg(q);
        self.h(q);
        self.apply_quarter_z(q, theta);
        self.h(q);
        self.s(q);
        self.apply_quarter_z(q, phi);
    }
}

fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
    match (x1, z1) {
        (false, false) => 0,
        (true, true) => i32::from(z2) - i32::from(x2),
        (true, false) => i32::from(z2) * (2 * i32::from(x2) - 1),
        (false, true) => i32::from(x2) * (1 - 2 * i32::from(z2)),
    }
}

/// Run one shot of `circuit` (unitaries then a full measurement sweep) on
/// both tableaus with identically seeded RNGs; return the two outcome words.
fn shot_pair(circuit: &Circuit, n: usize, shot_seed: u64) -> (u128, u128) {
    let mut packed = StabilizerSimulator::new(n);
    let mut reference = ReferenceTableau::new(n);
    for inst in circuit.instructions() {
        if matches!(inst.gate, Gate::Measure | Gate::Reset | Gate::Barrier) {
            continue;
        }
        packed.apply_gate(&inst.gate, &inst.qubits).unwrap();
        reference.apply_gate(&inst.gate, &inst.qubits);
    }
    let mut rng_packed = StdRng::seed_from_u64(shot_seed);
    let mut rng_reference = StdRng::seed_from_u64(shot_seed);
    let mut outcome_packed = 0u128;
    let mut outcome_reference = 0u128;
    for q in 0..n {
        if packed.measure(q, &mut rng_packed) {
            outcome_packed |= 1 << q;
        }
        if reference.measure(q, &mut rng_reference) {
            outcome_reference |= 1 << q;
        }
    }
    (outcome_packed, outcome_reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_clifford_circuits_measure_identically(
        qubits in 1usize..20,
        depth in 1usize..7,
        circuit_seed in 0u64..1_000_000,
        shot_seed in 0u64..1_000_000,
    ) {
        let circuit = library::random_clifford_circuit(qubits, depth, circuit_seed).unwrap();
        for extra in 0..4u64 {
            let (packed, reference) = shot_pair(&circuit, qubits, shot_seed.wrapping_add(extra));
            prop_assert_eq!(packed, reference);
        }
    }

    #[test]
    fn wide_tableaus_measure_identically(
        qubits in 60usize..90,
        depth in 1usize..4,
        circuit_seed in 0u64..100_000,
        shot_seed in 0u64..100_000,
    ) {
        // Crossing the 64-qubit word boundary exercises multi-word rows.
        let circuit = library::random_clifford_circuit(qubits, depth, circuit_seed).unwrap();
        let (packed, reference) = shot_pair(&circuit, qubits, shot_seed);
        prop_assert_eq!(packed, reference);
    }
}

#[test]
fn every_clifford_gate_variant_matches_the_reference() {
    use std::f64::consts::{FRAC_PI_2, PI};
    let n = 6;
    let gates: Vec<(Gate, Vec<usize>)> = vec![
        (Gate::H, vec![0]),
        (Gate::H, vec![3]),
        (Gate::S, vec![1]),
        (Gate::Sdg, vec![2]),
        (Gate::X, vec![3]),
        (Gate::Y, vec![4]),
        (Gate::Z, vec![5]),
        (Gate::SX, vec![0]),
        (Gate::CX, vec![0, 1]),
        (Gate::CZ, vec![1, 2]),
        (Gate::CY, vec![2, 3]),
        (Gate::Swap, vec![3, 4]),
        (Gate::RZ(FRAC_PI_2), vec![4]),
        (Gate::RZ(PI), vec![5]),
        (Gate::RZ(3.0 * FRAC_PI_2), vec![0]),
        (Gate::RX(PI), vec![1]),
        (Gate::RY(FRAC_PI_2), vec![2]),
        (Gate::U1(PI), vec![3]),
        (Gate::U2(0.0, PI), vec![4]),
        (Gate::U3(PI, 0.0, PI), vec![5]),
        (Gate::CP(PI), vec![0, 2]),
        (Gate::CRZ(PI), vec![1, 3]),
        (Gate::I, vec![0]),
    ];
    let mut circuit = Circuit::new(n, n);
    for (gate, qubits) in &gates {
        circuit.append(*gate, qubits).unwrap();
    }
    for shot_seed in 0..50 {
        let (packed, reference) = shot_pair(&circuit, n, shot_seed);
        assert_eq!(packed, reference, "diverged at shot seed {shot_seed}");
    }
}

#[test]
fn measurement_distributions_match_in_aggregate() {
    // Distribution-level check on top of the bitwise one: histogram equality
    // over many shots of an entangling circuit.
    use std::collections::BTreeMap;
    let circuit = library::random_clifford_circuit(8, 5, 99).unwrap();
    let mut hist_packed: BTreeMap<u128, u64> = BTreeMap::new();
    let mut hist_reference: BTreeMap<u128, u64> = BTreeMap::new();
    for shot_seed in 0..2000u64 {
        let (packed, reference) = shot_pair(&circuit, 8, shot_seed);
        *hist_packed.entry(packed).or_insert(0) += 1;
        *hist_reference.entry(reference).or_insert(0) += 1;
    }
    assert_eq!(hist_packed, hist_reference);
}
