//! Distribution-correctness of the binary-search sampler and bit-level
//! reproducibility of sharded parallel shot execution.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qrio_circuit::{library, Circuit, Gate};
use qrio_sim::{
    run_ideal_parallel, run_with_noise_parallel, NoiseModel, ParallelConfig, StateVector,
};

/// Chi-square goodness-of-fit: draws from the precomputed cumulative table
/// must follow `StateVector::probabilities()`.
#[test]
fn binary_search_sampling_matches_probabilities_chi_square() {
    // An 8-qubit state with structure (GHZ core + rotations) so the
    // distribution is far from uniform.
    let mut sv = StateVector::new(8).unwrap();
    let mut circuit = Circuit::new(8, 0);
    circuit.h(0).unwrap();
    for q in 1..8 {
        circuit.cx(q - 1, q).unwrap();
    }
    circuit.append(Gate::RY(0.4), &[2]).unwrap();
    circuit.append(Gate::RX(1.1), &[5]).unwrap();
    circuit.append(Gate::T, &[0]).unwrap();
    circuit.h(7).unwrap();
    sv.apply_circuit(&circuit).unwrap();

    let probabilities = sv.probabilities();
    let table = sv.cumulative_distribution();
    let draws: u64 = 40_000;
    let mut observed = vec![0u64; probabilities.len()];
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..draws {
        observed[table.sample(&mut rng) as usize] += 1;
    }

    // Pool states with tiny expectation into one bucket so every chi-square
    // term has expected count >= ~5 (the usual validity rule).
    let mut chi_square = 0.0;
    let mut pooled_expected = 0.0;
    let mut pooled_observed = 0.0;
    let mut buckets = 0usize;
    for (index, &p) in probabilities.iter().enumerate() {
        let expected = p * draws as f64;
        if expected < 5.0 {
            pooled_expected += expected;
            pooled_observed += observed[index] as f64;
        } else {
            let diff = observed[index] as f64 - expected;
            chi_square += diff * diff / expected;
            buckets += 1;
        }
    }
    if pooled_expected > 0.0 {
        let diff = pooled_observed - pooled_expected;
        chi_square += diff * diff / pooled_expected.max(1e-9);
        buckets += 1;
    }
    // Degrees of freedom = buckets - 1. Generous p ≈ 0.001 critical bound
    // (for df <= 128, chi2_crit(0.001) < df + 4*sqrt(2*df) + 10): the test is
    // seeded, so this never flakes — it only fails if sampling is biased.
    let df = (buckets - 1) as f64;
    let critical = df + 4.0 * (2.0 * df).sqrt() + 10.0;
    assert!(
        chi_square < critical,
        "chi-square {chi_square:.1} exceeds critical {critical:.1} (df {df})"
    );
}

/// The sampler hits every outcome of a uniform superposition (no dead zones).
#[test]
fn binary_search_sampling_covers_the_support() {
    let mut sv = StateVector::new(4).unwrap();
    for q in 0..4 {
        sv.apply_gate(&Gate::H, &[q]).unwrap();
    }
    let table = sv.cumulative_distribution();
    let mut rng = StdRng::seed_from_u64(7);
    let mut seen = [false; 16];
    for _ in 0..2000 {
        seen[table.sample(&mut rng) as usize] = true;
    }
    assert!(seen.iter().all(|&s| s), "some outcomes were never sampled");
}

fn assert_thread_invariant(
    circuit: &Circuit,
    noise: &NoiseModel,
    shots: u64,
    seed: u64,
    label: &str,
) {
    let reference = run_with_noise_parallel(
        circuit,
        noise,
        shots,
        seed,
        &ParallelConfig::with_threads(1),
    )
    .unwrap();
    for threads in [2usize, 8] {
        let counts = run_with_noise_parallel(
            circuit,
            noise,
            shots,
            seed,
            &ParallelConfig::with_threads(threads),
        )
        .unwrap();
        assert_eq!(
            reference, counts,
            "{label}: counts diverged between 1 and {threads} threads"
        );
    }
    // The auto configuration resolves to *some* thread count, so it must
    // reproduce the same histogram too.
    let auto = run_with_noise_parallel(circuit, noise, shots, seed, &ParallelConfig::auto());
    assert_eq!(reference, auto.unwrap(), "{label}: auto config diverged");
}

/// Identical `Counts` for 1, 2 and 8 threads at a fixed seed — stabilizer
/// engine, ideal fast path.
#[test]
fn parallel_execution_is_deterministic_stabilizer_ideal() {
    let circuit = library::random_clifford_circuit(14, 6, 5).unwrap();
    let noise = NoiseModel::ideal(14);
    assert_thread_invariant(&circuit, &noise, 1000, 11, "stabilizer-ideal");
}

/// Identical `Counts` across thread counts — stabilizer engine, noisy replay
/// path.
#[test]
fn parallel_execution_is_deterministic_stabilizer_noisy() {
    let circuit = library::random_clifford_circuit(10, 5, 8).unwrap();
    let noise = NoiseModel::uniform(10, 0.02, 0.08, 0.03);
    assert_thread_invariant(&circuit, &noise, 1000, 13, "stabilizer-noisy");
}

/// Identical `Counts` across thread counts — statevector engine, ideal fast
/// path (binary-search sampling).
#[test]
fn parallel_execution_is_deterministic_statevector_ideal() {
    let circuit = library::random_circuit(8, 4, 21).unwrap();
    let noise = NoiseModel::ideal(8);
    assert_thread_invariant(&circuit, &noise, 1000, 17, "statevector-ideal");
}

/// Identical `Counts` across thread counts — statevector engine, noisy
/// replay path.
#[test]
fn parallel_execution_is_deterministic_statevector_noisy() {
    let circuit = library::random_circuit(6, 4, 33).unwrap();
    let noise = NoiseModel::uniform(6, 0.02, 0.06, 0.02);
    assert_thread_invariant(&circuit, &noise, 600, 19, "statevector-noisy");
}

/// Shot counts that do not divide evenly into shards keep the invariant, and
/// more workers than shards is fine.
#[test]
fn parallel_execution_handles_ragged_and_tiny_shot_counts() {
    let circuit = library::ghz(5).unwrap();
    let noise = NoiseModel::ideal(5);
    for shots in [1u64, 63, 64, 65, 130, 1001] {
        let a = run_ideal_parallel(&circuit, shots, 3, &ParallelConfig::with_threads(1)).unwrap();
        let b = run_ideal_parallel(&circuit, shots, 3, &ParallelConfig::with_threads(8)).unwrap();
        assert_eq!(a, b, "shots={shots}");
        assert_eq!(a.total(), shots);
        let c = run_with_noise_parallel(&circuit, &noise, shots, 3, &ParallelConfig::auto());
        assert_eq!(a, c.unwrap(), "auto diverged at shots={shots}");
    }
}
