//! Error types for the simulation crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulators and the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulatorError {
    /// The circuit is too large for the requested engine.
    TooManyQubits {
        /// Number of qubits requested.
        requested: usize,
        /// Engine limit.
        limit: usize,
    },
    /// A qubit index exceeded the register size.
    QubitOutOfRange {
        /// Offending qubit.
        qubit: usize,
        /// Register size.
        num_qubits: usize,
    },
    /// The gate or instruction is not supported by the engine.
    Unsupported(String),
    /// The stabilizer engine was asked to simulate a non-Clifford circuit.
    NotClifford {
        /// Name of the offending gate.
        gate: String,
    },
    /// Invalid execution parameters (e.g. zero shots).
    InvalidParameter(String),
    /// A classical bit index exceeds the 64-bit outcome register the executor
    /// packs measurement results into. Raised at circuit-validation time so
    /// the shot loops never evaluate `1 << bit` with `bit >= 64` (a debug
    /// panic / silent release wrap).
    ClassicalBitOutOfRange {
        /// Offending classical bit (for circuits without explicit
        /// measurements, the highest implicitly measured qubit index).
        bit: usize,
        /// Width of the packed outcome register (64).
        limit: usize,
    },
}

impl fmt::Display for SimulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulatorError::TooManyQubits { requested, limit } => {
                write!(f, "{requested} qubits exceed the engine limit of {limit}")
            }
            SimulatorError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit register"
                )
            }
            SimulatorError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            SimulatorError::NotClifford { gate } => {
                write!(
                    f,
                    "gate '{gate}' is not Clifford; the stabilizer engine cannot simulate it"
                )
            }
            SimulatorError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            SimulatorError::ClassicalBitOutOfRange { bit, limit } => {
                write!(
                    f,
                    "classical bit {bit} exceeds the {limit}-bit packed outcome register"
                )
            }
        }
    }
}

impl Error for SimulatorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SimulatorError::TooManyQubits {
            requested: 40,
            limit: 24,
        };
        assert!(e.to_string().contains("40"));
        assert!(SimulatorError::NotClifford { gate: "t".into() }
            .to_string()
            .contains("'t'"));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<SimulatorError>();
    }
}
