//! Circuit execution: shot sampling on ideal or noisy simulated devices.
//!
//! The executor plays the role of Qiskit Aer in the paper's stack: given a
//! circuit (and optionally a backend-derived [`NoiseModel`]), produce
//! measurement [`Counts`]. It automatically picks the stabilizer engine for
//! Clifford circuits (scalable, used for the Clifford canaries) and the dense
//! statevector engine otherwise (exact, used by the Oracle baseline).

use rand::rngs::StdRng;
use rand::SeedableRng;

use qrio_backend::Backend;
use qrio_circuit::{Circuit, Gate};

use crate::counts::Counts;
use crate::error::SimulatorError;
use crate::noise::NoiseModel;
use crate::stabilizer::StabilizerSimulator;
use crate::statevector::{StateVector, MAX_STATEVECTOR_QUBITS};

/// Default number of shots used across the experiments when the caller does
/// not specify one.
pub const DEFAULT_SHOTS: u64 = 1024;

/// Which simulation engine executed a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// CHP stabilizer tableau (Clifford-only, scales to hundreds of qubits).
    Stabilizer,
    /// Dense statevector (any gate set, limited qubit count).
    Statevector,
}

/// Select the engine for a circuit: stabilizer when the circuit is Clifford,
/// statevector otherwise.
///
/// # Errors
///
/// Returns an error if the circuit is non-Clifford **and** too large for the
/// statevector engine.
pub fn select_engine(circuit: &Circuit) -> Result<Engine, SimulatorError> {
    if circuit.is_clifford() {
        Ok(Engine::Stabilizer)
    } else if circuit.num_qubits() <= MAX_STATEVECTOR_QUBITS {
        Ok(Engine::Statevector)
    } else {
        Err(SimulatorError::TooManyQubits {
            requested: circuit.num_qubits(),
            limit: MAX_STATEVECTOR_QUBITS,
        })
    }
}

/// Run a circuit without noise.
///
/// # Errors
///
/// Returns an error for unsupported circuits (non-Clifford beyond the
/// statevector limit) or zero shots.
pub fn run_ideal(circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimulatorError> {
    run_with_noise(
        circuit,
        &NoiseModel::ideal(circuit.num_qubits()),
        shots,
        seed,
    )
}

/// Run a circuit with a noise model derived from `backend`.
///
/// The circuit is expected to already be expressed over the backend's physical
/// qubits (i.e. transpiled); un-calibrated qubit pairs fall back to the
/// device-average two-qubit error.
///
/// # Errors
///
/// Returns an error for unsupported circuits or zero shots.
pub fn run_on_backend(
    circuit: &Circuit,
    backend: &Backend,
    shots: u64,
    seed: u64,
) -> Result<Counts, SimulatorError> {
    run_with_noise(circuit, &NoiseModel::from_backend(backend), shots, seed)
}

/// Run a circuit under an explicit noise model.
///
/// # Errors
///
/// Returns an error for unsupported circuits or zero shots.
pub fn run_with_noise(
    circuit: &Circuit,
    noise: &NoiseModel,
    shots: u64,
    seed: u64,
) -> Result<Counts, SimulatorError> {
    if shots == 0 {
        return Err(SimulatorError::InvalidParameter(
            "shots must be >= 1".into(),
        ));
    }
    let engine = select_engine(circuit)?;
    let num_bits = effective_num_bits(circuit);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = Counts::new(num_bits);
    match engine {
        Engine::Stabilizer => {
            for _ in 0..shots {
                let outcome = run_stabilizer_shot(circuit, noise, &mut rng)?;
                counts.record(outcome);
            }
        }
        Engine::Statevector => {
            if noise.is_ideal() && has_only_terminal_measurements(circuit) {
                // Fast path: build the state once and sample repeatedly.
                let mut state = StateVector::new(circuit.num_qubits())?;
                state.apply_circuit(circuit)?;
                let mapping = measurement_mapping(circuit);
                for _ in 0..shots {
                    let basis = state.sample(&mut rng);
                    counts.record(map_outcome(basis, &mapping));
                }
            } else {
                for _ in 0..shots {
                    let outcome = run_statevector_shot(circuit, noise, &mut rng)?;
                    counts.record(outcome);
                }
            }
        }
    }
    Ok(counts)
}

/// The classical register width used for recorded outcomes.
fn effective_num_bits(circuit: &Circuit) -> usize {
    if circuit.measurement_count() > 0 {
        circuit.num_clbits().max(1)
    } else {
        circuit.num_qubits().max(1)
    }
}

/// Measurement map `qubit -> clbit`; when the circuit has no measurements,
/// every qubit is implicitly measured into the same-numbered bit.
fn measurement_mapping(circuit: &Circuit) -> Vec<(usize, usize)> {
    let mut mapping = Vec::new();
    for inst in circuit.instructions() {
        if inst.gate == Gate::Measure {
            mapping.push((inst.qubits[0], inst.clbits[0]));
        }
    }
    if mapping.is_empty() {
        mapping = (0..circuit.num_qubits()).map(|q| (q, q)).collect();
    }
    mapping
}

fn map_outcome(basis_state: u64, mapping: &[(usize, usize)]) -> u64 {
    let mut outcome = 0u64;
    for &(qubit, clbit) in mapping {
        if (basis_state >> qubit) & 1 == 1 {
            outcome |= 1 << clbit;
        }
    }
    outcome
}

fn has_only_terminal_measurements(circuit: &Circuit) -> bool {
    let mut seen_measure = false;
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Measure => seen_measure = true,
            Gate::Reset => return false,
            Gate::Barrier => {}
            _ if seen_measure => return false,
            _ => {}
        }
    }
    true
}

fn run_stabilizer_shot(
    circuit: &Circuit,
    noise: &NoiseModel,
    rng: &mut StdRng,
) -> Result<u64, SimulatorError> {
    let mut sim = StabilizerSimulator::new(circuit.num_qubits());
    let mut outcome = 0u64;
    let mut any_measure = false;
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Barrier => {}
            Gate::Measure => {
                any_measure = true;
                let raw = sim.measure(inst.qubits[0], rng);
                let bit = noise.flip_readout(inst.qubits[0], raw, rng);
                if bit {
                    outcome |= 1 << inst.clbits[0];
                } else {
                    outcome &= !(1 << inst.clbits[0]);
                }
            }
            Gate::Reset => {
                if sim.measure(inst.qubits[0], rng) {
                    sim.x_gate(inst.qubits[0]);
                }
            }
            ref gate => {
                sim.apply_gate(gate, &inst.qubits)?;
                for (q, pauli) in noise.sample_gate_errors(gate, &inst.qubits, rng) {
                    sim.apply_gate(&pauli.gate(), &[q])?;
                }
            }
        }
    }
    if !any_measure {
        for q in 0..circuit.num_qubits() {
            let raw = sim.measure(q, rng);
            if noise.flip_readout(q, raw, rng) {
                outcome |= 1 << q;
            }
        }
    }
    Ok(outcome)
}

fn run_statevector_shot(
    circuit: &Circuit,
    noise: &NoiseModel,
    rng: &mut StdRng,
) -> Result<u64, SimulatorError> {
    let mut state = StateVector::new(circuit.num_qubits())?;
    let mut outcome = 0u64;
    let mut any_measure = false;
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Barrier => {}
            Gate::Measure => {
                any_measure = true;
                let raw = state.measure_qubit(inst.qubits[0], rng);
                let bit = noise.flip_readout(inst.qubits[0], raw, rng);
                if bit {
                    outcome |= 1 << inst.clbits[0];
                } else {
                    outcome &= !(1 << inst.clbits[0]);
                }
            }
            Gate::Reset => state.reset_qubit(inst.qubits[0], rng),
            ref gate => {
                state.apply_gate(gate, &inst.qubits)?;
                for (q, pauli) in noise.sample_gate_errors(gate, &inst.qubits, rng) {
                    state.apply_gate(&pauli.gate(), &[q])?;
                }
            }
        }
    }
    if !any_measure {
        let basis = state.sample(rng);
        outcome = basis;
    }
    Ok(outcome)
}

/// Convenience wrapper: fidelity of a circuit on a noisy backend relative to
/// its own noise-free execution, measured as Hellinger fidelity between the
/// two output distributions.
///
/// # Errors
///
/// Propagates simulator errors from either run.
pub fn fidelity_on_backend(
    circuit: &Circuit,
    backend: &Backend,
    shots: u64,
    seed: u64,
) -> Result<f64, SimulatorError> {
    let ideal = run_ideal(circuit, shots, seed)?;
    let noisy = run_on_backend(circuit, backend, shots, seed.wrapping_add(1))?;
    Ok(ideal.hellinger_fidelity(&noisy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use qrio_circuit::library;

    #[test]
    fn ideal_bv_returns_secret() {
        let secret = 0b1011001101u64;
        let circuit = library::bernstein_vazirani(10, secret).unwrap();
        let counts = run_ideal(&circuit, 256, 1).unwrap();
        assert_eq!(counts.most_frequent(), Some(secret));
        assert!((counts.success_probability(secret) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_grover_favours_marked_element() {
        let circuit = library::grover(3, 5).unwrap();
        let counts = run_ideal(&circuit, 2048, 2).unwrap();
        assert_eq!(counts.most_frequent(), Some(5));
        assert!(counts.success_probability(5) > 0.5);
    }

    #[test]
    fn ideal_ghz_is_bimodal() {
        let circuit = library::ghz(5).unwrap();
        let counts = run_ideal(&circuit, 1000, 3).unwrap();
        let all_ones = (1u64 << 5) - 1;
        let p = counts.probability(0) + counts.probability(all_ones);
        assert!(p > 0.999);
        assert!(counts.probability(0) > 0.35);
    }

    #[test]
    fn engine_selection() {
        let clifford = library::random_clifford_circuit(40, 4, 0).unwrap();
        assert_eq!(select_engine(&clifford).unwrap(), Engine::Stabilizer);
        let small = library::random_circuit(5, 3, 0).unwrap();
        assert_eq!(select_engine(&small).unwrap(), Engine::Statevector);
        let huge = library::random_circuit(30, 2, 0).unwrap();
        assert!(select_engine(&huge).is_err());
    }

    #[test]
    fn zero_shots_is_rejected() {
        let circuit = library::ghz(2).unwrap();
        assert!(run_ideal(&circuit, 0, 0).is_err());
    }

    #[test]
    fn noise_degrades_fidelity() {
        let circuit = library::ghz(4).unwrap();
        let noisy_backend = Backend::uniform("noisy", topology::line(4), 0.05, 0.2);
        let clean_backend = Backend::uniform("clean", topology::line(4), 0.0, 0.0);
        let f_noisy = fidelity_on_backend(&circuit, &noisy_backend, 512, 7).unwrap();
        let f_clean = fidelity_on_backend(&circuit, &clean_backend, 512, 7).unwrap();
        assert!(f_clean > 0.98, "clean fidelity was {f_clean}");
        assert!(
            f_noisy < f_clean,
            "noise should reduce fidelity ({f_noisy} vs {f_clean})"
        );
    }

    #[test]
    fn readout_noise_alone_flips_bits() {
        let mut circuit = Circuit::new(2, 2);
        circuit.measure_all().unwrap();
        let noise = NoiseModel::uniform(2, 0.0, 0.0, 1.0);
        let counts = run_with_noise(&circuit, &noise, 64, 5).unwrap();
        // Every readout is flipped, so we always observe |11>.
        assert_eq!(counts.get(0b11), 64);
    }

    #[test]
    fn clifford_and_statevector_agree_on_clifford_circuits() {
        // The repetition encoder is Clifford; force the statevector engine by
        // adding a harmless non-Clifford phase on an idle path.
        let clifford = library::repetition_code_encoder(4).unwrap();
        let counts_stab = run_ideal(&clifford, 4000, 11).unwrap();

        let mut nonclifford = library::repetition_code_encoder(4)
            .unwrap()
            .without_measurements();
        nonclifford.t(0).unwrap();
        nonclifford.tdg(0).unwrap();
        nonclifford.measure_all().unwrap();
        let counts_sv = run_ideal(&nonclifford, 4000, 11).unwrap();

        let fidelity = counts_stab.hellinger_fidelity(&counts_sv);
        assert!(fidelity > 0.98, "engines disagree: {fidelity}");
    }

    #[test]
    fn circuits_without_measurements_measure_everything() {
        let mut circuit = Circuit::new(3, 0);
        circuit.x(1).unwrap();
        let counts = run_ideal(&circuit, 16, 0).unwrap();
        assert_eq!(counts.most_frequent(), Some(0b010));
        let mut nonclifford = Circuit::new(2, 0);
        nonclifford.t(0).unwrap();
        nonclifford.x(1).unwrap();
        let counts = run_ideal(&nonclifford, 16, 0).unwrap();
        assert_eq!(counts.most_frequent(), Some(0b10));
    }

    #[test]
    fn reset_in_the_middle_works() {
        let mut circuit = Circuit::new(1, 1);
        circuit.x(0).unwrap();
        circuit.reset(0).unwrap();
        circuit.measure(0, 0).unwrap();
        let counts = run_ideal(&circuit, 32, 4).unwrap();
        assert_eq!(counts.get(0), 32);
        // Same for a non-Clifford variant.
        let mut circuit = Circuit::new(1, 1);
        circuit.t(0).unwrap();
        circuit.x(0).unwrap();
        circuit.reset(0).unwrap();
        circuit.measure(0, 0).unwrap();
        let counts = run_ideal(&circuit, 32, 4).unwrap();
        assert_eq!(counts.get(0), 32);
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let circuit = library::random_circuit(5, 4, 9).unwrap();
        let noise = NoiseModel::uniform(5, 0.02, 0.05, 0.02);
        let a = run_with_noise(&circuit, &noise, 200, 21).unwrap();
        let b = run_with_noise(&circuit, &noise, 200, 21).unwrap();
        assert_eq!(a, b);
        let c = run_with_noise(&circuit, &noise, 200, 22).unwrap();
        assert_ne!(a, c);
    }
}
