//! Circuit execution: shot sampling on ideal or noisy simulated devices.
//!
//! The executor plays the role of Qiskit Aer in the paper's stack: given a
//! circuit (and optionally a backend-derived [`NoiseModel`]), produce
//! measurement [`Counts`]. It automatically picks the stabilizer engine for
//! Clifford circuits (scalable, used for the Clifford canaries) and the dense
//! statevector engine otherwise (exact, used by the Oracle baseline).
//!
//! # Throughput
//!
//! Three layers of optimisation keep the shot loop fast:
//!
//! * **Ideal terminal-measurement fast paths.** When the noise model is ideal
//!   and every measurement is terminal, the circuit is applied **once**: the
//!   stabilizer engine snapshots the tableau and clones it per shot (a few
//!   hundred bytes of `memcpy` instead of a full circuit replay), and the
//!   statevector engine samples a precomputed [`CumulativeDistribution`] by
//!   binary search (O(n) per shot instead of O(2^n)).
//! * **Pauli-frame batched shots for noisy Clifford circuits.** When the
//!   circuit is Clifford with terminal measurements but the noise model is
//!   *not* ideal, a [`FramePlan`] compiles the ideal
//!   tableau and the noise sites once; each shot then propagates only an
//!   n-qubit Pauli frame (two `u64` masks per 64 qubits) and draws from the
//!   RNG in the exact order of the replay path — byte-identical histograms,
//!   orders of magnitude less work. Mid-circuit measure/reset falls back to
//!   per-shot replay (the analyzer flags this as lint QL0008).
//! * **Deterministic parallel shards.** Shots are split into fixed-size
//!   shards; shard `s` runs on its own `StdRng` seeded with
//!   `seed + s`, and shard histograms merge commutatively. The shard
//!   structure depends only on the shot count — never on the thread count —
//!   so a run is bit-reproducible whether it executes on 1 thread or 16.
//!   [`ParallelConfig`] selects the worker count; the default uses the
//!   machine's available parallelism (capped) with `std::thread::scope`.
//!
//! Because consecutive seeds own consecutive shard streams, callers that
//! execute *paired* runs (ideal vs. noisy) should separate the two seeds by
//! [`SEED_STREAM_STRIDE`] rather than by 1, so the pair never shares a shard
//! stream.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

use qrio_backend::Backend;
use qrio_circuit::{Circuit, Gate};

use crate::counts::Counts;
use crate::error::SimulatorError;
use crate::frame::FramePlan;
use crate::noise::NoiseModel;
use crate::stabilizer::StabilizerSimulator;
use crate::statevector::{CumulativeDistribution, StateVector, MAX_STATEVECTOR_QUBITS};

/// Default number of shots used across the experiments when the caller does
/// not specify one.
pub const DEFAULT_SHOTS: u64 = 1024;

/// Shots per execution shard. Each shard owns an independent RNG stream
/// seeded `seed + shard_index`, so the histogram depends only on `(circuit,
/// noise, shots, seed)` — not on how shards are spread over threads.
const SHARD_SHOTS: u64 = 64;

/// Seed offset callers should use to separate *paired* runs (e.g. the ideal
/// and noisy halves of a fidelity estimate). Shard `s` of a run seeds its RNG
/// with `seed + s`; two runs whose base seeds differ by less than the shard
/// count would share shard streams. `SEED_STREAM_STRIDE` leaves room for
/// ~2^32 shards (≈ 274 billion shots) per run.
pub const SEED_STREAM_STRIDE: u64 = 1 << 32;

/// Largest worker count [`ParallelConfig::auto`] will pick on big machines.
const MAX_AUTO_THREADS: usize = 8;

/// Hard ceiling on explicit worker counts. Job specs travel as YAML, so a
/// typo'd (or hostile) `threads: 100000` must not translate into an attempt
/// to spawn 100 000 OS threads on the node.
const MAX_THREADS: usize = 64;

/// Memory budget for the statevector *replay* path, in amplitudes: each
/// worker owns a full `2^n` state there, so workers are additionally capped
/// to `MAX_REPLAY_AMPLITUDES >> n` (≈ 512 MiB of `Complex64` total).
const MAX_REPLAY_AMPLITUDES: usize = 1 << 25;

/// Worker-thread configuration for shot execution.
///
/// The thread count changes *wall-clock time only*: results are
/// bit-reproducible across any thread count at a fixed seed, because the
/// RNG shard structure is derived from the shot count alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Requested worker threads; `0` means auto-detect.
    threads: usize,
}

impl ParallelConfig {
    /// Auto-detect: use the machine's available parallelism, capped at 8.
    pub fn auto() -> Self {
        ParallelConfig { threads: 0 }
    }

    /// Single-threaded execution (still sharded, so results match any other
    /// thread count).
    pub fn serial() -> Self {
        ParallelConfig { threads: 1 }
    }

    /// An explicit worker count; `0` behaves like [`ParallelConfig::auto`].
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig { threads }
    }

    /// The raw configured value (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The concrete worker count this configuration resolves to. Explicit
    /// counts are clamped to a hard ceiling of 64, since specs arrive as
    /// YAML and a runaway `threads:` value must not exhaust the node.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(MAX_AUTO_THREADS),
            n => n.min(MAX_THREADS),
        }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::auto()
    }
}

/// Which simulation engine executed a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// CHP stabilizer tableau (Clifford-only, scales to hundreds of qubits).
    Stabilizer,
    /// Dense statevector (any gate set, limited qubit count).
    Statevector,
}

/// Select the engine for a circuit: stabilizer when the circuit is Clifford,
/// statevector otherwise.
///
/// # Errors
///
/// Returns an error if the circuit is non-Clifford **and** too large for the
/// statevector engine.
pub fn select_engine(circuit: &Circuit) -> Result<Engine, SimulatorError> {
    if circuit.is_clifford() {
        Ok(Engine::Stabilizer)
    } else if circuit.num_qubits() <= MAX_STATEVECTOR_QUBITS {
        Ok(Engine::Statevector)
    } else {
        Err(SimulatorError::TooManyQubits {
            requested: circuit.num_qubits(),
            limit: MAX_STATEVECTOR_QUBITS,
        })
    }
}

/// Run a circuit without noise, with the default [`ParallelConfig`].
///
/// # Errors
///
/// Returns an error for unsupported circuits (non-Clifford beyond the
/// statevector limit) or zero shots.
pub fn run_ideal(circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimulatorError> {
    run_ideal_parallel(circuit, shots, seed, &ParallelConfig::default())
}

/// Run a circuit without noise under an explicit [`ParallelConfig`].
///
/// # Errors
///
/// Returns an error for unsupported circuits or zero shots.
pub fn run_ideal_parallel(
    circuit: &Circuit,
    shots: u64,
    seed: u64,
    parallel: &ParallelConfig,
) -> Result<Counts, SimulatorError> {
    run_with_noise_parallel(
        circuit,
        &NoiseModel::ideal(circuit.num_qubits()),
        shots,
        seed,
        parallel,
    )
}

/// Run a circuit with a noise model derived from `backend`, with the default
/// [`ParallelConfig`].
///
/// The circuit is expected to already be expressed over the backend's physical
/// qubits (i.e. transpiled); un-calibrated qubit pairs fall back to the
/// device-average two-qubit error.
///
/// # Errors
///
/// Returns an error for unsupported circuits or zero shots.
pub fn run_on_backend(
    circuit: &Circuit,
    backend: &Backend,
    shots: u64,
    seed: u64,
) -> Result<Counts, SimulatorError> {
    run_with_noise(circuit, &NoiseModel::from_backend(backend), shots, seed)
}

/// Run a circuit with a backend-derived noise model under an explicit
/// [`ParallelConfig`].
///
/// # Errors
///
/// Returns an error for unsupported circuits or zero shots.
pub fn run_on_backend_parallel(
    circuit: &Circuit,
    backend: &Backend,
    shots: u64,
    seed: u64,
    parallel: &ParallelConfig,
) -> Result<Counts, SimulatorError> {
    run_with_noise_parallel(
        circuit,
        &NoiseModel::from_backend(backend),
        shots,
        seed,
        parallel,
    )
}

/// Run a circuit under an explicit noise model, with the default
/// [`ParallelConfig`].
///
/// # Errors
///
/// Returns an error for unsupported circuits or zero shots.
pub fn run_with_noise(
    circuit: &Circuit,
    noise: &NoiseModel,
    shots: u64,
    seed: u64,
) -> Result<Counts, SimulatorError> {
    run_with_noise_parallel(circuit, noise, shots, seed, &ParallelConfig::default())
}

/// Which per-shot strategy [`run_with_noise_path`] should use for a
/// stabilizer-engine circuit. The paths are byte-identical where they
/// overlap — [`ExecutionPath::Frame`] and [`ExecutionPath::Replay`] draw from
/// the RNG in the same order — so forcing one is only useful for
/// differential testing and benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionPath {
    /// Pick automatically: ideal fast path, then the Pauli-frame path when
    /// eligible, then per-shot replay.
    #[default]
    Auto,
    /// Force per-shot replay (full tableau / statevector rebuild per shot).
    Replay,
    /// Force the Pauli-frame batched-shot path. Errors when the circuit is
    /// not frame-eligible (non-Clifford, mid-circuit measure/reset, or more
    /// than 64 random-outcome measurements).
    Frame,
}

/// The prepared per-run execution mode, built once and shared by every shard.
enum Prepared {
    /// Ideal terminal-measurement Clifford circuit: the tableau after all
    /// unitaries, cloned per shot for measurement sampling.
    StabilizerFast {
        tableau: StabilizerSimulator,
        mapping: Vec<(usize, usize)>,
    },
    /// Noisy terminal-measurement Clifford circuit: propagate an n-qubit
    /// Pauli frame per shot through a precompiled [`FramePlan`]
    /// (byte-identical to replay, orders of magnitude faster).
    StabilizerFrame(FramePlan),
    /// General stabilizer path: replay the circuit per shot (mid-circuit
    /// measurement/reset, or >64 random-outcome measurements).
    StabilizerReplay,
    /// Ideal terminal-measurement dense circuit: sample the precomputed
    /// cumulative distribution per shot.
    StatevectorFast {
        table: CumulativeDistribution,
        mapping: Vec<(usize, usize)>,
    },
    /// General statevector path: replay the circuit per shot.
    StatevectorReplay,
}

/// Run a circuit under an explicit noise model and [`ParallelConfig`].
///
/// Shots are split into fixed-size shards; shard `s` draws from
/// `StdRng::seed_from_u64(seed + s)` and shard histograms are merged
/// commutatively, so the result is identical for every thread count.
///
/// # Errors
///
/// Returns an error for unsupported circuits or zero shots. When several
/// shards fail, the error of the lowest-numbered shard is returned
/// (deterministic regardless of scheduling).
pub fn run_with_noise_parallel(
    circuit: &Circuit,
    noise: &NoiseModel,
    shots: u64,
    seed: u64,
    parallel: &ParallelConfig,
) -> Result<Counts, SimulatorError> {
    run_with_noise_path(circuit, noise, shots, seed, parallel, ExecutionPath::Auto)
}

/// [`run_with_noise_parallel`] with an explicit [`ExecutionPath`], for
/// differential testing and benchmarking of the per-shot strategies.
///
/// # Errors
///
/// As [`run_with_noise_parallel`]; additionally, [`ExecutionPath::Frame`]
/// errors when the circuit is not frame-eligible.
pub fn run_with_noise_path(
    circuit: &Circuit,
    noise: &NoiseModel,
    shots: u64,
    seed: u64,
    parallel: &ParallelConfig,
    path: ExecutionPath,
) -> Result<Counts, SimulatorError> {
    if shots == 0 {
        return Err(SimulatorError::InvalidParameter(
            "shots must be >= 1".into(),
        ));
    }
    validate_outcome_register(circuit)?;
    let engine = select_engine(circuit)?;
    let num_bits = effective_num_bits(circuit);
    let fast_path =
        path == ExecutionPath::Auto && noise.is_ideal() && has_only_terminal_measurements(circuit);
    let prepared = match engine {
        Engine::Stabilizer if fast_path => {
            let mut tableau = StabilizerSimulator::new(circuit.num_qubits());
            tableau.apply_circuit(circuit)?;
            Prepared::StabilizerFast {
                tableau,
                mapping: measurement_mapping(circuit),
            }
        }
        Engine::Stabilizer => match path {
            ExecutionPath::Replay => Prepared::StabilizerReplay,
            ExecutionPath::Auto | ExecutionPath::Frame => match FramePlan::build(circuit, noise)? {
                Some(plan) => Prepared::StabilizerFrame(plan),
                None if path == ExecutionPath::Frame => {
                    return Err(SimulatorError::Unsupported(
                        "circuit is not eligible for the Pauli-frame path \
                             (mid-circuit measure/reset or >64 random measurements)"
                            .into(),
                    ));
                }
                None => Prepared::StabilizerReplay,
            },
        },
        Engine::Statevector if fast_path => {
            let mut state = StateVector::new(circuit.num_qubits())?;
            state.apply_circuit(circuit)?;
            Prepared::StatevectorFast {
                table: state.cumulative_distribution(),
                mapping: measurement_mapping(circuit),
            }
        }
        Engine::Statevector if path == ExecutionPath::Frame => {
            return Err(SimulatorError::Unsupported(
                "the Pauli-frame path requires the stabilizer engine (Clifford circuit)".into(),
            ));
        }
        Engine::Statevector => Prepared::StatevectorReplay,
    };

    let shard_count = shots.div_ceil(SHARD_SHOTS);
    let run_shard = |shard: u64| -> Result<Counts, SimulatorError> {
        let first = shard * SHARD_SHOTS;
        let shard_shots = SHARD_SHOTS.min(shots - first);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(shard));
        let mut counts = Counts::new(num_bits);
        let mut frame_scratch = match &prepared {
            Prepared::StabilizerFrame(plan) => Some(plan.scratch()),
            _ => None,
        };
        for _ in 0..shard_shots {
            let outcome = match &prepared {
                Prepared::StabilizerFast { tableau, mapping } => {
                    let mut sim = tableau.clone();
                    let mut outcome = 0u64;
                    for &(qubit, clbit) in mapping {
                        if sim.measure(qubit, &mut rng) {
                            outcome |= 1 << clbit;
                        }
                    }
                    outcome
                }
                Prepared::StabilizerFrame(plan) => plan.run_shot(
                    &mut rng,
                    frame_scratch.as_mut().expect("scratch built with the plan"),
                ),
                Prepared::StabilizerReplay => run_stabilizer_shot(circuit, noise, &mut rng)?,
                Prepared::StatevectorFast { table, mapping } => {
                    map_outcome(table.sample(&mut rng), mapping)
                }
                Prepared::StatevectorReplay => run_statevector_shot(circuit, noise, &mut rng)?,
            };
            counts.record(outcome);
        }
        Ok(counts)
    };

    // The statevector replay path allocates one full 2^n state per worker;
    // bound the aggregate footprint so eight 24-qubit replays cannot pile up
    // 2 GiB where the serial loop used 256 MiB.
    let memory_cap = match &prepared {
        Prepared::StatevectorReplay => (MAX_REPLAY_AMPLITUDES >> circuit.num_qubits()).max(1),
        _ => usize::MAX,
    };
    let workers = parallel
        .effective_threads()
        .max(1)
        .min(shard_count as usize)
        .min(memory_cap);
    let results: Vec<Result<Counts, SimulatorError>> = if workers <= 1 {
        (0..shard_count).map(run_shard).collect()
    } else {
        let next = AtomicU64::new(0);
        let run_shard = &run_shard;
        let mut slots: Vec<Option<Result<Counts, SimulatorError>>> = Vec::new();
        slots.resize_with(shard_count as usize, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let shard = next.fetch_add(1, Ordering::Relaxed);
                            if shard >= shard_count {
                                break;
                            }
                            local.push((shard, run_shard(shard)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                let batch = handle.join().expect("shard worker panicked");
                for (shard, result) in batch {
                    slots[shard as usize] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every shard index was claimed by a worker"))
            .collect()
    };

    let mut counts = Counts::new(num_bits);
    for result in results {
        counts.merge(&result?);
    }
    Ok(counts)
}

/// The classical register width used for recorded outcomes.
fn effective_num_bits(circuit: &Circuit) -> usize {
    if circuit.measurement_count() > 0 {
        circuit.num_clbits().max(1)
    } else {
        circuit.num_qubits().max(1)
    }
}

/// Measurement map `qubit -> clbit`; when the circuit has no measurements,
/// every qubit is implicitly measured into the same-numbered bit.
fn measurement_mapping(circuit: &Circuit) -> Vec<(usize, usize)> {
    let mut mapping = Vec::new();
    for inst in circuit.instructions() {
        if inst.gate == Gate::Measure {
            mapping.push((inst.qubits[0], inst.clbits[0]));
        }
    }
    if mapping.is_empty() {
        mapping = (0..circuit.num_qubits()).map(|q| (q, q)).collect();
    }
    mapping
}

fn map_outcome(basis_state: u64, mapping: &[(usize, usize)]) -> u64 {
    let mut outcome = 0u64;
    for &(qubit, clbit) in mapping {
        if (basis_state >> qubit) & 1 == 1 {
            outcome |= 1 << clbit;
        }
    }
    outcome
}

/// Width of the packed `u64` outcome register every shot loop writes into.
const OUTCOME_REGISTER_BITS: usize = 64;

/// Reject circuits whose outcomes cannot be packed into the 64-bit outcome
/// register: an explicit measurement into classical bit ≥ 64, or a
/// measurement-free circuit (implicitly measured qubit-per-bit) wider than
/// 64 qubits. Validated up front so the shot loops never evaluate
/// `1 << bit` with `bit >= 64` — a panic in debug builds and a silent wrap
/// in release builds.
fn validate_outcome_register(circuit: &Circuit) -> Result<(), SimulatorError> {
    let mut any_measure = false;
    for inst in circuit.instructions() {
        if inst.gate == Gate::Measure {
            any_measure = true;
            if inst.clbits[0] >= OUTCOME_REGISTER_BITS {
                return Err(SimulatorError::ClassicalBitOutOfRange {
                    bit: inst.clbits[0],
                    limit: OUTCOME_REGISTER_BITS,
                });
            }
        }
    }
    if !any_measure && circuit.num_qubits() > OUTCOME_REGISTER_BITS {
        return Err(SimulatorError::ClassicalBitOutOfRange {
            bit: circuit.num_qubits() - 1,
            limit: OUTCOME_REGISTER_BITS,
        });
    }
    Ok(())
}

pub(crate) fn has_only_terminal_measurements(circuit: &Circuit) -> bool {
    let mut seen_measure = false;
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Measure => seen_measure = true,
            Gate::Reset => return false,
            Gate::Barrier => {}
            _ if seen_measure => return false,
            _ => {}
        }
    }
    true
}

fn run_stabilizer_shot(
    circuit: &Circuit,
    noise: &NoiseModel,
    rng: &mut StdRng,
) -> Result<u64, SimulatorError> {
    let mut sim = StabilizerSimulator::new(circuit.num_qubits());
    let mut outcome = 0u64;
    let mut any_measure = false;
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Barrier => {}
            Gate::Measure => {
                any_measure = true;
                let raw = sim.measure(inst.qubits[0], rng);
                let bit = noise.flip_readout(inst.qubits[0], raw, rng);
                if bit {
                    outcome |= 1 << inst.clbits[0];
                } else {
                    outcome &= !(1 << inst.clbits[0]);
                }
            }
            Gate::Reset => {
                // The internal collapse is not a classical readout, so no
                // readout flip — but the reset pulse itself carries the
                // qubit's single-qubit error (see `sample_reset_error`).
                if sim.measure(inst.qubits[0], rng) {
                    sim.x_gate(inst.qubits[0]);
                }
                if let Some(pauli) = noise.sample_reset_error(inst.qubits[0], rng) {
                    sim.apply_gate(&pauli.gate(), &[inst.qubits[0]])?;
                }
            }
            ref gate => {
                sim.apply_gate(gate, &inst.qubits)?;
                for (q, pauli) in noise.sample_gate_errors(gate, &inst.qubits, rng) {
                    sim.apply_gate(&pauli.gate(), &[q])?;
                }
            }
        }
    }
    if !any_measure {
        for q in 0..circuit.num_qubits() {
            let raw = sim.measure(q, rng);
            if noise.flip_readout(q, raw, rng) {
                outcome |= 1 << q;
            }
        }
    }
    Ok(outcome)
}

fn run_statevector_shot(
    circuit: &Circuit,
    noise: &NoiseModel,
    rng: &mut StdRng,
) -> Result<u64, SimulatorError> {
    let mut state = StateVector::new(circuit.num_qubits())?;
    let mut outcome = 0u64;
    let mut any_measure = false;
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Barrier => {}
            Gate::Measure => {
                any_measure = true;
                let raw = state.measure_qubit(inst.qubits[0], rng);
                let bit = noise.flip_readout(inst.qubits[0], raw, rng);
                if bit {
                    outcome |= 1 << inst.clbits[0];
                } else {
                    outcome &= !(1 << inst.clbits[0]);
                }
            }
            Gate::Reset => {
                // Same semantics as the stabilizer path: ideal collapse (no
                // readout flip), then the qubit's single-qubit gate error.
                state.reset_qubit(inst.qubits[0], rng);
                if let Some(pauli) = noise.sample_reset_error(inst.qubits[0], rng) {
                    state.apply_gate(&pauli.gate(), &[inst.qubits[0]])?;
                }
            }
            ref gate => {
                state.apply_gate(gate, &inst.qubits)?;
                for (q, pauli) in noise.sample_gate_errors(gate, &inst.qubits, rng) {
                    state.apply_gate(&pauli.gate(), &[q])?;
                }
            }
        }
    }
    if !any_measure {
        let basis = state.sample(rng);
        outcome = basis;
    }
    Ok(outcome)
}

/// Convenience wrapper: fidelity of a circuit on a noisy backend relative to
/// its own noise-free execution, measured as Hellinger fidelity between the
/// two output distributions. The noisy half runs [`SEED_STREAM_STRIDE`] away
/// from the ideal half so the two runs never share a shard RNG stream.
///
/// # Errors
///
/// Propagates simulator errors from either run.
pub fn fidelity_on_backend(
    circuit: &Circuit,
    backend: &Backend,
    shots: u64,
    seed: u64,
) -> Result<f64, SimulatorError> {
    let ideal = run_ideal(circuit, shots, seed)?;
    let noisy = run_on_backend(
        circuit,
        backend,
        shots,
        seed.wrapping_add(SEED_STREAM_STRIDE),
    )?;
    Ok(ideal.hellinger_fidelity(&noisy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use qrio_circuit::library;

    #[test]
    fn ideal_bv_returns_secret() {
        let secret = 0b1011001101u64;
        let circuit = library::bernstein_vazirani(10, secret).unwrap();
        let counts = run_ideal(&circuit, 256, 1).unwrap();
        assert_eq!(counts.most_frequent(), Some(secret));
        assert!((counts.success_probability(secret) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_grover_favours_marked_element() {
        let circuit = library::grover(3, 5).unwrap();
        let counts = run_ideal(&circuit, 2048, 2).unwrap();
        assert_eq!(counts.most_frequent(), Some(5));
        assert!(counts.success_probability(5) > 0.5);
    }

    #[test]
    fn ideal_ghz_is_bimodal() {
        let circuit = library::ghz(5).unwrap();
        let counts = run_ideal(&circuit, 1000, 3).unwrap();
        let all_ones = (1u64 << 5) - 1;
        let p = counts.probability(0) + counts.probability(all_ones);
        assert!(p > 0.999);
        assert!(counts.probability(0) > 0.35);
    }

    #[test]
    fn engine_selection() {
        let clifford = library::random_clifford_circuit(40, 4, 0).unwrap();
        assert_eq!(select_engine(&clifford).unwrap(), Engine::Stabilizer);
        let small = library::random_circuit(5, 3, 0).unwrap();
        assert_eq!(select_engine(&small).unwrap(), Engine::Statevector);
        let huge = library::random_circuit(30, 2, 0).unwrap();
        assert!(select_engine(&huge).is_err());
    }

    #[test]
    fn zero_shots_is_rejected() {
        let circuit = library::ghz(2).unwrap();
        assert!(run_ideal(&circuit, 0, 0).is_err());
    }

    #[test]
    fn noise_degrades_fidelity() {
        let circuit = library::ghz(4).unwrap();
        let noisy_backend = Backend::uniform("noisy", topology::line(4), 0.05, 0.2);
        let clean_backend = Backend::uniform("clean", topology::line(4), 0.0, 0.0);
        let f_noisy = fidelity_on_backend(&circuit, &noisy_backend, 512, 7).unwrap();
        let f_clean = fidelity_on_backend(&circuit, &clean_backend, 512, 7).unwrap();
        assert!(f_clean > 0.98, "clean fidelity was {f_clean}");
        assert!(
            f_noisy < f_clean,
            "noise should reduce fidelity ({f_noisy} vs {f_clean})"
        );
    }

    #[test]
    fn readout_noise_alone_flips_bits() {
        let mut circuit = Circuit::new(2, 2);
        circuit.measure_all().unwrap();
        let noise = NoiseModel::uniform(2, 0.0, 0.0, 1.0);
        let counts = run_with_noise(&circuit, &noise, 64, 5).unwrap();
        // Every readout is flipped, so we always observe |11>.
        assert_eq!(counts.get(0b11), 64);
    }

    #[test]
    fn clifford_and_statevector_agree_on_clifford_circuits() {
        // The repetition encoder is Clifford; force the statevector engine by
        // adding a harmless non-Clifford phase on an idle path.
        let clifford = library::repetition_code_encoder(4).unwrap();
        let counts_stab = run_ideal(&clifford, 4000, 11).unwrap();

        let mut nonclifford = library::repetition_code_encoder(4)
            .unwrap()
            .without_measurements();
        nonclifford.t(0).unwrap();
        nonclifford.tdg(0).unwrap();
        nonclifford.measure_all().unwrap();
        let counts_sv = run_ideal(&nonclifford, 4000, 11).unwrap();

        let fidelity = counts_stab.hellinger_fidelity(&counts_sv);
        assert!(fidelity > 0.98, "engines disagree: {fidelity}");
    }

    #[test]
    fn circuits_without_measurements_measure_everything() {
        let mut circuit = Circuit::new(3, 0);
        circuit.x(1).unwrap();
        let counts = run_ideal(&circuit, 16, 0).unwrap();
        assert_eq!(counts.most_frequent(), Some(0b010));
        let mut nonclifford = Circuit::new(2, 0);
        nonclifford.t(0).unwrap();
        nonclifford.x(1).unwrap();
        let counts = run_ideal(&nonclifford, 16, 0).unwrap();
        assert_eq!(counts.most_frequent(), Some(0b10));
    }

    #[test]
    fn reset_in_the_middle_works() {
        let mut circuit = Circuit::new(1, 1);
        circuit.x(0).unwrap();
        circuit.reset(0).unwrap();
        circuit.measure(0, 0).unwrap();
        let counts = run_ideal(&circuit, 32, 4).unwrap();
        assert_eq!(counts.get(0), 32);
        // Same for a non-Clifford variant.
        let mut circuit = Circuit::new(1, 1);
        circuit.t(0).unwrap();
        circuit.x(0).unwrap();
        circuit.reset(0).unwrap();
        circuit.measure(0, 0).unwrap();
        let counts = run_ideal(&circuit, 32, 4).unwrap();
        assert_eq!(counts.get(0), 32);
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let circuit = library::random_circuit(5, 4, 9).unwrap();
        let noise = NoiseModel::uniform(5, 0.02, 0.05, 0.02);
        let a = run_with_noise(&circuit, &noise, 200, 21).unwrap();
        let b = run_with_noise(&circuit, &noise, 200, 21).unwrap();
        assert_eq!(a, b);
        let c = run_with_noise(&circuit, &noise, 200, 22).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let clifford = library::random_clifford_circuit(12, 5, 3).unwrap();
        let noise = NoiseModel::uniform(12, 0.01, 0.05, 0.02);
        let serial =
            run_with_noise_parallel(&clifford, &noise, 600, 17, &ParallelConfig::serial()).unwrap();
        for threads in [2, 4, 8] {
            let parallel = run_with_noise_parallel(
                &clifford,
                &noise,
                600,
                17,
                &ParallelConfig::with_threads(threads),
            )
            .unwrap();
            assert_eq!(serial, parallel, "threads={threads} diverged");
        }
    }

    #[test]
    fn parallel_config_resolves_threads() {
        assert_eq!(ParallelConfig::serial().effective_threads(), 1);
        assert_eq!(ParallelConfig::with_threads(3).effective_threads(), 3);
        assert_eq!(ParallelConfig::with_threads(3).threads(), 3);
        assert!(ParallelConfig::auto().effective_threads() >= 1);
        assert_eq!(ParallelConfig::default(), ParallelConfig::auto());
        // A hostile/typo'd YAML thread count is clamped, not obeyed.
        assert_eq!(
            ParallelConfig::with_threads(100_000).effective_threads(),
            64
        );
    }

    #[test]
    fn hostile_thread_counts_still_run_and_reproduce() {
        let circuit = library::ghz(4).unwrap();
        let sane = run_ideal_parallel(&circuit, 200, 7, &ParallelConfig::serial()).unwrap();
        let wild =
            run_ideal_parallel(&circuit, 200, 7, &ParallelConfig::with_threads(100_000)).unwrap();
        assert_eq!(sane, wild);
    }

    #[test]
    fn reset_carries_single_qubit_noise_in_both_engines() {
        // Regression: reset used to be the only silently ideal operation in
        // a noisy circuit. With a certain single-qubit error, the reset
        // pulse faults with X/Y/Z uniformly, so outcomes are no longer
        // always |0>.
        let mut clifford = Circuit::new(1, 1);
        clifford.reset(0).unwrap();
        clifford.measure(0, 0).unwrap();
        let noisy = NoiseModel::uniform(1, 1.0, 0.0, 0.0);
        let counts = run_with_noise(&clifford, &noisy, 600, 41).unwrap();
        // X and Y faults (2/3 of draws) flip the reset qubit.
        assert!(
            counts.get(1) > 300,
            "stabilizer reset stayed ideal: {counts:?}"
        );
        let counts = run_with_noise(&clifford, &NoiseModel::ideal(1), 64, 41).unwrap();
        assert_eq!(counts.get(0), 64);

        // Same through the statevector engine (forced by a T·T† identity).
        let mut dense = Circuit::new(1, 1);
        dense.t(0).unwrap();
        dense.tdg(0).unwrap();
        dense.reset(0).unwrap();
        dense.measure(0, 0).unwrap();
        let counts = run_with_noise(&dense, &noisy, 600, 43).unwrap();
        assert!(
            counts.get(1) > 150,
            "statevector reset stayed ideal: {counts:?}"
        );
        let counts = run_with_noise(&dense, &NoiseModel::ideal(1), 64, 43).unwrap();
        assert_eq!(counts.get(0), 64);
    }

    #[test]
    fn classical_bits_beyond_outcome_register_are_rejected() {
        // Explicit measurement into bit 65 would shift past the u64 register.
        let mut wide = Circuit::new(70, 70);
        wide.h(0).unwrap();
        wide.measure(65, 65).unwrap();
        assert!(matches!(
            run_ideal(&wide, 16, 0),
            Err(SimulatorError::ClassicalBitOutOfRange { bit: 65, limit: 64 })
        ));

        // Measurement-free circuits implicitly measure every qubit.
        let mut implicit = Circuit::new(70, 0);
        implicit.x(0).unwrap();
        assert!(matches!(
            run_ideal(&implicit, 16, 0),
            Err(SimulatorError::ClassicalBitOutOfRange { bit: 69, limit: 64 })
        ));

        // A wide circuit measuring into low classical bits is fine.
        let mut ok = Circuit::new(70, 2);
        ok.h(0).unwrap();
        ok.cx(0, 69).unwrap();
        ok.measure(0, 0).unwrap();
        ok.measure(69, 1).unwrap();
        let counts = run_ideal(&ok, 64, 1).unwrap();
        assert_eq!(counts.get(0b00) + counts.get(0b11), 64);
    }

    #[test]
    fn forced_frame_path_rejects_ineligible_circuits() {
        let mut mid = Circuit::new(1, 1);
        mid.x(0).unwrap();
        mid.reset(0).unwrap();
        mid.measure(0, 0).unwrap();
        let noise = NoiseModel::uniform(1, 0.01, 0.0, 0.0);
        assert!(matches!(
            run_with_noise_path(
                &mid,
                &noise,
                16,
                0,
                &ParallelConfig::serial(),
                ExecutionPath::Frame
            ),
            Err(SimulatorError::Unsupported(_))
        ));
        // Auto falls back to replay and still runs.
        assert!(run_with_noise_path(
            &mid,
            &noise,
            16,
            0,
            &ParallelConfig::serial(),
            ExecutionPath::Auto
        )
        .is_ok());
    }

    #[test]
    fn fast_path_and_replay_agree_for_ideal_terminal_circuits() {
        // Force the replay path with a unit readout-error-free noise model
        // that is *not* structurally ideal? There is none — instead compare
        // the fast path against the replay path via a mid-circuit barrier
        // variant that still replays: an explicit Reset at the start keeps
        // semantics (|0> -> |0>) but disables the fast path.
        let mut fast = library::ghz(6).unwrap().without_measurements();
        fast.measure_all().unwrap();
        let mut replay = Circuit::new(6, 6);
        replay.reset(0).unwrap();
        let ghz = library::ghz(6).unwrap().without_measurements();
        for inst in ghz.instructions() {
            replay.append(inst.gate, &inst.qubits).unwrap();
        }
        replay.measure_all().unwrap();
        let counts_fast = run_ideal(&fast, 4000, 29).unwrap();
        let counts_replay = run_ideal(&replay, 4000, 31).unwrap();
        let fidelity = counts_fast.hellinger_fidelity(&counts_replay);
        assert!(fidelity > 0.98, "paths disagree: {fidelity}");
    }
}
