//! Noise models derived from backend calibration data.
//!
//! The fleet of Table 2 is parameterized by single-qubit, two-qubit and
//! readout error rates. This module turns a [`Backend`] into an executable
//! [`NoiseModel`]: depolarizing Pauli errors after each gate plus readout bit
//! flips. Pauli channels keep Clifford circuits inside the stabilizer
//! formalism, which is exactly what the Clifford-canary strategy needs, and
//! the same channels drive Monte-Carlo trajectories in the statevector engine.

use rand::Rng;

use qrio_backend::Backend;
use qrio_circuit::Gate;

/// A Pauli error to inject after a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PauliError {
    /// Bit flip.
    X,
    /// Bit and phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl PauliError {
    /// The corresponding circuit gate.
    pub fn gate(&self) -> Gate {
        match self {
            PauliError::X => Gate::X,
            PauliError::Y => Gate::Y,
            PauliError::Z => Gate::Z,
        }
    }

    /// Draw a uniformly random non-identity Pauli.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        match rng.gen_range(0..3u8) {
            0 => PauliError::X,
            1 => PauliError::Y,
            _ => PauliError::Z,
        }
    }
}

/// Executable noise model: per-qubit and per-edge depolarizing probabilities
/// plus per-qubit readout flip probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    single_qubit_error: Vec<f64>,
    readout_error: Vec<f64>,
    /// Two-qubit error per coupled pair `(min, max)`.
    two_qubit_error: std::collections::BTreeMap<(usize, usize), f64>,
    /// Fallback two-qubit error when a pair is not individually calibrated.
    default_two_qubit_error: f64,
    num_qubits: usize,
}

impl NoiseModel {
    /// A noise-free model over `num_qubits` qubits.
    pub fn ideal(num_qubits: usize) -> Self {
        NoiseModel {
            single_qubit_error: vec![0.0; num_qubits],
            readout_error: vec![0.0; num_qubits],
            two_qubit_error: std::collections::BTreeMap::new(),
            default_two_qubit_error: 0.0,
            num_qubits,
        }
    }

    /// Build a noise model from a backend's calibration data.
    pub fn from_backend(backend: &Backend) -> Self {
        let n = backend.num_qubits();
        let single_qubit_error = (0..n)
            .map(|q| backend.qubit(q).single_qubit_error)
            .collect();
        let readout_error = (0..n).map(|q| backend.qubit(q).readout_error).collect();
        let two_qubit_error = backend
            .two_qubit_gates()
            .iter()
            .map(|(&edge, props)| (edge, props.error))
            .collect();
        NoiseModel {
            single_qubit_error,
            readout_error,
            two_qubit_error,
            default_two_qubit_error: backend.avg_two_qubit_error(),
            num_qubits: n,
        }
    }

    /// A uniform noise model (every qubit/edge identical), useful in tests.
    pub fn uniform(
        num_qubits: usize,
        single_qubit_error: f64,
        two_qubit_error: f64,
        readout_error: f64,
    ) -> Self {
        NoiseModel {
            single_qubit_error: vec![single_qubit_error; num_qubits],
            readout_error: vec![readout_error; num_qubits],
            two_qubit_error: std::collections::BTreeMap::new(),
            default_two_qubit_error: two_qubit_error,
            num_qubits,
        }
    }

    /// Number of qubits covered by the model.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Whether the model injects no errors at all.
    pub fn is_ideal(&self) -> bool {
        self.single_qubit_error.iter().all(|&e| e == 0.0)
            && self.readout_error.iter().all(|&e| e == 0.0)
            && self.default_two_qubit_error == 0.0
            && self.two_qubit_error.values().all(|&e| e == 0.0)
    }

    /// Depolarizing probability after a single-qubit gate on `q`.
    pub fn single_qubit_error(&self, q: usize) -> f64 {
        self.single_qubit_error.get(q).copied().unwrap_or(0.0)
    }

    /// Depolarizing probability after a two-qubit gate on `(a, b)`. Falls back
    /// to the device average when the pair is not individually calibrated
    /// (e.g. when a not-yet-routed circuit is being scored).
    pub fn two_qubit_error(&self, a: usize, b: usize) -> f64 {
        let key = (a.min(b), a.max(b));
        self.two_qubit_error
            .get(&key)
            .copied()
            .unwrap_or(self.default_two_qubit_error)
    }

    /// Probability that the measurement of `q` is flipped.
    pub fn readout_error(&self, q: usize) -> f64 {
        self.readout_error.get(q).copied().unwrap_or(0.0)
    }

    /// Sample the Pauli errors (if any) to inject after a gate on `qubits`.
    /// Two-qubit gates may fault either or both operands.
    pub fn sample_gate_errors<R: Rng + ?Sized>(
        &self,
        gate: &Gate,
        qubits: &[usize],
        rng: &mut R,
    ) -> Vec<(usize, PauliError)> {
        let mut faults = Vec::new();
        if gate.is_directive() {
            return faults;
        }
        if gate.is_two_qubit() && qubits.len() == 2 {
            let p = self.two_qubit_error(qubits[0], qubits[1]);
            if p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)) {
                // Depolarizing on the pair: fault one or both qubits.
                match rng.gen_range(0..3u8) {
                    0 => faults.push((qubits[0], PauliError::random(rng))),
                    1 => faults.push((qubits[1], PauliError::random(rng))),
                    _ => {
                        faults.push((qubits[0], PauliError::random(rng)));
                        faults.push((qubits[1], PauliError::random(rng)));
                    }
                }
            }
        } else {
            for &q in qubits {
                let p = self.single_qubit_error(q);
                if p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)) {
                    faults.push((q, PauliError::random(rng)));
                }
            }
        }
        faults
    }

    /// Sample the Pauli error (if any) to inject after a `Reset` on `q`.
    ///
    /// Reset semantics: the internal collapse of a reset is *not* a classical
    /// readout (nothing is recorded), so readout error does not apply — but
    /// the reset pulse itself is an active single-qubit operation and carries
    /// the qubit's single-qubit depolarizing error, sampled *after* the ideal
    /// re-initialisation. Without this, reset would be the only silently
    /// ideal operation in an otherwise noisy circuit.
    pub fn sample_reset_error<R: Rng + ?Sized>(&self, q: usize, rng: &mut R) -> Option<PauliError> {
        let p = self.single_qubit_error(q);
        if p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)) {
            Some(PauliError::random(rng))
        } else {
            None
        }
    }

    /// Apply readout noise to a measured bit.
    pub fn flip_readout<R: Rng + ?Sized>(&self, q: usize, value: bool, rng: &mut R) -> bool {
        let p = self.readout_error(q);
        if p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)) {
            !value
        } else {
            value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_model_injects_nothing() {
        let model = NoiseModel::ideal(3);
        assert!(model.is_ideal());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(model
                .sample_gate_errors(&Gate::CX, &[0, 1], &mut rng)
                .is_empty());
            assert!(!model.flip_readout(0, false, &mut rng));
        }
    }

    #[test]
    fn from_backend_reads_calibration() {
        let backend = Backend::uniform("noisy", topology::line(4), 0.02, 0.1);
        let model = NoiseModel::from_backend(&backend);
        assert_eq!(model.num_qubits(), 4);
        assert!((model.single_qubit_error(2) - 0.02).abs() < 1e-12);
        assert!((model.two_qubit_error(0, 1) - 0.1).abs() < 1e-12);
        // Uncoupled pair falls back to the average.
        assert!((model.two_qubit_error(0, 3) - 0.1).abs() < 1e-12);
        assert!(!model.is_ideal());
    }

    #[test]
    fn high_error_rates_fault_often() {
        let model = NoiseModel::uniform(2, 0.0, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut faulted = 0;
        for _ in 0..200 {
            if !model
                .sample_gate_errors(&Gate::CX, &[0, 1], &mut rng)
                .is_empty()
            {
                faulted += 1;
            }
        }
        assert_eq!(faulted, 200);
    }

    #[test]
    fn readout_flip_probability() {
        let model = NoiseModel::uniform(1, 0.0, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(model.flip_readout(0, false, &mut rng));
        assert!(!model.flip_readout(0, true, &mut rng));
    }

    #[test]
    fn directives_never_fault() {
        let model = NoiseModel::uniform(2, 1.0, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(model
            .sample_gate_errors(&Gate::Barrier, &[0, 1], &mut rng)
            .is_empty());
    }

    #[test]
    fn pauli_error_gates() {
        assert_eq!(PauliError::X.gate(), Gate::X);
        assert_eq!(PauliError::Y.gate(), Gate::Y);
        assert_eq!(PauliError::Z.gate(), Gate::Z);
    }
}
