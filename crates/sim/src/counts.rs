//! Measurement-outcome histograms and distribution-level fidelity metrics.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram of measurement outcomes over `num_bits` classical bits.
///
/// Outcomes are stored as integers; bit `i` of the key corresponds to
/// classical bit `i` (little-endian), and [`Counts::bitstring`] renders keys in
/// the conventional most-significant-bit-first order.
///
/// # Examples
///
/// ```
/// use qrio_sim::Counts;
///
/// let mut counts = Counts::new(2);
/// counts.record(0b00);
/// counts.record(0b11);
/// counts.record(0b11);
/// assert_eq!(counts.total(), 3);
/// assert_eq!(counts.get(0b11), 2);
/// assert_eq!(counts.most_frequent(), Some(0b11));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    num_bits: usize,
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Counts {
    /// An empty histogram over `num_bits` classical bits.
    pub fn new(num_bits: usize) -> Self {
        Counts {
            num_bits,
            counts: BTreeMap::new(),
            total: 0,
        }
    }

    /// Build a histogram from `(outcome, count)` pairs.
    pub fn from_pairs(num_bits: usize, pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut counts = Counts::new(num_bits);
        for (outcome, count) in pairs {
            counts.record_many(outcome, count);
        }
        counts
    }

    /// Number of classical bits per outcome.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Record one observation of `outcome`.
    pub fn record(&mut self, outcome: u64) {
        self.record_many(outcome, 1);
    }

    /// Record `count` observations of `outcome`.
    pub fn record_many(&mut self, outcome: u64, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(outcome).or_insert(0) += count;
        self.total += count;
    }

    /// Number of shots recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fold every observation of `other` into this histogram.
    ///
    /// Merging is commutative and associative, which is what makes the
    /// executor's sharded parallel shot execution reproducible: per-shard
    /// histograms merge to the same result regardless of completion order.
    pub fn merge(&mut self, other: &Counts) {
        for (outcome, count) in other.iter() {
            self.record_many(outcome, count);
        }
    }

    /// Count for a specific outcome.
    pub fn get(&self, outcome: u64) -> u64 {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// Empirical probability of a specific outcome.
    pub fn probability(&self, outcome: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.get(outcome) as f64 / self.total as f64
        }
    }

    /// Iterate over `(outcome, count)` pairs in outcome order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// The outcome observed most often, if any.
    pub fn most_frequent(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by_key(|(_, &count)| count)
            .map(|(&outcome, _)| outcome)
    }

    /// The full empirical probability distribution.
    pub fn distribution(&self) -> BTreeMap<u64, f64> {
        self.counts
            .iter()
            .map(|(&outcome, &count)| (outcome, count as f64 / self.total.max(1) as f64))
            .collect()
    }

    /// Render an outcome as a bitstring, most significant bit first.
    pub fn bitstring(&self, outcome: u64) -> String {
        (0..self.num_bits.max(1))
            .rev()
            .map(|b| if (outcome >> b) & 1 == 1 { '1' } else { '0' })
            .collect()
    }

    /// Hellinger fidelity between this distribution and `other`:
    /// `F = (Σ_x sqrt(p(x)·q(x)))²`, in `[0, 1]`.
    ///
    /// This is the metric used to compare noisy device output against the
    /// noise-free reference when scoring devices (paper §3.4.1 / §4.3).
    pub fn hellinger_fidelity(&self, other: &Counts) -> f64 {
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        let mut bc = 0.0;
        for (&outcome, &count) in &self.counts {
            let p = count as f64 / self.total as f64;
            let q = other.probability(outcome);
            bc += (p * q).sqrt();
        }
        (bc * bc).clamp(0.0, 1.0)
    }

    /// Total-variation distance between this distribution and `other`.
    pub fn total_variation_distance(&self, other: &Counts) -> f64 {
        let mut outcomes: Vec<u64> = self.counts.keys().copied().collect();
        for key in other.counts.keys() {
            if !outcomes.contains(key) {
                outcomes.push(*key);
            }
        }
        let mut tvd = 0.0;
        for outcome in outcomes {
            tvd += (self.probability(outcome) - other.probability(outcome)).abs();
        }
        tvd / 2.0
    }

    /// Probability mass assigned to the single `expected` outcome — the
    /// "success probability" metric for algorithms with a known answer.
    pub fn success_probability(&self, expected: u64) -> f64 {
        self.probability(expected)
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counts({} shots)", self.total)?;
        for (&outcome, &count) in &self.counts {
            write!(f, " {}:{}", self.bitstring(outcome), count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(3);
        c.record(0b101);
        c.record_many(0b101, 3);
        c.record(0b000);
        assert_eq!(c.total(), 5);
        assert_eq!(c.get(0b101), 4);
        assert!((c.probability(0b101) - 0.8).abs() < 1e-12);
        assert_eq!(c.most_frequent(), Some(0b101));
        assert_eq!(c.bitstring(0b101), "101");
        c.record_many(0b111, 0);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn merge_is_commutative() {
        let a = Counts::from_pairs(2, [(0, 5), (1, 2)]);
        let b = Counts::from_pairs(2, [(1, 3), (3, 4)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 14);
        assert_eq!(ab.get(1), 5);
    }

    #[test]
    fn identical_distributions_have_unit_fidelity() {
        let a = Counts::from_pairs(2, [(0, 50), (3, 50)]);
        let b = Counts::from_pairs(2, [(0, 500), (3, 500)]);
        assert!((a.hellinger_fidelity(&b) - 1.0).abs() < 1e-12);
        assert!(a.total_variation_distance(&b) < 1e-12);
    }

    #[test]
    fn disjoint_distributions_have_zero_fidelity() {
        let a = Counts::from_pairs(2, [(0, 100)]);
        let b = Counts::from_pairs(2, [(3, 100)]);
        assert_eq!(a.hellinger_fidelity(&b), 0.0);
        assert!((a.total_variation_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_is_symmetric_and_bounded() {
        let a = Counts::from_pairs(2, [(0, 70), (1, 20), (2, 10)]);
        let b = Counts::from_pairs(2, [(0, 30), (1, 40), (3, 30)]);
        let f_ab = a.hellinger_fidelity(&b);
        let f_ba = b.hellinger_fidelity(&a);
        assert!((f_ab - f_ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&f_ab));
    }

    #[test]
    fn empty_counts_have_zero_fidelity() {
        let a = Counts::new(2);
        let b = Counts::from_pairs(2, [(0, 10)]);
        assert_eq!(a.hellinger_fidelity(&b), 0.0);
        assert_eq!(a.probability(0), 0.0);
        assert_eq!(a.most_frequent(), None);
    }

    #[test]
    fn distribution_sums_to_one() {
        let c = Counts::from_pairs(2, [(0, 25), (1, 25), (2, 25), (3, 25)]);
        let sum: f64 = c.distribution().values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn success_probability_matches_expected() {
        let c = Counts::from_pairs(4, [(0b1011, 90), (0b0000, 10)]);
        assert!((c.success_probability(0b1011) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn display_shows_bitstrings() {
        let c = Counts::from_pairs(2, [(2, 1)]);
        assert!(c.to_string().contains("10:1"));
    }
}
