//! Dense statevector simulation.
//!
//! The statevector engine is the noise-free "oracle" reference of the paper's
//! fidelity experiment (§4.3): it can simulate arbitrary (non-Clifford)
//! circuits exactly, but only up to a modest number of qubits because memory
//! grows as `2^n`.
//!
//! [`StateVector::apply_circuit`] runs a gate-fusion pass first
//! ([`fuse_circuit`]): adjacent single-qubit gates on one wire collapse into
//! a single 2×2 matrix, and runs of diagonal two-qubit gates (CZ/CP/CRZ) on
//! one pair collapse into per-quadrant phase factors — one sweep over the
//! `2^n` amplitudes instead of one per gate.

use std::f64::consts::FRAC_1_SQRT_2;

use rand::Rng;

use qrio_circuit::{Circuit, Gate};

use crate::complex::Complex64;
use crate::error::SimulatorError;

/// Maximum number of qubits the statevector engine will simulate
/// (2^24 amplitudes ≈ 256 MiB of `Complex64`).
pub const MAX_STATEVECTOR_QUBITS: usize = 24;

/// A dense quantum state over `num_qubits` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros computational basis state |0…0⟩.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_qubits` exceeds [`MAX_STATEVECTOR_QUBITS`].
    pub fn new(num_qubits: usize) -> Result<Self, SimulatorError> {
        if num_qubits > MAX_STATEVECTOR_QUBITS {
            return Err(SimulatorError::TooManyQubits {
                requested: num_qubits,
                limit: MAX_STATEVECTOR_QUBITS,
            });
        }
        let mut amplitudes = vec![Complex64::ZERO; 1usize << num_qubits];
        amplitudes[0] = Complex64::ONE;
        Ok(StateVector {
            num_qubits,
            amplitudes,
        })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> Complex64 {
        self.amplitudes[index]
    }

    /// Probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amplitudes[index].norm_sqr()
    }

    /// The full probability vector over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Apply a 2×2 unitary to qubit `q`.
    fn apply_single(&mut self, matrix: [[Complex64; 2]; 2], q: usize) {
        let stride = 1usize << q;
        let n = self.amplitudes.len();
        let mut base = 0;
        while base < n {
            for offset in base..base + stride {
                let i0 = offset;
                let i1 = offset + stride;
                let a0 = self.amplitudes[i0];
                let a1 = self.amplitudes[i1];
                self.amplitudes[i0] = matrix[0][0] * a0 + matrix[0][1] * a1;
                self.amplitudes[i1] = matrix[1][0] * a0 + matrix[1][1] * a1;
            }
            base += stride << 1;
        }
    }

    /// Apply a controlled phase `e^{iθ}` to states where both qubits are 1.
    ///
    /// Stride loop: only the `2^(n-2)` affected amplitudes (both bits set)
    /// are touched, instead of a branch over all `2^n` indices.
    fn apply_controlled_phase(&mut self, control: usize, target: usize, theta: f64) {
        let phase = Complex64::cis(theta);
        let mask = (1usize << control) | (1usize << target);
        let pairs = self.amplitudes.len() >> 2;
        for k in 0..pairs {
            let index = expand2(k, control, target) | mask;
            self.amplitudes[index] = self.amplitudes[index] * phase;
        }
    }

    fn apply_cx(&mut self, control: usize, target: usize) {
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let pairs = self.amplitudes.len() >> 2;
        for k in 0..pairs {
            let lo = expand2(k, control, target) | cmask;
            self.amplitudes.swap(lo, lo | tmask);
        }
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        let amask = 1usize << a;
        let bmask = 1usize << b;
        let pairs = self.amplitudes.len() >> 2;
        for k in 0..pairs {
            let base = expand2(k, a, b);
            self.amplitudes.swap(base | amask, base | bmask);
        }
    }

    fn apply_ccx(&mut self, c0: usize, c1: usize, target: usize) {
        let cmask = (1usize << c0) | (1usize << c1);
        let tmask = 1usize << target;
        let octets = self.amplitudes.len() >> 3;
        for k in 0..octets {
            let lo = expand3(k, c0, c1, target) | cmask;
            self.amplitudes.swap(lo, lo | tmask);
        }
    }

    fn apply_crz(&mut self, control: usize, target: usize, theta: f64) {
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let minus = Complex64::cis(-theta / 2.0);
        let plus = Complex64::cis(theta / 2.0);
        let halves = self.amplitudes.len() >> 1;
        for k in 0..halves {
            let index = insert_bit(k, control) | cmask;
            let phase = if index & tmask == 0 { minus } else { plus };
            self.amplitudes[index] = self.amplitudes[index] * phase;
        }
    }

    /// Apply a controlled-Y gate.
    fn apply_cy(&mut self, control: usize, target: usize) {
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let pairs = self.amplitudes.len() >> 2;
        for k in 0..pairs {
            let index = expand2(k, control, target) | cmask;
            let hi = index | tmask;
            let a0 = self.amplitudes[index];
            let a1 = self.amplitudes[hi];
            // Y = [[0, -i], [i, 0]]
            self.amplitudes[index] = Complex64::new(a1.im, -a1.re);
            self.amplitudes[hi] = Complex64::new(-a0.im, a0.re);
        }
    }

    /// Apply one unitary gate (not a measurement/reset/barrier).
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported instructions or out-of-range qubits.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimulatorError> {
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(SimulatorError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        match *gate {
            Gate::Barrier | Gate::I => Ok(()),
            Gate::CX => {
                self.apply_cx(qubits[0], qubits[1]);
                Ok(())
            }
            Gate::CZ => {
                self.apply_controlled_phase(qubits[0], qubits[1], std::f64::consts::PI);
                Ok(())
            }
            Gate::CY => {
                self.apply_cy(qubits[0], qubits[1]);
                Ok(())
            }
            Gate::Swap => {
                self.apply_swap(qubits[0], qubits[1]);
                Ok(())
            }
            Gate::CP(theta) => {
                self.apply_controlled_phase(qubits[0], qubits[1], theta);
                Ok(())
            }
            Gate::CRZ(theta) => {
                self.apply_crz(qubits[0], qubits[1], theta);
                Ok(())
            }
            Gate::CCX => {
                self.apply_ccx(qubits[0], qubits[1], qubits[2]);
                Ok(())
            }
            Gate::Measure | Gate::Reset => Err(SimulatorError::Unsupported(
                "measure/reset must be handled by the executor, not applied as a unitary".into(),
            )),
            ref g => {
                let matrix = single_qubit_matrix(g).ok_or_else(|| {
                    SimulatorError::Unsupported(format!(
                        "gate '{}' is not supported by the statevector engine",
                        g.name()
                    ))
                })?;
                self.apply_single(matrix, qubits[0]);
                Ok(())
            }
        }
    }

    /// Apply every unitary gate of `circuit` in order, skipping measurements,
    /// resets and barriers. Gates are fused first (see [`fuse_circuit`]), so
    /// runs of single-qubit gates and of diagonal two-qubit gates cost one
    /// amplitude sweep each.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit has more qubits than the state or uses
    /// an unsupported gate.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimulatorError> {
        if circuit.num_qubits() > self.num_qubits {
            return Err(SimulatorError::QubitOutOfRange {
                qubit: circuit.num_qubits().saturating_sub(1),
                num_qubits: self.num_qubits,
            });
        }
        self.apply_fused(&fuse_circuit(circuit))
    }

    /// Apply a pre-fused gate sequence (see [`fuse_circuit`]).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range or coincident qubits, or an
    /// unsupported passthrough gate.
    pub fn apply_fused(&mut self, ops: &[FusedOp]) -> Result<(), SimulatorError> {
        for op in ops {
            match op {
                FusedOp::Single { qubit, matrix } => {
                    if *qubit >= self.num_qubits {
                        return Err(SimulatorError::QubitOutOfRange {
                            qubit: *qubit,
                            num_qubits: self.num_qubits,
                        });
                    }
                    self.apply_single(*matrix, *qubit);
                }
                FusedOp::DiagonalPair {
                    control,
                    target,
                    phases,
                } => {
                    if *control >= self.num_qubits || *target >= self.num_qubits {
                        return Err(SimulatorError::QubitOutOfRange {
                            qubit: (*control).max(*target),
                            num_qubits: self.num_qubits,
                        });
                    }
                    if control == target {
                        return Err(SimulatorError::InvalidParameter(
                            "diagonal pair requires two distinct qubits".into(),
                        ));
                    }
                    self.apply_diagonal_pair(*control, *target, phases);
                }
                FusedOp::Passthrough { gate, qubits } => self.apply_gate(gate, qubits)?,
            }
        }
        Ok(())
    }

    /// Apply per-quadrant phases indexed by `(control_bit << 1) | target_bit`.
    ///
    /// Quadrants whose phase is exactly `1` (the common case: unfused CZ/CP
    /// touch only the `|11⟩` quadrant, CRZ only the control-set half) are
    /// skipped entirely, so a lone diagonal gate costs the same stride loop
    /// as the dedicated paths it replaces.
    fn apply_diagonal_pair(&mut self, control: usize, target: usize, phases: &[Complex64; 4]) {
        let pairs = self.amplitudes.len() >> 2;
        for (sel, &phase) in phases.iter().enumerate() {
            if phase == Complex64::ONE {
                continue;
            }
            let mask = ((sel >> 1) << control) | ((sel & 1) << target);
            for k in 0..pairs {
                let index = expand2(k, control, target) | mask;
                self.amplitudes[index] = self.amplitudes[index] * phase;
            }
        }
    }

    /// Measure qubit `q` in the computational basis, collapsing the state.
    pub fn measure_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        let mask = 1usize << q;
        let halves = self.amplitudes.len() >> 1;
        let prob_one: f64 = (0..halves)
            .map(|k| self.amplitudes[insert_bit(k, q) | mask].norm_sqr())
            .sum();
        let outcome = rng.gen_bool(prob_one.clamp(0.0, 1.0));
        let keep_mask_set = outcome;
        let norm = if outcome { prob_one } else { 1.0 - prob_one };
        let scale = if norm > 0.0 { 1.0 / norm.sqrt() } else { 0.0 };
        for (index, amp) in self.amplitudes.iter_mut().enumerate() {
            let bit_set = index & mask != 0;
            if bit_set == keep_mask_set {
                *amp = amp.scale(scale);
            } else {
                *amp = Complex64::ZERO;
            }
        }
        outcome
    }

    /// Force qubit `q` back to |0⟩ (measure and flip if needed).
    pub fn reset_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        if self.measure_qubit(q, rng) {
            self.apply_single(pauli_x_matrix(), q);
        }
    }

    /// Sample one basis-state outcome from the current distribution.
    ///
    /// This is an O(2^n) linear scan, appropriate for a *single* draw. For
    /// repeated sampling of a fixed state (the terminal-measurement fast
    /// path), build a [`CumulativeDistribution`] once and draw from it in
    /// O(log 2^n) = O(n) per shot.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let draw: f64 = rng.gen();
        let mut cumulative = 0.0;
        for (index, amp) in self.amplitudes.iter().enumerate() {
            cumulative += amp.norm_sqr();
            if draw < cumulative {
                return index as u64;
            }
        }
        (self.amplitudes.len() - 1) as u64
    }

    /// Precompute the cumulative probability table for repeated O(log N)
    /// sampling via binary search.
    ///
    /// Draws from the returned table are bit-identical to [`Self::sample`]
    /// given the same RNG stream: the prefix sums are accumulated in the same
    /// order, and the binary search locates exactly the index the linear scan
    /// would have stopped at.
    pub fn cumulative_distribution(&self) -> CumulativeDistribution {
        let mut cumulative = Vec::with_capacity(self.amplitudes.len());
        let mut acc = 0.0;
        for amp in &self.amplitudes {
            acc += amp.norm_sqr();
            cumulative.push(acc);
        }
        CumulativeDistribution { cumulative }
    }

    /// L2 norm of the state (should stay ≈ 1).
    pub fn norm(&self) -> f64 {
        self.amplitudes
            .iter()
            .map(|a| a.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }
}

/// A precomputed cumulative probability table over basis states, for
/// repeated O(log N) outcome sampling from a fixed [`StateVector`].
///
/// Built by [`StateVector::cumulative_distribution`]; the executor's ideal
/// terminal-measurement fast path builds one table per circuit and then draws
/// every shot from it by binary search, replacing the previous O(2^n)
/// linear scan per shot.
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeDistribution {
    /// cumulative[i] = Σ_{j ≤ i} |amplitude_j|².
    cumulative: Vec<f64>,
}

impl CumulativeDistribution {
    /// Number of basis states covered.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the table is empty (zero basis states).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one basis-state outcome by binary search over the table.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let draw: f64 = rng.gen();
        // First index whose cumulative sum exceeds the draw; if rounding left
        // the total below the draw, fall back to the last state, exactly as
        // the linear scan does.
        let index = self.cumulative.partition_point(|&c| c <= draw);
        index.min(self.cumulative.len().saturating_sub(1)) as u64
    }
}

/// One operation of a fused gate sequence (see [`fuse_circuit`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// A run of adjacent single-qubit gates on one wire, collapsed into a
    /// single 2×2 unitary.
    Single {
        /// Target qubit.
        qubit: usize,
        /// The accumulated matrix (later gates multiplied on the left).
        matrix: [[Complex64; 2]; 2],
    },
    /// A run of adjacent diagonal two-qubit gates (CZ/CP/CRZ) on one pair,
    /// collapsed into per-quadrant phase factors.
    DiagonalPair {
        /// First operand of the originating gates (CRZ control).
        control: usize,
        /// Second operand of the originating gates (CRZ target).
        target: usize,
        /// Phase per quadrant, indexed by `(control_bit << 1) | target_bit`.
        phases: [Complex64; 4],
    },
    /// Any other gate, passed through unfused.
    Passthrough {
        /// The gate.
        gate: Gate,
        /// Its operands.
        qubits: Vec<usize>,
    },
}

/// Fuse a circuit's unitaries for [`StateVector::apply_fused`].
///
/// Two kinds of runs collapse:
///
/// * **Single-qubit runs**: consecutive single-qubit gates on one wire
///   multiply into one 2×2 matrix, applied in a single amplitude sweep.
/// * **Diagonal-pair runs**: consecutive CZ/CP/CRZ gates on the same
///   (unordered) qubit pair multiply into one per-quadrant phase table.
///
/// Single-qubit gates stay *pending* until an operation touches their wire
/// (or the circuit ends), so gates on other wires never break a run — sound
/// because operations on disjoint qubits commute. Barriers flush everything:
/// they exist to fence optimisation. Measurements and resets are skipped,
/// matching [`StateVector::apply_circuit`]; the executor handles them.
pub fn fuse_circuit(circuit: &Circuit) -> Vec<FusedOp> {
    let mut ops: Vec<FusedOp> = Vec::new();
    let mut pending: Vec<Option<[[Complex64; 2]; 2]>> = vec![None; circuit.num_qubits()];
    let flush = |ops: &mut Vec<FusedOp>, pending: &mut [Option<[[Complex64; 2]; 2]>], q: usize| {
        if let Some(matrix) = pending[q].take() {
            ops.push(FusedOp::Single { qubit: q, matrix });
        }
    };
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Measure | Gate::Reset | Gate::Barrier => {
                for q in 0..pending.len() {
                    flush(&mut ops, &mut pending, q);
                }
            }
            Gate::I => {}
            Gate::CZ | Gate::CP(_) | Gate::CRZ(_) => {
                let (a, b) = (inst.qubits[0], inst.qubits[1]);
                flush(&mut ops, &mut pending, a);
                flush(&mut ops, &mut pending, b);
                let phases = diagonal_phases(&inst.gate);
                if let Some(FusedOp::DiagonalPair {
                    control,
                    target,
                    phases: existing,
                }) = ops.last_mut()
                {
                    if (*control, *target) == (a, b) {
                        for (e, p) in existing.iter_mut().zip(&phases) {
                            *e = *e * *p;
                        }
                        continue;
                    }
                    if (*control, *target) == (b, a) {
                        // Same pair, reversed: diagonal matrices commute, only
                        // the quadrant indexing swaps its two middle entries.
                        existing[0] = existing[0] * phases[0];
                        existing[1] = existing[1] * phases[2];
                        existing[2] = existing[2] * phases[1];
                        existing[3] = existing[3] * phases[3];
                        continue;
                    }
                }
                ops.push(FusedOp::DiagonalPair {
                    control: a,
                    target: b,
                    phases,
                });
            }
            ref gate => {
                if let Some(matrix) = single_qubit_matrix(gate) {
                    let q = inst.qubits[0];
                    pending[q] = Some(match pending[q] {
                        Some(prev) => matmul2(&matrix, &prev),
                        None => matrix,
                    });
                } else {
                    for &q in &inst.qubits {
                        flush(&mut ops, &mut pending, q);
                    }
                    ops.push(FusedOp::Passthrough {
                        gate: inst.gate,
                        qubits: inst.qubits.clone(),
                    });
                }
            }
        }
    }
    for q in 0..pending.len() {
        flush(&mut ops, &mut pending, q);
    }
    ops
}

/// Per-quadrant phases of a diagonal two-qubit gate, indexed by
/// `(first_operand_bit << 1) | second_operand_bit`. Built with the same
/// `cis` calls as the dedicated gate paths so an unfused gate applies
/// bit-identical factors.
fn diagonal_phases(gate: &Gate) -> [Complex64; 4] {
    let one = Complex64::ONE;
    match *gate {
        Gate::CZ => [one, one, one, Complex64::cis(std::f64::consts::PI)],
        Gate::CP(theta) => [one, one, one, Complex64::cis(theta)],
        Gate::CRZ(theta) => [
            one,
            one,
            Complex64::cis(-theta / 2.0),
            Complex64::cis(theta / 2.0),
        ],
        _ => unreachable!("only CZ/CP/CRZ are diagonal pairs"),
    }
}

/// `second · first`: the matrix applying `first` then `second`.
fn matmul2(second: &[[Complex64; 2]; 2], first: &[[Complex64; 2]; 2]) -> [[Complex64; 2]; 2] {
    let mut out = [[Complex64::ZERO; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            out[i][j] = second[i][0] * first[0][j] + second[i][1] * first[1][j];
        }
    }
    out
}

/// Expand `k` by inserting a zero bit at position `pos`: the result enumerates
/// all indices whose bit `pos` is clear, in increasing order.
#[inline]
fn insert_bit(k: usize, pos: usize) -> usize {
    let low_mask = (1usize << pos) - 1;
    ((k & !low_mask) << 1) | (k & low_mask)
}

/// Expand `k` by inserting zero bits at positions `a` and `b` (`a != b`).
#[inline]
fn expand2(k: usize, a: usize, b: usize) -> usize {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    insert_bit(insert_bit(k, lo), hi)
}

/// Expand `k` by inserting zero bits at three distinct positions.
#[inline]
fn expand3(k: usize, a: usize, b: usize, c: usize) -> usize {
    let mut pos = [a, b, c];
    pos.sort_unstable();
    insert_bit(insert_bit(insert_bit(k, pos[0]), pos[1]), pos[2])
}

/// The 2×2 matrix of a single-qubit gate, if the gate is single-qubit.
pub fn single_qubit_matrix(gate: &Gate) -> Option<[[Complex64; 2]; 2]> {
    let h = FRAC_1_SQRT_2;
    let m = |a: Complex64, b: Complex64, c: Complex64, d: Complex64| [[a, b], [c, d]];
    let re = Complex64::new;
    Some(match *gate {
        Gate::I => m(
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
        ),
        Gate::X => pauli_x_matrix(),
        Gate::Y => m(
            Complex64::ZERO,
            Complex64::new(0.0, -1.0),
            Complex64::I,
            Complex64::ZERO,
        ),
        Gate::Z => m(
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            re(-1.0, 0.0),
        ),
        Gate::H => m(re(h, 0.0), re(h, 0.0), re(h, 0.0), re(-h, 0.0)),
        Gate::S => m(
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::I,
        ),
        Gate::Sdg => m(
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::new(0.0, -1.0),
        ),
        Gate::T => m(
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::cis(std::f64::consts::FRAC_PI_4),
        ),
        Gate::Tdg => m(
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::cis(-std::f64::consts::FRAC_PI_4),
        ),
        Gate::SX => m(
            Complex64::new(0.5, 0.5),
            Complex64::new(0.5, -0.5),
            Complex64::new(0.5, -0.5),
            Complex64::new(0.5, 0.5),
        ),
        Gate::RX(theta) => {
            let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
            m(
                re(c, 0.0),
                Complex64::new(0.0, -s),
                Complex64::new(0.0, -s),
                re(c, 0.0),
            )
        }
        Gate::RY(theta) => {
            let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
            m(re(c, 0.0), re(-s, 0.0), re(s, 0.0), re(c, 0.0))
        }
        Gate::RZ(theta) => m(
            Complex64::cis(-theta / 2.0),
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::cis(theta / 2.0),
        ),
        Gate::U1(lambda) => m(
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::cis(lambda),
        ),
        Gate::U2(phi, lambda) => u3_matrix(std::f64::consts::FRAC_PI_2, phi, lambda),
        Gate::U3(theta, phi, lambda) => u3_matrix(theta, phi, lambda),
        _ => return None,
    })
}

/// The matrix of `u3(θ, φ, λ)`.
pub fn u3_matrix(theta: f64, phi: f64, lambda: f64) -> [[Complex64; 2]; 2] {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    [
        [Complex64::new(c, 0.0), -Complex64::cis(lambda).scale(s)],
        [
            Complex64::cis(phi).scale(s),
            Complex64::cis(phi + lambda).scale(c),
        ],
    ]
}

fn pauli_x_matrix() -> [[Complex64; 2]; 2] {
    [
        [Complex64::ZERO, Complex64::ONE],
        [Complex64::ONE, Complex64::ZERO],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn initial_state_is_zero() {
        let sv = StateVector::new(3).unwrap();
        assert!((sv.probability(0) - 1.0).abs() < 1e-12);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
        assert!(StateVector::new(40).is_err());
    }

    #[test]
    fn hadamard_creates_superposition() {
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_gate(&Gate::H, &[0]).unwrap();
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2, 0);
        c.h(0).unwrap();
        c.cx(0, 1).unwrap();
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_circuit(&c).unwrap();
        assert!((sv.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((sv.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(sv.probability(0b01) < 1e-12);
    }

    #[test]
    fn x_flips_and_ccx_controls() {
        let mut sv = StateVector::new(3).unwrap();
        sv.apply_gate(&Gate::X, &[0]).unwrap();
        sv.apply_gate(&Gate::X, &[1]).unwrap();
        sv.apply_gate(&Gate::CCX, &[0, 1, 2]).unwrap();
        assert!((sv.probability(0b111) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_and_cz_and_cy() {
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_gate(&Gate::X, &[0]).unwrap();
        sv.apply_gate(&Gate::Swap, &[0, 1]).unwrap();
        assert!((sv.probability(0b10) - 1.0).abs() < 1e-12);
        // CZ on |11> flips the phase but not probabilities.
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_gate(&Gate::X, &[0]).unwrap();
        sv.apply_gate(&Gate::X, &[1]).unwrap();
        sv.apply_gate(&Gate::CZ, &[0, 1]).unwrap();
        assert!((sv.probability(0b11) - 1.0).abs() < 1e-12);
        assert!(sv
            .amplitude(0b11)
            .approx_eq(Complex64::new(-1.0, 0.0), 1e-12));
        // CY on |10> (control=qubit0 set) maps target through iY.
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_gate(&Gate::X, &[0]).unwrap();
        sv.apply_gate(&Gate::CY, &[0, 1]).unwrap();
        assert!((sv.probability(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rz_u1_phases_do_not_change_probabilities() {
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_gate(&Gate::H, &[0]).unwrap();
        sv.apply_gate(&Gate::RZ(0.7), &[0]).unwrap();
        sv.apply_gate(&Gate::U1(1.3), &[0]).unwrap();
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn u3_is_universal_1q() {
        // u3(pi, 0, pi) == X
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_gate(
            &Gate::U3(std::f64::consts::PI, 0.0, std::f64::consts::PI),
            &[0],
        )
        .unwrap();
        assert!((sv.probability(1) - 1.0).abs() < 1e-9);
        // u2(0, pi) == H up to phase
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_gate(&Gate::U2(0.0, std::f64::consts::PI), &[0])
            .unwrap();
        assert!((sv.probability(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn measurement_collapses_state() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_gate(&Gate::H, &[0]).unwrap();
        sv.apply_gate(&Gate::CX, &[0, 1]).unwrap();
        let outcome = sv.measure_qubit(0, &mut rng);
        // After measuring one half of a Bell pair, the other half matches.
        let expected = if outcome { 0b11 } else { 0b00 };
        assert!((sv.probability(expected) - 1.0).abs() < 1e-9);
        assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_gate(&Gate::X, &[0]).unwrap();
        sv.reset_qubit(0, &mut rng);
        assert!((sv.probability(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_follows_distribution() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_gate(&Gate::H, &[0]).unwrap();
        let mut ones = 0;
        for _ in 0..2000 {
            if sv.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        assert!((900..1100).contains(&ones), "got {ones} ones");
    }

    #[test]
    fn cumulative_distribution_matches_linear_scan() {
        // Identical RNG stream -> bit-identical outcomes for both samplers.
        let mut sv = StateVector::new(4).unwrap();
        for q in 0..4 {
            sv.apply_gate(&Gate::H, &[q]).unwrap();
        }
        sv.apply_gate(&Gate::T, &[2]).unwrap();
        sv.apply_gate(&Gate::CX, &[0, 3]).unwrap();
        let table = sv.cumulative_distribution();
        assert_eq!(table.len(), 16);
        assert!(!table.is_empty());
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        for _ in 0..500 {
            assert_eq!(sv.sample(&mut rng_a), table.sample(&mut rng_b));
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn stride_loops_match_reference_semantics() {
        // CX/SWAP/CP/CRZ/CCX/CY over every qubit ordering on a 3-qubit
        // register, compared against the definition applied amplitude-wise.
        let qubit_pairs = [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)];
        for &(a, b) in &qubit_pairs {
            // Prepare an asymmetric superposition.
            let mut sv = StateVector::new(3).unwrap();
            sv.apply_gate(&Gate::H, &[0]).unwrap();
            sv.apply_gate(&Gate::H, &[1]).unwrap();
            sv.apply_gate(&Gate::T, &[1]).unwrap();
            sv.apply_gate(&Gate::RY(0.3), &[2]).unwrap();
            let before: Vec<Complex64> = (0..8).map(|i| sv.amplitude(i)).collect();

            let mut cx = sv.clone();
            cx.apply_gate(&Gate::CX, &[a, b]).unwrap();
            for i in 0..8usize {
                let expected = if i & (1 << a) != 0 { i ^ (1 << b) } else { i };
                assert!(cx.amplitude(expected).approx_eq(before[i], 1e-12));
            }

            let mut swap = sv.clone();
            swap.apply_gate(&Gate::Swap, &[a, b]).unwrap();
            for i in 0..8usize {
                let bit_a = (i >> a) & 1;
                let bit_b = (i >> b) & 1;
                let expected = (i & !(1 << a) & !(1 << b)) | (bit_a << b) | (bit_b << a);
                assert!(swap.amplitude(expected).approx_eq(before[i], 1e-12));
            }

            let mut cp = sv.clone();
            cp.apply_gate(&Gate::CP(0.7), &[a, b]).unwrap();
            for i in 0..8usize {
                let both = i & (1 << a) != 0 && i & (1 << b) != 0;
                let expected = if both {
                    before[i] * Complex64::cis(0.7)
                } else {
                    before[i]
                };
                assert!(cp.amplitude(i).approx_eq(expected, 1e-12));
            }

            let mut crz = sv.clone();
            crz.apply_gate(&Gate::CRZ(0.9), &[a, b]).unwrap();
            for i in 0..8usize {
                let expected = if i & (1 << a) != 0 {
                    let half = if i & (1 << b) == 0 { -0.45 } else { 0.45 };
                    before[i] * Complex64::cis(half)
                } else {
                    before[i]
                };
                assert!(crz.amplitude(i).approx_eq(expected, 1e-12));
            }
        }

        // CCX across every distinct triple ordering.
        let mut sv = StateVector::new(3).unwrap();
        for q in 0..3 {
            sv.apply_gate(&Gate::H, &[q]).unwrap();
        }
        sv.apply_gate(&Gate::T, &[0]).unwrap();
        let before: Vec<Complex64> = (0..8).map(|i| sv.amplitude(i)).collect();
        for perm in [(0, 1, 2), (2, 0, 1), (1, 2, 0), (2, 1, 0)] {
            let (c0, c1, t) = perm;
            let mut ccx = sv.clone();
            ccx.apply_gate(&Gate::CCX, &[c0, c1, t]).unwrap();
            for i in 0..8usize {
                let controls = i & (1 << c0) != 0 && i & (1 << c1) != 0;
                let expected = if controls { i ^ (1 << t) } else { i };
                assert!(ccx.amplitude(expected).approx_eq(before[i], 1e-12));
            }
        }
    }

    /// Reference application: one `apply_gate` per instruction, no fusion.
    fn apply_unfused(sv: &mut StateVector, circuit: &Circuit) {
        for inst in circuit.instructions() {
            if matches!(inst.gate, Gate::Measure | Gate::Reset | Gate::Barrier) {
                continue;
            }
            sv.apply_gate(&inst.gate, &inst.qubits).unwrap();
        }
    }

    #[test]
    fn fused_apply_matches_unfused() {
        // Runs of 1q gates, diagonal chains (including a reversed pair),
        // passthrough 2q/3q gates and a barrier fence.
        let mut c = Circuit::new(3, 0);
        c.h(0).unwrap();
        c.t(0).unwrap();
        c.s(0).unwrap();
        c.h(1).unwrap();
        c.rz(0.3, 1).unwrap();
        c.cz(0, 1).unwrap();
        c.append(Gate::CP(0.4), &[0, 1]).unwrap();
        c.append(Gate::CRZ(0.9), &[1, 0]).unwrap(); // reversed operand order
        c.ry(0.7, 2).unwrap();
        c.cx(1, 2).unwrap();
        c.barrier(&[0, 1, 2]).unwrap();
        c.u3(0.2, 0.4, 0.6, 2).unwrap();
        c.tdg(2).unwrap();
        c.ccx(0, 1, 2).unwrap();
        c.swap(0, 2).unwrap();

        let mut fused = StateVector::new(3).unwrap();
        fused.apply_circuit(&c).unwrap();
        let mut reference = StateVector::new(3).unwrap();
        apply_unfused(&mut reference, &c);
        for i in 0..8 {
            assert!(
                fused.amplitude(i).approx_eq(reference.amplitude(i), 1e-12),
                "amplitude {i} diverged: {:?} vs {:?}",
                fused.amplitude(i),
                reference.amplitude(i)
            );
        }
    }

    #[test]
    fn fusion_collapses_runs() {
        let mut c = Circuit::new(2, 0);
        c.h(0).unwrap();
        c.t(0).unwrap();
        c.s(0).unwrap();
        c.cz(0, 1).unwrap();
        c.append(Gate::CP(0.4), &[0, 1]).unwrap();
        c.append(Gate::CRZ(0.9), &[1, 0]).unwrap();
        let ops = fuse_circuit(&c);
        // One fused single on qubit 0, one fused diagonal pair.
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0], FusedOp::Single { qubit: 0, .. }));
        assert!(matches!(
            ops[1],
            FusedOp::DiagonalPair {
                control: 0,
                target: 1,
                ..
            }
        ));

        // Barriers fence fusion.
        let mut fenced = Circuit::new(1, 0);
        fenced.h(0).unwrap();
        fenced.barrier(&[0]).unwrap();
        fenced.h(0).unwrap();
        assert_eq!(fuse_circuit(&fenced).len(), 2);
    }

    #[test]
    fn lone_diagonal_gates_stay_bit_identical() {
        // An unfused CZ/CP/CRZ must produce *exactly* the amplitudes of the
        // dedicated stride loops: three quadrants stay at phase 1 and are
        // skipped, the rest multiply by the same `cis` factor.
        for gate in [Gate::CZ, Gate::CP(0.7), Gate::CRZ(0.9)] {
            let mut c = Circuit::new(2, 0);
            c.h(0).unwrap();
            c.h(1).unwrap();
            c.barrier(&[0, 1]).unwrap(); // keep the H's out of the comparison
            c.append(gate, &[0, 1]).unwrap();
            let mut fused = StateVector::new(2).unwrap();
            fused.apply_circuit(&c).unwrap();
            let mut reference = StateVector::new(2).unwrap();
            apply_unfused(&mut reference, &c);
            for i in 0..4 {
                assert_eq!(fused.amplitude(i), reference.amplitude(i), "gate {gate:?}");
            }
        }
    }

    #[test]
    fn errors_for_bad_usage() {
        let mut sv = StateVector::new(1).unwrap();
        assert!(sv.apply_gate(&Gate::H, &[3]).is_err());
        assert!(sv.apply_gate(&Gate::Measure, &[0]).is_err());
        let big = Circuit::new(2, 0);
        assert!(sv.apply_circuit(&big).is_err());
    }
}
