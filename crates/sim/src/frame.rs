//! Pauli-frame batched-shot simulation for noisy Clifford circuits.
//!
//! The per-shot replay path rebuilds and replays the full `(2n+1) × (2n+1)`
//! stabilizer tableau for every shot — O(shots · n² · depth) word operations —
//! even though the only thing that differs between shots of a *Clifford*
//! circuit is which Pauli errors fired and which measurement coins came up.
//! This module exploits that: it simulates the ideal tableau **once** at plan
//! time, and per shot propagates only an n-qubit *Pauli frame* (an X mask and
//! a Z mask, `⌈n/64⌉` `u64` words each) plus a handful of parity evaluations —
//! O(shots · n · depth / 64) word operations.
//!
//! # Why this is exact (and byte-identical to replay)
//!
//! The replay computation is affine over GF(2) in two kinds of random
//! sources: the *error indicators* (which Pauli fired at which noise site)
//! and the *measurement coins* (the `gen_bool(0.5)` draws of random-outcome
//! measurements). Three facts make this linearity exact, not approximate:
//!
//! 1. **Pauli errors never change tableau structure.** Applying X/Y/Z to a
//!    tableau only flips phase bits `r[i]` (by whether row `i` anticommutes
//!    with the error); the X/Z components — and therefore every pivot choice
//!    and row operation taken during measurement — are identical in every
//!    shot.
//! 2. **Anticommutation survives conjugation.** An error `E` injected
//!    mid-circuit flips `r[i]` iff row `i` anticommutes with `E` *at that
//!    point*; conjugating both by the rest of the circuit preserves the
//!    symplectic product, so the flip equals the anticommutation of the
//!    *final* row with the *forward-propagated* error. All errors can thus be
//!    accumulated into a single terminal frame.
//! 3. **`rowsum` phases are linear in `r`.** The Aaronson–Gottesman phase is
//!    `(2·r[h] + 2·r[i] + Q) mod 4` where `Q` depends only on X/Z components
//!    and the total is always even for valid stabilizer products, so a
//!    perturbation `δ` of the phase bits propagates as `δ[h] ^= δ[i]` —
//!    plain XOR.
//!
//! [`FramePlan::build`] therefore (a) forward-propagates a unit X and a unit
//! Z frame from every noise site to the end of the circuit, and (b) replays
//! the terminal measurement block *symbolically*, tracking for every phase
//! bit its dependence on the coins and on the terminal frame. A shot then
//! draws from the RNG **in exactly the order the replay path would** (noise
//! sites in instruction order, then per measurement the coin and the readout
//! flip), so the frame path is byte-identical to [`run_stabilizer_shot`]
//! replay — with or without noise — and slots into the sharded executor
//! without disturbing shard seeding or [`SEED_STREAM_STRIDE`] semantics.
//!
//! # Eligibility
//!
//! A plan is built only for circuits that are Clifford with all measurements
//! terminal (no mid-circuit measure, no `Reset` anywhere) and at most 64
//! random-outcome measurements; anything else returns `None` and the executor
//! falls back to per-shot replay. The analyzer flags fallback-forcing
//! circuits as lint `QL0008`.
//!
//! [`run_stabilizer_shot`]: crate::executor::run_with_noise_parallel
//! [`SEED_STREAM_STRIDE`]: crate::executor::SEED_STREAM_STRIDE

use rand::Rng;

use qrio_circuit::{Circuit, Gate, Instruction};

use crate::error::SimulatorError;
use crate::executor::has_only_terminal_measurements;
use crate::noise::NoiseModel;
use crate::stabilizer::StabilizerSimulator;

/// A bit-packed n-qubit Pauli operator, sign-free: `fx` holds the X
/// components, `fz` the Z components. Used both as the per-shot error frame
/// and, at plan time, to forward-propagate unit errors through the circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    fx: Vec<u64>,
    fz: Vec<u64>,
}

impl Frame {
    fn zero(wpr: usize) -> Self {
        Frame {
            fx: vec![0; wpr],
            fz: vec![0; wpr],
        }
    }

    fn unit_x(q: usize, wpr: usize) -> Self {
        let mut f = Frame::zero(wpr);
        f.fx[q >> 6] |= 1 << (q & 63);
        f
    }

    fn unit_z(q: usize, wpr: usize) -> Self {
        let mut f = Frame::zero(wpr);
        f.fz[q >> 6] |= 1 << (q & 63);
        f
    }

    fn x_bit(&self, q: usize) -> bool {
        self.fx[q >> 6] >> (q & 63) & 1 == 1
    }

    fn z_bit(&self, q: usize) -> bool {
        self.fz[q >> 6] >> (q & 63) & 1 == 1
    }

    /// Conjugate by H on `q`: X ↔ Z.
    fn h(&mut self, q: usize) {
        let (w, bit) = (q >> 6, 1u64 << (q & 63));
        let xb = self.fx[w] & bit;
        let zb = self.fz[w] & bit;
        self.fx[w] = (self.fx[w] & !bit) | zb;
        self.fz[w] = (self.fz[w] & !bit) | xb;
    }

    /// Conjugate by S (or S†, identical sign-free) on `q`: X → Y.
    fn s(&mut self, q: usize) {
        let (w, bit) = (q >> 6, 1u64 << (q & 63));
        self.fz[w] ^= self.fx[w] & bit;
    }

    /// Conjugate by CNOT control `a`, target `b`: X_a → X_a X_b, Z_b → Z_a Z_b.
    fn cx(&mut self, a: usize, b: usize) {
        if self.x_bit(a) {
            self.fx[b >> 6] ^= 1 << (b & 63);
        }
        if self.z_bit(b) {
            self.fz[a >> 6] ^= 1 << (a & 63);
        }
    }

    /// RZ at a multiple of π/2; mirrors `StabilizerSimulator::apply_quarter_z`
    /// (sign-free, so S and S† coincide and Z is the identity).
    fn quarter_z(&mut self, q: usize, theta: f64) {
        let k = (theta / std::f64::consts::FRAC_PI_2).round() as i64;
        if k.rem_euclid(2) == 1 {
            self.s(q);
        }
    }

    fn u3(&mut self, q: usize, theta: f64, phi: f64, lambda: f64) {
        self.quarter_z(q, lambda);
        self.s(q); // sdg ≡ s sign-free
        self.h(q);
        self.quarter_z(q, theta);
        self.h(q);
        self.s(q);
        self.quarter_z(q, phi);
    }

    /// Conjugate the frame by one Clifford gate, using the same decomposition
    /// as `StabilizerSimulator::apply_gate` so both views of the circuit
    /// agree gate-for-gate. Paulis and the identity are no-ops (they commute
    /// with every Pauli up to a sign the frame does not carry).
    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimulatorError> {
        match *gate {
            Gate::I | Gate::Barrier | Gate::X | Gate::Y | Gate::Z => {}
            Gate::H => self.h(qubits[0]),
            Gate::S | Gate::Sdg => self.s(qubits[0]),
            Gate::SX => {
                self.h(qubits[0]);
                self.s(qubits[0]);
                self.h(qubits[0]);
            }
            Gate::CX => self.cx(qubits[0], qubits[1]),
            Gate::CZ => {
                self.h(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.h(qubits[1]);
            }
            Gate::CY => {
                self.s(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.s(qubits[1]);
            }
            Gate::Swap => {
                self.cx(qubits[0], qubits[1]);
                self.cx(qubits[1], qubits[0]);
                self.cx(qubits[0], qubits[1]);
            }
            Gate::RZ(theta) | Gate::U1(theta) => self.quarter_z(qubits[0], theta),
            Gate::RX(theta) => {
                self.h(qubits[0]);
                self.quarter_z(qubits[0], theta);
                self.h(qubits[0]);
            }
            Gate::RY(theta) => {
                self.s(qubits[0]);
                self.h(qubits[0]);
                self.quarter_z(qubits[0], theta);
                self.h(qubits[0]);
                self.s(qubits[0]);
            }
            Gate::U2(phi, lambda) => {
                self.u3(qubits[0], std::f64::consts::FRAC_PI_2, phi, lambda);
            }
            Gate::U3(theta, phi, lambda) => self.u3(qubits[0], theta, phi, lambda),
            Gate::CP(theta) | Gate::CRZ(theta) => {
                let k = (theta / std::f64::consts::PI).round() as i64;
                if k.rem_euclid(2) == 1 {
                    self.h(qubits[1]);
                    self.cx(qubits[0], qubits[1]);
                    self.h(qubits[1]);
                }
                if matches!(gate, Gate::CRZ(_)) {
                    self.quarter_z(qubits[0], -theta / 2.0);
                }
            }
            ref g => {
                return Err(SimulatorError::NotClifford {
                    gate: g.name().to_string(),
                })
            }
        }
        Ok(())
    }
}

/// The terminal images of a unit X and a unit Z error injected at one noise
/// site: XORing the matching pair into the shot frame accounts for the error
/// exactly (Y uses both pairs, since Y ∝ X·Z and propagation is linear).
#[derive(Debug, Clone)]
struct Propagated {
    x_fx: Vec<u64>,
    x_fz: Vec<u64>,
    z_fx: Vec<u64>,
    z_fz: Vec<u64>,
}

/// One step of the per-shot loop, in the exact order (and with the exact RNG
/// draw pattern) of the replay path.
#[derive(Debug, Clone)]
enum ShotOp {
    /// Single-qubit depolarizing site with `p > 0`: one `gen_bool(p)`, and on
    /// a hit one `gen_range(0..3)` picking X/Y/Z.
    NoiseOne { p: f64, prop: Propagated },
    /// Two-qubit depolarizing site with `p > 0`: one `gen_bool(p)`, and on a
    /// hit one `gen_range(0..3)` picking first/second/both operands, each
    /// faulted operand drawing its own Pauli.
    NoiseTwo {
        p: f64,
        prop_a: Propagated,
        prop_b: Propagated,
    },
    /// Measurement with a random ideal outcome: the outcome *is* coin `coin`
    /// (errors flip phase bits, never the freshly drawn sign), followed by
    /// the readout-flip draw.
    MeasureRandom {
        clbit: usize,
        coin: u32,
        readout_p: f64,
    },
    /// Measurement with a deterministic ideal outcome: `base` XOR the parity
    /// of the recorded coin/frame dependencies, followed by the readout-flip
    /// draw.
    MeasureDet {
        clbit: usize,
        base: bool,
        dep_u: u64,
        dep_fx: Vec<u64>,
        dep_fz: Vec<u64>,
        readout_p: f64,
    },
}

/// Reusable per-worker buffers for [`FramePlan::run_shot`], so the hot loop
/// allocates nothing.
#[derive(Debug, Clone)]
pub(crate) struct FrameScratch {
    fx: Vec<u64>,
    fz: Vec<u64>,
}

/// A compiled Pauli-frame execution plan: the ideal circuit folded into
/// per-site error masks and a symbolic terminal measurement block.
///
/// Built once per run by [`FramePlan::build`]; [`run`]s of the shot loop are
/// then O(sites + measurements) word operations and draw from the RNG in the
/// exact order of the per-shot replay path, making results byte-identical to
/// replay at every seed, shard and thread count.
///
/// [`run`]: FramePlan::build
#[derive(Debug, Clone)]
pub struct FramePlan {
    wpr: usize,
    ops: Vec<ShotOp>,
}

impl FramePlan {
    /// Compile a plan for `circuit` under `noise`.
    ///
    /// Returns `Ok(None)` when the circuit is not eligible — non-Clifford,
    /// mid-circuit measurement, any `Reset`, or more than 64 random-outcome
    /// measurements — in which case the caller should use the replay path.
    ///
    /// # Errors
    ///
    /// Propagates tableau errors (e.g. out-of-range qubits); eligibility
    /// misses are *not* errors.
    pub fn build(
        circuit: &Circuit,
        noise: &NoiseModel,
    ) -> Result<Option<FramePlan>, SimulatorError> {
        if !circuit.is_clifford() || !has_only_terminal_measurements(circuit) {
            return Ok(None);
        }
        let n = circuit.num_qubits();
        let wpr = n.div_ceil(64).max(1);

        let mut tableau = StabilizerSimulator::new(n);
        tableau.apply_circuit(circuit)?;
        let mut sym = SymbolicTableau::new(&tableau);

        let instructions = circuit.instructions();
        let mut ops = Vec::new();
        let mut coins = 0u32;
        let mut any_measure = false;
        for (index, inst) in instructions.iter().enumerate() {
            match inst.gate {
                Gate::Barrier => {}
                Gate::Measure => {
                    any_measure = true;
                    match symbolic_measure_op(
                        &mut sym,
                        inst.qubits[0],
                        inst.clbits[0],
                        &mut coins,
                        noise,
                    )? {
                        Some(op) => ops.push(op),
                        None => return Ok(None),
                    }
                }
                Gate::Reset => unreachable!("terminal-measurement check rejects Reset"),
                ref gate => {
                    if let Some(op) = noise_site(gate, inst, index, instructions, wpr, noise)? {
                        ops.push(op);
                    }
                }
            }
        }
        if !any_measure {
            for q in 0..n {
                match symbolic_measure_op(&mut sym, q, q, &mut coins, noise)? {
                    Some(op) => ops.push(op),
                    None => return Ok(None),
                }
            }
        }
        Ok(Some(FramePlan { wpr, ops }))
    }

    /// Fresh scratch buffers sized for this plan.
    pub(crate) fn scratch(&self) -> FrameScratch {
        FrameScratch {
            fx: vec![0; self.wpr],
            fz: vec![0; self.wpr],
        }
    }

    /// Execute one shot: walk the plan, drawing noise hits, measurement coins
    /// and readout flips in replay order, and return the packed outcome.
    pub(crate) fn run_shot<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut FrameScratch) -> u64 {
        scratch.fx.fill(0);
        scratch.fz.fill(0);
        let mut coins = 0u64;
        let mut outcome = 0u64;
        for op in &self.ops {
            match op {
                ShotOp::NoiseOne { p, prop } => {
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        xor_random_pauli(prop, rng, scratch);
                    }
                }
                ShotOp::NoiseTwo { p, prop_a, prop_b } => {
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        match rng.gen_range(0..3u8) {
                            0 => xor_random_pauli(prop_a, rng, scratch),
                            1 => xor_random_pauli(prop_b, rng, scratch),
                            _ => {
                                xor_random_pauli(prop_a, rng, scratch);
                                xor_random_pauli(prop_b, rng, scratch);
                            }
                        }
                    }
                }
                ShotOp::MeasureRandom {
                    clbit,
                    coin,
                    readout_p,
                } => {
                    let raw = rng.gen_bool(0.5);
                    coins |= u64::from(raw) << coin;
                    record_bit(&mut outcome, *clbit, readout(raw, *readout_p, rng));
                }
                ShotOp::MeasureDet {
                    clbit,
                    base,
                    dep_u,
                    dep_fx,
                    dep_fz,
                    readout_p,
                } => {
                    let mut acc = dep_u & coins;
                    let mut word_acc = 0u64;
                    for j in 0..self.wpr {
                        word_acc ^= (dep_fx[j] & scratch.fx[j]) ^ (dep_fz[j] & scratch.fz[j]);
                    }
                    acc ^= word_acc; // parities add mod 2, so XOR then popcount once
                    let raw = *base ^ (acc.count_ones() & 1 == 1);
                    record_bit(&mut outcome, *clbit, readout(raw, *readout_p, rng));
                }
            }
        }
        outcome
    }
}

/// Build the noise-site op (if any) for the unitary at `index`, propagating
/// unit errors on each faultable operand through the rest of the circuit.
fn noise_site(
    gate: &Gate,
    inst: &Instruction,
    index: usize,
    instructions: &[Instruction],
    wpr: usize,
    noise: &NoiseModel,
) -> Result<Option<ShotOp>, SimulatorError> {
    if gate.is_directive() {
        return Ok(None);
    }
    if gate.is_two_qubit() && inst.qubits.len() == 2 {
        let p = noise.two_qubit_error(inst.qubits[0], inst.qubits[1]);
        if p > 0.0 {
            return Ok(Some(ShotOp::NoiseTwo {
                p,
                prop_a: propagate(inst.qubits[0], &instructions[index + 1..], wpr)?,
                prop_b: propagate(inst.qubits[1], &instructions[index + 1..], wpr)?,
            }));
        }
    } else if let Some(&q) = inst.qubits.first() {
        let p = noise.single_qubit_error(q);
        if p > 0.0 {
            return Ok(Some(ShotOp::NoiseOne {
                p,
                prop: propagate(q, &instructions[index + 1..], wpr)?,
            }));
        }
    }
    Ok(None)
}

/// Terminal images of unit X / unit Z errors on `q` injected just before
/// `rest` of the circuit.
fn propagate(q: usize, rest: &[Instruction], wpr: usize) -> Result<Propagated, SimulatorError> {
    let mut xf = Frame::unit_x(q, wpr);
    let mut zf = Frame::unit_z(q, wpr);
    for inst in rest {
        if matches!(inst.gate, Gate::Measure | Gate::Reset | Gate::Barrier) {
            continue;
        }
        xf.apply_gate(&inst.gate, &inst.qubits)?;
        zf.apply_gate(&inst.gate, &inst.qubits)?;
    }
    Ok(Propagated {
        x_fx: xf.fx,
        x_fz: xf.fz,
        z_fx: zf.fx,
        z_fz: zf.fz,
    })
}

/// XOR a uniformly random non-identity Pauli at a site into the shot frame,
/// drawing exactly like `PauliError::random` (one `gen_range(0..3)`).
fn xor_random_pauli<R: Rng + ?Sized>(prop: &Propagated, rng: &mut R, scratch: &mut FrameScratch) {
    let kind = rng.gen_range(0..3u8); // 0 = X, 1 = Y, 2 = Z
    if kind != 2 {
        xor_into(&mut scratch.fx, &prop.x_fx);
        xor_into(&mut scratch.fz, &prop.x_fz);
    }
    if kind != 0 {
        xor_into(&mut scratch.fx, &prop.z_fx);
        xor_into(&mut scratch.fz, &prop.z_fz);
    }
}

fn xor_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

/// Readout flip, drawing exactly like `NoiseModel::flip_readout`.
fn readout<R: Rng + ?Sized>(raw: bool, p: f64, rng: &mut R) -> bool {
    if p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)) {
        !raw
    } else {
        raw
    }
}

/// Replay-path overwrite semantics: a later measurement into the same
/// classical bit replaces the earlier value.
fn record_bit(outcome: &mut u64, clbit: usize, bit: bool) {
    if bit {
        *outcome |= 1 << clbit;
    } else {
        *outcome &= !(1 << clbit);
    }
}

/// Run one symbolic measurement of `qubit` into `clbit`, mutating the
/// symbolic tableau exactly like `StabilizerSimulator::measure` mutates the
/// concrete one. Returns `None` when the plan would need more than 64 coins.
fn symbolic_measure_op(
    sym: &mut SymbolicTableau,
    qubit: usize,
    clbit: usize,
    coins: &mut u32,
    noise: &NoiseModel,
) -> Result<Option<ShotOp>, SimulatorError> {
    let readout_p = noise.readout_error(qubit);
    match sym.measure(qubit, *coins) {
        SymbolicOutcome::Random => {
            if *coins >= 64 {
                return Ok(None);
            }
            let coin = *coins;
            *coins += 1;
            Ok(Some(ShotOp::MeasureRandom {
                clbit,
                coin,
                readout_p,
            }))
        }
        SymbolicOutcome::Det {
            base,
            dep_u,
            dep_fx,
            dep_fz,
        } => Ok(Some(ShotOp::MeasureDet {
            clbit,
            base,
            dep_u,
            dep_fx,
            dep_fz,
            readout_p,
        })),
    }
}

/// Outcome of a symbolic measurement.
enum SymbolicOutcome {
    /// The ideal outcome is a fresh coin; the tableau consumed it.
    Random,
    /// The ideal outcome is `base` XOR the parity of the listed dependencies.
    Det {
        base: bool,
        dep_u: u64,
        dep_fx: Vec<u64>,
        dep_fz: Vec<u64>,
    },
}

/// A CHP tableau augmented with, per row, the GF(2) dependence of its phase
/// bit on the measurement coins (`dep_u`, one bit per coin) and on the
/// terminal error frame (`dep_fx`/`dep_fz`, one bit per qubit).
///
/// Row `i`'s phase flips iff the terminal frame anticommutes with row `i`:
/// `parity(fx & z_i) ^ parity(fz & x_i)` — hence the initial dependence of
/// row `i` is `dep_fx = z_i`, `dep_fz = x_i`. `rowsum` propagates
/// dependencies by XOR (phase updates are linear in `r`, see module docs),
/// and a random measurement's fresh row depends on its coin alone.
struct SymbolicTableau {
    n: usize,
    wpr: usize,
    x: Vec<u64>,
    z: Vec<u64>,
    r: Vec<bool>,
    dep_u: Vec<u64>,
    dep_fx: Vec<u64>,
    dep_fz: Vec<u64>,
}

impl SymbolicTableau {
    fn new(sim: &StabilizerSimulator) -> Self {
        let n = sim.num_qubits();
        let wpr = sim.words_per_row();
        let rows = 2 * n + 1;
        let mut x = Vec::with_capacity(rows * wpr);
        let mut z = Vec::with_capacity(rows * wpr);
        let mut r = Vec::with_capacity(rows);
        let mut dep_fx = Vec::with_capacity(rows * wpr);
        let mut dep_fz = Vec::with_capacity(rows * wpr);
        for i in 0..rows {
            x.extend_from_slice(sim.row_x(i));
            z.extend_from_slice(sim.row_z(i));
            r.push(sim.phase_bit(i));
            dep_fx.extend_from_slice(sim.row_z(i));
            dep_fz.extend_from_slice(sim.row_x(i));
        }
        SymbolicTableau {
            n,
            wpr,
            x,
            z,
            r,
            dep_u: vec![0; rows],
            dep_fx,
            dep_fz,
        }
    }

    /// `rowsum` with dependency tracking: identical X/Z/phase arithmetic to
    /// `StabilizerSimulator::rowsum`, plus `deps[h] ^= deps[i]`.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase: i64 = i64::from(self.r[h]) * 2 + i64::from(self.r[i]) * 2;
        let hoff = h * self.wpr;
        let ioff = i * self.wpr;
        for j in 0..self.wpr {
            let x1 = self.x[ioff + j];
            let z1 = self.z[ioff + j];
            let x2 = self.x[hoff + j];
            let z2 = self.z[hoff + j];
            let plus = (x1 & z1 & !x2 & z2) | (x1 & !z1 & x2 & z2) | (!x1 & z1 & x2 & !z2);
            let minus = (x1 & z1 & x2 & !z2) | (x1 & !z1 & !x2 & z2) | (!x1 & z1 & x2 & z2);
            phase += i64::from(plus.count_ones()) - i64::from(minus.count_ones());
            self.x[hoff + j] = x2 ^ x1;
            self.z[hoff + j] = z2 ^ z1;
            self.dep_fx[hoff + j] ^= self.dep_fx[ioff + j];
            self.dep_fz[hoff + j] ^= self.dep_fz[ioff + j];
        }
        self.r[h] = phase.rem_euclid(4) == 2;
        self.dep_u[h] ^= self.dep_u[i];
    }

    /// Symbolic mirror of `StabilizerSimulator::measure`: same pivot search
    /// and row operations (both are error-independent), but outcomes are
    /// returned as dependency sets instead of drawing from an RNG.
    fn measure(&mut self, a: usize, next_coin: u32) -> SymbolicOutcome {
        let n = self.n;
        let wpr = self.wpr;
        let (w, bit) = (a >> 6, 1u64 << (a & 63));
        let mut p = None;
        for i in n..2 * n {
            if self.x[i * wpr + w] & bit != 0 {
                p = Some(i);
                break;
            }
        }
        if let Some(p) = p {
            for i in 0..2 * n {
                if i != p && self.x[i * wpr + w] & bit != 0 {
                    self.rowsum(i, p);
                }
            }
            self.x.copy_within(p * wpr..(p + 1) * wpr, (p - n) * wpr);
            self.z.copy_within(p * wpr..(p + 1) * wpr, (p - n) * wpr);
            self.r[p - n] = self.r[p];
            self.dep_u[p - n] = self.dep_u[p];
            self.dep_fx
                .copy_within(p * wpr..(p + 1) * wpr, (p - n) * wpr);
            self.dep_fz
                .copy_within(p * wpr..(p + 1) * wpr, (p - n) * wpr);
            self.x[p * wpr..(p + 1) * wpr].fill(0);
            self.z[p * wpr..(p + 1) * wpr].fill(0);
            self.z[p * wpr + w] |= bit;
            // The concrete tableau sets r[p] to the fresh coin; symbolically
            // that is base=false plus a sole dependency on the coin.
            self.r[p] = false;
            self.dep_u[p] = 1u64.checked_shl(next_coin).unwrap_or(0);
            self.dep_fx[p * wpr..(p + 1) * wpr].fill(0);
            self.dep_fz[p * wpr..(p + 1) * wpr].fill(0);
            SymbolicOutcome::Random
        } else {
            let scratch = 2 * n;
            self.x[scratch * wpr..(scratch + 1) * wpr].fill(0);
            self.z[scratch * wpr..(scratch + 1) * wpr].fill(0);
            self.r[scratch] = false;
            self.dep_u[scratch] = 0;
            self.dep_fx[scratch * wpr..(scratch + 1) * wpr].fill(0);
            self.dep_fz[scratch * wpr..(scratch + 1) * wpr].fill(0);
            for i in 0..n {
                if self.x[i * wpr + w] & bit != 0 {
                    self.rowsum(scratch, i + n);
                }
            }
            SymbolicOutcome::Det {
                base: self.r[scratch],
                dep_u: self.dep_u[scratch],
                dep_fx: self.dep_fx[scratch * wpr..(scratch + 1) * wpr].to_vec(),
                dep_fz: self.dep_fz[scratch * wpr..(scratch + 1) * wpr].to_vec(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_circuit::library;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ineligible_circuits_return_none() {
        // Mid-circuit reset.
        let mut reset = Circuit::new(2, 2);
        reset.x(0).unwrap();
        reset.reset(0).unwrap();
        reset.measure_all().unwrap();
        assert!(FramePlan::build(&reset, &NoiseModel::ideal(2))
            .unwrap()
            .is_none());

        // Gate after measurement.
        let mut mid = Circuit::new(2, 2);
        mid.h(0).unwrap();
        mid.measure(0, 0).unwrap();
        mid.x(1).unwrap();
        mid.measure(1, 1).unwrap();
        assert!(FramePlan::build(&mid, &NoiseModel::ideal(2))
            .unwrap()
            .is_none());

        // Non-Clifford gate.
        let mut t = Circuit::new(1, 1);
        t.t(0).unwrap();
        t.measure(0, 0).unwrap();
        assert!(FramePlan::build(&t, &NoiseModel::ideal(1))
            .unwrap()
            .is_none());
    }

    #[test]
    fn deterministic_circuit_reproduces_exact_outcome() {
        let secret = 0b1011001101u64;
        let circuit = library::bernstein_vazirani(10, secret).unwrap();
        let plan = FramePlan::build(&circuit, &NoiseModel::ideal(10))
            .unwrap()
            .expect("bv is eligible");
        let mut scratch = plan.scratch();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..16 {
            assert_eq!(plan.run_shot(&mut rng, &mut scratch), secret);
        }
    }

    #[test]
    fn ghz_shots_are_bimodal_and_correlated() {
        let circuit = library::ghz(5).unwrap();
        let plan = FramePlan::build(&circuit, &NoiseModel::ideal(5))
            .unwrap()
            .expect("ghz is eligible");
        let mut scratch = plan.scratch();
        let mut rng = StdRng::seed_from_u64(2);
        let all_ones = (1u64 << 5) - 1;
        let mut zeros = 0;
        for _ in 0..200 {
            let outcome = plan.run_shot(&mut rng, &mut scratch);
            assert!(outcome == 0 || outcome == all_ones, "got {outcome:b}");
            if outcome == 0 {
                zeros += 1;
            }
        }
        assert!((40..160).contains(&zeros), "{zeros} zeros of 200");
    }

    #[test]
    fn pure_readout_noise_flips_every_bit() {
        let mut circuit = Circuit::new(2, 2);
        circuit.measure_all().unwrap();
        let noise = NoiseModel::uniform(2, 0.0, 0.0, 1.0);
        let plan = FramePlan::build(&circuit, &noise).unwrap().unwrap();
        let mut scratch = plan.scratch();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..32 {
            assert_eq!(plan.run_shot(&mut rng, &mut scratch), 0b11);
        }
    }

    #[test]
    fn certain_x_noise_site_flips_downstream_measurement() {
        // One H-free wire: |0> -I-> measure, with p(single-qubit error) = 1.
        // Every shot faults the I gate with X, Y or Z; X and Y flip the
        // outcome, so roughly 2/3 of shots read 1.
        let mut circuit = Circuit::new(1, 1);
        circuit.append(Gate::I, &[0]).unwrap();
        circuit.measure(0, 0).unwrap();
        let noise = NoiseModel::uniform(1, 1.0, 0.0, 0.0);
        let plan = FramePlan::build(&circuit, &noise).unwrap().unwrap();
        let mut scratch = plan.scratch();
        let mut rng = StdRng::seed_from_u64(4);
        let ones: u32 = (0..600)
            .map(|_| plan.run_shot(&mut rng, &mut scratch) as u32)
            .sum();
        assert!((300..500).contains(&ones), "{ones} ones of 600");
    }
}
