//! Stabilizer (Clifford) simulation via the Aaronson–Gottesman CHP tableau.
//!
//! The Gottesman–Knill theorem lets circuits composed solely of Clifford
//! operations be simulated in polynomial time, which is the foundation of the
//! paper's *Clifford canary* fidelity-ranking strategy (§3.4.1): the canary is
//! classically simulable at any qubit count, yet retains the two-qubit gate
//! structure of the user's circuit.
//!
//! The implementation follows Aaronson & Gottesman, *Improved simulation of
//! stabilizer circuits* (2004): a `(2n + 1) × (2n + 1)` binary tableau whose
//! first `n` rows are destabilizers and next `n` rows are stabilizers, with a
//! scratch row used during measurement.
//!
//! Rows are bit-packed into `u64` words (64 qubits per word), so the row
//! multiplication at the heart of measurement — `rowsum` — runs word-parallel:
//! the phase exponent of the Pauli product is accumulated with bitwise masks
//! and popcounts instead of a per-qubit table lookup, and the row XOR touches
//! `⌈n/64⌉` words instead of `n` booleans. This is ~64× less memory and
//! memory traffic than the previous `Vec<Vec<bool>>` layout.

use rand::Rng;

use qrio_circuit::{Circuit, Gate};

use crate::error::SimulatorError;

/// CHP stabilizer tableau over `n` qubits, bit-packed 64 qubits per word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizerSimulator {
    n: usize,
    /// Words per row: `⌈n/64⌉` (at least 1 so indexing stays trivial).
    wpr: usize,
    /// X components, row-major: bit `j % 64` of word `i * wpr + j / 64` is
    /// the X component of row `i` on qubit `j`. Bits at positions `>= n` in
    /// the last word of a row are always zero.
    x: Vec<u64>,
    /// Z components, same layout as `x`.
    z: Vec<u64>,
    /// r[i]: phase bit of row i (true = -1).
    r: Vec<bool>,
}

impl StabilizerSimulator {
    /// The |0…0⟩ stabilizer state over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        let n = num_qubits;
        let wpr = n.div_ceil(64).max(1);
        let rows = 2 * n + 1;
        let mut sim = StabilizerSimulator {
            n,
            wpr,
            x: vec![0; rows * wpr],
            z: vec![0; rows * wpr],
            r: vec![false; rows],
        };
        for i in 0..n {
            sim.x[i * wpr + (i >> 6)] |= 1 << (i & 63); // destabilizers X_i
            sim.z[(n + i) * wpr + (i >> 6)] |= 1 << (i & 63); // stabilizers Z_i
        }
        sim
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Words per bit-packed row (`⌈n/64⌉`, at least 1). Used by the
    /// Pauli-frame planner to lay out its masks identically.
    pub(crate) fn words_per_row(&self) -> usize {
        self.wpr
    }

    /// The packed X components of row `i` (row layout documented on `x`).
    pub(crate) fn row_x(&self, i: usize) -> &[u64] {
        &self.x[i * self.wpr..(i + 1) * self.wpr]
    }

    /// The packed Z components of row `i`.
    pub(crate) fn row_z(&self, i: usize) -> &[u64] {
        &self.z[i * self.wpr..(i + 1) * self.wpr]
    }

    /// The phase bit of row `i` (true = −1).
    pub(crate) fn phase_bit(&self, i: usize) -> bool {
        self.r[i]
    }

    /// Apply a Hadamard gate to qubit `a`.
    pub fn h(&mut self, a: usize) {
        let (w, bit) = (a >> 6, 1u64 << (a & 63));
        let mut off = w;
        for i in 0..2 * self.n {
            let xw = self.x[off];
            let zw = self.z[off];
            self.r[i] ^= xw & zw & bit != 0;
            self.x[off] = (xw & !bit) | (zw & bit);
            self.z[off] = (zw & !bit) | (xw & bit);
            off += self.wpr;
        }
    }

    /// Apply an S (phase) gate to qubit `a`.
    pub fn s(&mut self, a: usize) {
        let (w, bit) = (a >> 6, 1u64 << (a & 63));
        let mut off = w;
        for i in 0..2 * self.n {
            let xw = self.x[off];
            let zw = self.z[off];
            self.r[i] ^= xw & zw & bit != 0;
            self.z[off] = zw ^ (xw & bit);
            off += self.wpr;
        }
    }

    /// Apply a CNOT with control `a` and target `b`.
    pub fn cx(&mut self, a: usize, b: usize) {
        let (wa, sa) = (a >> 6, a & 63);
        let (wb, sb) = (b >> 6, b & 63);
        let mut row = 0;
        // Branchless bit arithmetic: conditional XORs on random tableau data
        // would mispredict about half the time.
        for i in 0..2 * self.n {
            let xia = (self.x[row + wa] >> sa) & 1;
            let zia = (self.z[row + wa] >> sa) & 1;
            let xib = (self.x[row + wb] >> sb) & 1;
            let zib = (self.z[row + wb] >> sb) & 1;
            self.r[i] ^= xia & zib & (xib ^ zia ^ 1) != 0;
            self.x[row + wb] ^= xia << sb;
            self.z[row + wa] ^= zib << sa;
            row += self.wpr;
        }
    }

    /// Apply a Pauli-X gate to qubit `a`.
    pub fn x_gate(&mut self, a: usize) {
        // X = H Z H, but the direct phase update is cheaper: X anticommutes with Z.
        let (w, bit) = (a >> 6, 1u64 << (a & 63));
        let mut off = w;
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[off] & bit != 0;
            off += self.wpr;
        }
    }

    /// Apply a Pauli-Z gate to qubit `a`.
    pub fn z_gate(&mut self, a: usize) {
        let (w, bit) = (a >> 6, 1u64 << (a & 63));
        let mut off = w;
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[off] & bit != 0;
            off += self.wpr;
        }
    }

    /// Apply a Pauli-Y gate to qubit `a`.
    pub fn y_gate(&mut self, a: usize) {
        // Y ∝ Z·X: anticommutes with both X and Z components individually.
        self.z_gate(a);
        self.x_gate(a);
    }

    fn sdg(&mut self, a: usize) {
        self.s(a);
        self.s(a);
        self.s(a);
    }

    /// Rowsum as defined by Aaronson–Gottesman: row `h` *= row `i`.
    ///
    /// Word-parallel: the per-qubit phase function `g` is evaluated for all 64
    /// qubits of a word at once as "+1" and "−1" bit masks, accumulated with
    /// popcounts.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase: i64 = i64::from(self.r[h]) * 2 + i64::from(self.r[i]) * 2;
        let hoff = h * self.wpr;
        let ioff = i * self.wpr;
        for j in 0..self.wpr {
            let x1 = self.x[ioff + j];
            let z1 = self.z[ioff + j];
            let x2 = self.x[hoff + j];
            let z2 = self.z[hoff + j];
            // g = +1 on: (x1,z1,x2,z2) ∈ {(1,1,0,1), (1,0,1,1), (0,1,1,0)}
            let plus = (x1 & z1 & !x2 & z2) | (x1 & !z1 & x2 & z2) | (!x1 & z1 & x2 & !z2);
            // g = −1 on: (x1,z1,x2,z2) ∈ {(1,1,1,0), (1,0,0,1), (0,1,1,1)}
            let minus = (x1 & z1 & x2 & !z2) | (x1 & !z1 & !x2 & z2) | (!x1 & z1 & x2 & z2);
            phase += i64::from(plus.count_ones()) - i64::from(minus.count_ones());
            self.x[hoff + j] = x2 ^ x1;
            self.z[hoff + j] = z2 ^ z1;
        }
        self.r[h] = phase.rem_euclid(4) == 2;
    }

    /// Measure qubit `a` in the computational basis, collapsing the state.
    pub fn measure<R: Rng + ?Sized>(&mut self, a: usize, rng: &mut R) -> bool {
        let n = self.n;
        let wpr = self.wpr;
        let (w, bit) = (a >> 6, 1u64 << (a & 63));
        // Is the outcome random? Look for a stabilizer with an X component on a.
        let mut p = None;
        for i in n..2 * n {
            if self.x[i * wpr + w] & bit != 0 {
                p = Some(i);
                break;
            }
        }
        if let Some(p) = p {
            // Random outcome.
            for i in 0..2 * n {
                if i != p && self.x[i * wpr + w] & bit != 0 {
                    self.rowsum(i, p);
                }
            }
            // Destabilizer row p-n becomes the old stabilizer row p.
            self.x.copy_within(p * wpr..(p + 1) * wpr, (p - n) * wpr);
            self.z.copy_within(p * wpr..(p + 1) * wpr, (p - n) * wpr);
            self.r[p - n] = self.r[p];
            // New stabilizer row p = ±Z_a with random sign.
            self.x[p * wpr..(p + 1) * wpr].fill(0);
            self.z[p * wpr..(p + 1) * wpr].fill(0);
            self.z[p * wpr + w] |= bit;
            let outcome = rng.gen_bool(0.5);
            self.r[p] = outcome;
            outcome
        } else {
            // Deterministic outcome: compute it in the scratch row 2n.
            let scratch = 2 * n;
            self.x[scratch * wpr..(scratch + 1) * wpr].fill(0);
            self.z[scratch * wpr..(scratch + 1) * wpr].fill(0);
            self.r[scratch] = false;
            for i in 0..n {
                if self.x[i * wpr + w] & bit != 0 {
                    self.rowsum(scratch, i + n);
                }
            }
            self.r[scratch]
        }
    }

    /// Apply one Clifford gate by decomposing it into {H, S, CX, X, Y, Z}.
    ///
    /// # Errors
    ///
    /// Returns [`SimulatorError::NotClifford`] if the gate is not a Clifford
    /// operation, and range errors for bad qubit indices.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimulatorError> {
        for &q in qubits {
            if q >= self.n {
                return Err(SimulatorError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.n,
                });
            }
        }
        if !gate.is_clifford() {
            return Err(SimulatorError::NotClifford {
                gate: gate.name().to_string(),
            });
        }
        match *gate {
            Gate::I | Gate::Barrier => {}
            Gate::H => self.h(qubits[0]),
            Gate::S => self.s(qubits[0]),
            Gate::Sdg => self.sdg(qubits[0]),
            Gate::X => self.x_gate(qubits[0]),
            Gate::Y => self.y_gate(qubits[0]),
            Gate::Z => self.z_gate(qubits[0]),
            Gate::SX => {
                // sqrt(X) = H S H up to global phase.
                self.h(qubits[0]);
                self.s(qubits[0]);
                self.h(qubits[0]);
            }
            Gate::CX => self.cx(qubits[0], qubits[1]),
            Gate::CZ => {
                self.h(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.h(qubits[1]);
            }
            Gate::CY => {
                self.sdg(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.s(qubits[1]);
            }
            Gate::Swap => {
                self.cx(qubits[0], qubits[1]);
                self.cx(qubits[1], qubits[0]);
                self.cx(qubits[0], qubits[1]);
            }
            Gate::RZ(theta) | Gate::U1(theta) => self.apply_quarter_z(qubits[0], theta),
            Gate::RX(theta) => {
                self.h(qubits[0]);
                self.apply_quarter_z(qubits[0], theta);
                self.h(qubits[0]);
            }
            Gate::RY(theta) => {
                // RY(θ) = S · RX(θ) · S†
                self.sdg(qubits[0]);
                self.h(qubits[0]);
                self.apply_quarter_z(qubits[0], theta);
                self.h(qubits[0]);
                self.s(qubits[0]);
            }
            Gate::U2(phi, lambda) => {
                self.apply_u3(qubits[0], std::f64::consts::FRAC_PI_2, phi, lambda);
            }
            Gate::U3(theta, phi, lambda) => self.apply_u3(qubits[0], theta, phi, lambda),
            Gate::CP(theta) | Gate::CRZ(theta) => {
                // At Clifford angles (multiples of π) both reduce to CZ or identity
                // up to single-qubit phases that do not affect measurement outcomes.
                let k = (theta / std::f64::consts::PI).round() as i64;
                if k.rem_euclid(2) == 1 {
                    self.h(qubits[1]);
                    self.cx(qubits[0], qubits[1]);
                    self.h(qubits[1]);
                }
                if matches!(gate, Gate::CRZ(_)) {
                    // CRZ(kπ) also applies RZ(-kπ/2) on the control (global-phase free).
                    self.apply_quarter_z(qubits[0], -theta / 2.0);
                }
            }
            Gate::Measure | Gate::Reset => {
                return Err(SimulatorError::Unsupported(
                    "measure/reset must be handled by the executor, not applied as a unitary"
                        .into(),
                ));
            }
            ref g => {
                return Err(SimulatorError::NotClifford {
                    gate: g.name().to_string(),
                })
            }
        }
        Ok(())
    }

    /// Apply RZ at a multiple of π/2 as a power of S.
    fn apply_quarter_z(&mut self, q: usize, theta: f64) {
        let k = (theta / std::f64::consts::FRAC_PI_2).round() as i64;
        match k.rem_euclid(4) {
            1 => self.s(q),
            2 => self.z_gate(q),
            3 => self.sdg(q),
            _ => {}
        }
    }

    /// Apply a Clifford-angle u3 via the ZYZ decomposition u3 = RZ(φ)·RY(θ)·RZ(λ).
    fn apply_u3(&mut self, q: usize, theta: f64, phi: f64, lambda: f64) {
        self.apply_quarter_z(q, lambda);
        self.sdg(q);
        self.h(q);
        self.apply_quarter_z(q, theta);
        self.h(q);
        self.s(q);
        self.apply_quarter_z(q, phi);
    }

    /// Apply every unitary instruction of a Clifford circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit contains non-Clifford gates or exceeds
    /// the register size.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimulatorError> {
        if circuit.num_qubits() > self.n {
            return Err(SimulatorError::QubitOutOfRange {
                qubit: circuit.num_qubits().saturating_sub(1),
                num_qubits: self.n,
            });
        }
        for inst in circuit.instructions() {
            if matches!(inst.gate, Gate::Measure | Gate::Reset | Gate::Barrier) {
                continue;
            }
            self.apply_gate(&inst.gate, &inst.qubits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measuring_zero_state_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sim = StabilizerSimulator::new(3);
        for q in 0..3 {
            assert!(!sim.measure(q, &mut rng));
        }
    }

    #[test]
    fn x_gate_flips_measurement() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sim = StabilizerSimulator::new(2);
        sim.x_gate(1);
        assert!(!sim.measure(0, &mut rng));
        assert!(sim.measure(1, &mut rng));
    }

    #[test]
    fn bell_pair_correlations() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut sim = StabilizerSimulator::new(2);
            sim.h(0);
            sim.cx(0, 1);
            let a = sim.measure(0, &mut rng);
            let b = sim.measure(1, &mut rng);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn hadamard_measurement_is_random() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ones = 0;
        for _ in 0..400 {
            let mut sim = StabilizerSimulator::new(1);
            sim.h(0);
            if sim.measure(0, &mut rng) {
                ones += 1;
            }
        }
        assert!((140..260).contains(&ones), "got {ones} ones");
    }

    #[test]
    fn ghz_parity() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut sim = StabilizerSimulator::new(5);
            sim.h(0);
            for q in 1..5 {
                sim.cx(q - 1, q);
            }
            let outcomes: Vec<bool> = (0..5).map(|q| sim.measure(q, &mut rng)).collect();
            assert!(outcomes.iter().all(|&o| o == outcomes[0]));
        }
    }

    #[test]
    fn z_and_s_do_not_affect_computational_measurement_of_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = StabilizerSimulator::new(1);
        sim.z_gate(0);
        sim.s(0);
        sim.sdg(0);
        assert!(!sim.measure(0, &mut rng));
    }

    #[test]
    fn hzh_equals_x() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = StabilizerSimulator::new(1);
        sim.h(0);
        sim.z_gate(0);
        sim.h(0);
        assert!(sim.measure(0, &mut rng));
    }

    #[test]
    fn swap_and_cz_via_apply_gate() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sim = StabilizerSimulator::new(2);
        sim.apply_gate(&Gate::X, &[0]).unwrap();
        sim.apply_gate(&Gate::Swap, &[0, 1]).unwrap();
        assert!(!sim.measure(0, &mut rng));
        assert!(sim.measure(1, &mut rng));

        // CZ sandwiched in Hadamards acts like CX.
        let mut sim = StabilizerSimulator::new(2);
        sim.apply_gate(&Gate::X, &[0]).unwrap();
        sim.apply_gate(&Gate::H, &[1]).unwrap();
        sim.apply_gate(&Gate::CZ, &[0, 1]).unwrap();
        sim.apply_gate(&Gate::H, &[1]).unwrap();
        assert!(sim.measure(1, &mut rng));
    }

    #[test]
    fn clifford_rotations_match_paulis() {
        use std::f64::consts::PI;
        let mut rng = StdRng::seed_from_u64(13);
        // RX(pi) == X up to phase.
        let mut sim = StabilizerSimulator::new(1);
        sim.apply_gate(&Gate::RX(PI), &[0]).unwrap();
        assert!(sim.measure(0, &mut rng));
        // RY(pi) == Y up to phase: also flips |0> to |1>.
        let mut sim = StabilizerSimulator::new(1);
        sim.apply_gate(&Gate::RY(PI), &[0]).unwrap();
        assert!(sim.measure(0, &mut rng));
        // u3(pi, 0, pi) == X.
        let mut sim = StabilizerSimulator::new(1);
        sim.apply_gate(&Gate::U3(PI, 0.0, PI), &[0]).unwrap();
        assert!(sim.measure(0, &mut rng));
        // CP(pi) == CZ.
        let mut sim = StabilizerSimulator::new(2);
        sim.apply_gate(&Gate::X, &[0]).unwrap();
        sim.apply_gate(&Gate::H, &[1]).unwrap();
        sim.apply_gate(&Gate::CP(PI), &[0, 1]).unwrap();
        sim.apply_gate(&Gate::H, &[1]).unwrap();
        assert!(sim.measure(1, &mut rng));
    }

    #[test]
    fn non_clifford_gates_are_rejected() {
        let mut sim = StabilizerSimulator::new(2);
        assert!(matches!(
            sim.apply_gate(&Gate::T, &[0]),
            Err(SimulatorError::NotClifford { .. })
        ));
        assert!(sim.apply_gate(&Gate::RZ(0.3), &[0]).is_err());
        assert!(sim.apply_gate(&Gate::H, &[5]).is_err());
        assert!(sim.apply_gate(&Gate::Measure, &[0]).is_err());
    }

    #[test]
    fn apply_circuit_runs_clifford_library_circuits() {
        let mut rng = StdRng::seed_from_u64(17);
        let circuit = qrio_circuit::library::bernstein_vazirani(10, 0b1100110011).unwrap();
        let mut sim = StabilizerSimulator::new(10);
        sim.apply_circuit(&circuit).unwrap();
        let mut outcome = 0u64;
        for q in 0..10 {
            if sim.measure(q, &mut rng) {
                outcome |= 1 << q;
            }
        }
        assert_eq!(outcome, 0b1100110011);
    }

    #[test]
    fn tableaus_spanning_multiple_words_work() {
        // 70 qubits crosses the 64-bit word boundary; GHZ correlations must
        // hold across it.
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..5 {
            let mut sim = StabilizerSimulator::new(70);
            sim.h(0);
            for q in 1..70 {
                sim.cx(q - 1, q);
            }
            let first = sim.measure(0, &mut rng);
            assert_eq!(sim.measure(63, &mut rng), first);
            assert_eq!(sim.measure(64, &mut rng), first);
            assert_eq!(sim.measure(69, &mut rng), first);
        }
    }
}
