//! Stabilizer (Clifford) simulation via the Aaronson–Gottesman CHP tableau.
//!
//! The Gottesman–Knill theorem lets circuits composed solely of Clifford
//! operations be simulated in polynomial time, which is the foundation of the
//! paper's *Clifford canary* fidelity-ranking strategy (§3.4.1): the canary is
//! classically simulable at any qubit count, yet retains the two-qubit gate
//! structure of the user's circuit.
//!
//! The implementation follows Aaronson & Gottesman, *Improved simulation of
//! stabilizer circuits* (2004): a `(2n + 1) × (2n + 1)` binary tableau whose
//! first `n` rows are destabilizers and next `n` rows are stabilizers, with a
//! scratch row used during measurement.

use rand::Rng;

use qrio_circuit::{Circuit, Gate};

use crate::error::SimulatorError;

/// CHP stabilizer tableau over `n` qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizerSimulator {
    n: usize,
    /// x[i][j]: X component of row i on qubit j.
    x: Vec<Vec<bool>>,
    /// z[i][j]: Z component of row i on qubit j.
    z: Vec<Vec<bool>>,
    /// r[i]: phase bit of row i (true = -1).
    r: Vec<bool>,
}

impl StabilizerSimulator {
    /// The |0…0⟩ stabilizer state over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        let n = num_qubits;
        let rows = 2 * n + 1;
        let mut x = vec![vec![false; n]; rows];
        let mut z = vec![vec![false; n]; rows];
        let r = vec![false; rows];
        for i in 0..n {
            x[i][i] = true; // destabilizers X_i
            z[n + i][i] = true; // stabilizers Z_i
        }
        StabilizerSimulator { n, x, z, r }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Apply a Hadamard gate to qubit `a`.
    pub fn h(&mut self, a: usize) {
        for i in 0..2 * self.n {
            let (xi, zi) = (self.x[i][a], self.z[i][a]);
            self.r[i] ^= xi && zi;
            self.x[i][a] = zi;
            self.z[i][a] = xi;
        }
    }

    /// Apply an S (phase) gate to qubit `a`.
    pub fn s(&mut self, a: usize) {
        for i in 0..2 * self.n {
            let (xi, zi) = (self.x[i][a], self.z[i][a]);
            self.r[i] ^= xi && zi;
            self.z[i][a] = zi ^ xi;
        }
    }

    /// Apply a CNOT with control `a` and target `b`.
    pub fn cx(&mut self, a: usize, b: usize) {
        for i in 0..2 * self.n {
            let (xia, zia) = (self.x[i][a], self.z[i][a]);
            let (xib, zib) = (self.x[i][b], self.z[i][b]);
            self.r[i] ^= xia && zib && (xib ^ zia ^ true);
            self.x[i][b] = xib ^ xia;
            self.z[i][a] = zia ^ zib;
        }
    }

    /// Apply a Pauli-X gate to qubit `a`.
    pub fn x_gate(&mut self, a: usize) {
        // X = H Z H, but the direct phase update is cheaper: X anticommutes with Z.
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[i][a];
        }
    }

    /// Apply a Pauli-Z gate to qubit `a`.
    pub fn z_gate(&mut self, a: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][a];
        }
    }

    /// Apply a Pauli-Y gate to qubit `a`.
    pub fn y_gate(&mut self, a: usize) {
        // Y ∝ Z·X: anticommutes with both X and Z components individually.
        self.z_gate(a);
        self.x_gate(a);
    }

    fn sdg(&mut self, a: usize) {
        self.s(a);
        self.s(a);
        self.s(a);
    }

    /// Rowsum as defined by Aaronson–Gottesman: row `h` *= row `i`.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase: i32 = i32::from(self.r[h]) * 2 + i32::from(self.r[i]) * 2;
        for j in 0..self.n {
            phase += g(self.x[i][j], self.z[i][j], self.x[h][j], self.z[h][j]);
        }
        self.r[h] = phase.rem_euclid(4) == 2;
        for j in 0..self.n {
            self.x[h][j] ^= self.x[i][j];
            self.z[h][j] ^= self.z[i][j];
        }
    }

    /// Measure qubit `a` in the computational basis, collapsing the state.
    pub fn measure<R: Rng + ?Sized>(&mut self, a: usize, rng: &mut R) -> bool {
        let n = self.n;
        // Is the outcome random? Look for a stabilizer with an X component on a.
        let mut p = None;
        for i in n..2 * n {
            if self.x[i][a] {
                p = Some(i);
                break;
            }
        }
        if let Some(p) = p {
            // Random outcome.
            for i in 0..2 * n {
                if i != p && self.x[i][a] {
                    self.rowsum(i, p);
                }
            }
            // Destabilizer row p-n becomes the old stabilizer row p.
            self.x[p - n] = self.x[p].clone();
            self.z[p - n] = self.z[p].clone();
            self.r[p - n] = self.r[p];
            // New stabilizer row p = ±Z_a with random sign.
            for j in 0..n {
                self.x[p][j] = false;
                self.z[p][j] = false;
            }
            self.z[p][a] = true;
            let outcome = rng.gen_bool(0.5);
            self.r[p] = outcome;
            outcome
        } else {
            // Deterministic outcome: compute it in the scratch row 2n.
            let scratch = 2 * n;
            for j in 0..n {
                self.x[scratch][j] = false;
                self.z[scratch][j] = false;
            }
            self.r[scratch] = false;
            for i in 0..n {
                if self.x[i][a] {
                    self.rowsum(scratch, i + n);
                }
            }
            self.r[scratch]
        }
    }

    /// Apply one Clifford gate by decomposing it into {H, S, CX, X, Y, Z}.
    ///
    /// # Errors
    ///
    /// Returns [`SimulatorError::NotClifford`] if the gate is not a Clifford
    /// operation, and range errors for bad qubit indices.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimulatorError> {
        for &q in qubits {
            if q >= self.n {
                return Err(SimulatorError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.n,
                });
            }
        }
        if !gate.is_clifford() {
            return Err(SimulatorError::NotClifford {
                gate: gate.name().to_string(),
            });
        }
        match *gate {
            Gate::I | Gate::Barrier => {}
            Gate::H => self.h(qubits[0]),
            Gate::S => self.s(qubits[0]),
            Gate::Sdg => self.sdg(qubits[0]),
            Gate::X => self.x_gate(qubits[0]),
            Gate::Y => self.y_gate(qubits[0]),
            Gate::Z => self.z_gate(qubits[0]),
            Gate::SX => {
                // sqrt(X) = H S H up to global phase.
                self.h(qubits[0]);
                self.s(qubits[0]);
                self.h(qubits[0]);
            }
            Gate::CX => self.cx(qubits[0], qubits[1]),
            Gate::CZ => {
                self.h(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.h(qubits[1]);
            }
            Gate::CY => {
                self.sdg(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.s(qubits[1]);
            }
            Gate::Swap => {
                self.cx(qubits[0], qubits[1]);
                self.cx(qubits[1], qubits[0]);
                self.cx(qubits[0], qubits[1]);
            }
            Gate::RZ(theta) | Gate::U1(theta) => self.apply_quarter_z(qubits[0], theta),
            Gate::RX(theta) => {
                self.h(qubits[0]);
                self.apply_quarter_z(qubits[0], theta);
                self.h(qubits[0]);
            }
            Gate::RY(theta) => {
                // RY(θ) = S · RX(θ) · S†
                self.sdg(qubits[0]);
                self.h(qubits[0]);
                self.apply_quarter_z(qubits[0], theta);
                self.h(qubits[0]);
                self.s(qubits[0]);
            }
            Gate::U2(phi, lambda) => {
                self.apply_u3(qubits[0], std::f64::consts::FRAC_PI_2, phi, lambda);
            }
            Gate::U3(theta, phi, lambda) => self.apply_u3(qubits[0], theta, phi, lambda),
            Gate::CP(theta) | Gate::CRZ(theta) => {
                // At Clifford angles (multiples of π) both reduce to CZ or identity
                // up to single-qubit phases that do not affect measurement outcomes.
                let k = (theta / std::f64::consts::PI).round() as i64;
                if k.rem_euclid(2) == 1 {
                    self.h(qubits[1]);
                    self.cx(qubits[0], qubits[1]);
                    self.h(qubits[1]);
                }
                if matches!(gate, Gate::CRZ(_)) {
                    // CRZ(kπ) also applies RZ(-kπ/2) on the control (global-phase free).
                    self.apply_quarter_z(qubits[0], -theta / 2.0);
                }
            }
            Gate::Measure | Gate::Reset => {
                return Err(SimulatorError::Unsupported(
                    "measure/reset must be handled by the executor, not applied as a unitary"
                        .into(),
                ));
            }
            ref g => {
                return Err(SimulatorError::NotClifford {
                    gate: g.name().to_string(),
                })
            }
        }
        Ok(())
    }

    /// Apply RZ at a multiple of π/2 as a power of S.
    fn apply_quarter_z(&mut self, q: usize, theta: f64) {
        let k = (theta / std::f64::consts::FRAC_PI_2).round() as i64;
        match k.rem_euclid(4) {
            1 => self.s(q),
            2 => self.z_gate(q),
            3 => self.sdg(q),
            _ => {}
        }
    }

    /// Apply a Clifford-angle u3 via the ZYZ decomposition u3 = RZ(φ)·RY(θ)·RZ(λ).
    fn apply_u3(&mut self, q: usize, theta: f64, phi: f64, lambda: f64) {
        self.apply_quarter_z(q, lambda);
        self.sdg(q);
        self.h(q);
        self.apply_quarter_z(q, theta);
        self.h(q);
        self.s(q);
        self.apply_quarter_z(q, phi);
    }

    /// Apply every unitary instruction of a Clifford circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit contains non-Clifford gates or exceeds
    /// the register size.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimulatorError> {
        if circuit.num_qubits() > self.n {
            return Err(SimulatorError::QubitOutOfRange {
                qubit: circuit.num_qubits().saturating_sub(1),
                num_qubits: self.n,
            });
        }
        for inst in circuit.instructions() {
            if matches!(inst.gate, Gate::Measure | Gate::Reset | Gate::Barrier) {
                continue;
            }
            self.apply_gate(&inst.gate, &inst.qubits)?;
        }
        Ok(())
    }
}

/// The phase function `g` of Aaronson–Gottesman, returning the exponent of `i`
/// contributed when multiplying the Pauli `(x1, z1)` by `(x2, z2)`.
fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
    match (x1, z1) {
        (false, false) => 0,
        (true, true) => i32::from(z2) - i32::from(x2),
        (true, false) => i32::from(z2) * (2 * i32::from(x2) - 1),
        (false, true) => i32::from(x2) * (1 - 2 * i32::from(z2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measuring_zero_state_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sim = StabilizerSimulator::new(3);
        for q in 0..3 {
            assert!(!sim.measure(q, &mut rng));
        }
    }

    #[test]
    fn x_gate_flips_measurement() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sim = StabilizerSimulator::new(2);
        sim.x_gate(1);
        assert!(!sim.measure(0, &mut rng));
        assert!(sim.measure(1, &mut rng));
    }

    #[test]
    fn bell_pair_correlations() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut sim = StabilizerSimulator::new(2);
            sim.h(0);
            sim.cx(0, 1);
            let a = sim.measure(0, &mut rng);
            let b = sim.measure(1, &mut rng);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn hadamard_measurement_is_random() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ones = 0;
        for _ in 0..400 {
            let mut sim = StabilizerSimulator::new(1);
            sim.h(0);
            if sim.measure(0, &mut rng) {
                ones += 1;
            }
        }
        assert!((140..260).contains(&ones), "got {ones} ones");
    }

    #[test]
    fn ghz_parity() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut sim = StabilizerSimulator::new(5);
            sim.h(0);
            for q in 1..5 {
                sim.cx(q - 1, q);
            }
            let outcomes: Vec<bool> = (0..5).map(|q| sim.measure(q, &mut rng)).collect();
            assert!(outcomes.iter().all(|&o| o == outcomes[0]));
        }
    }

    #[test]
    fn z_and_s_do_not_affect_computational_measurement_of_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = StabilizerSimulator::new(1);
        sim.z_gate(0);
        sim.s(0);
        sim.sdg(0);
        assert!(!sim.measure(0, &mut rng));
    }

    #[test]
    fn hzh_equals_x() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = StabilizerSimulator::new(1);
        sim.h(0);
        sim.z_gate(0);
        sim.h(0);
        assert!(sim.measure(0, &mut rng));
    }

    #[test]
    fn swap_and_cz_via_apply_gate() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sim = StabilizerSimulator::new(2);
        sim.apply_gate(&Gate::X, &[0]).unwrap();
        sim.apply_gate(&Gate::Swap, &[0, 1]).unwrap();
        assert!(!sim.measure(0, &mut rng));
        assert!(sim.measure(1, &mut rng));

        // CZ sandwiched in Hadamards acts like CX.
        let mut sim = StabilizerSimulator::new(2);
        sim.apply_gate(&Gate::X, &[0]).unwrap();
        sim.apply_gate(&Gate::H, &[1]).unwrap();
        sim.apply_gate(&Gate::CZ, &[0, 1]).unwrap();
        sim.apply_gate(&Gate::H, &[1]).unwrap();
        assert!(sim.measure(1, &mut rng));
    }

    #[test]
    fn clifford_rotations_match_paulis() {
        use std::f64::consts::PI;
        let mut rng = StdRng::seed_from_u64(13);
        // RX(pi) == X up to phase.
        let mut sim = StabilizerSimulator::new(1);
        sim.apply_gate(&Gate::RX(PI), &[0]).unwrap();
        assert!(sim.measure(0, &mut rng));
        // RY(pi) == Y up to phase: also flips |0> to |1>.
        let mut sim = StabilizerSimulator::new(1);
        sim.apply_gate(&Gate::RY(PI), &[0]).unwrap();
        assert!(sim.measure(0, &mut rng));
        // u3(pi, 0, pi) == X.
        let mut sim = StabilizerSimulator::new(1);
        sim.apply_gate(&Gate::U3(PI, 0.0, PI), &[0]).unwrap();
        assert!(sim.measure(0, &mut rng));
        // CP(pi) == CZ.
        let mut sim = StabilizerSimulator::new(2);
        sim.apply_gate(&Gate::X, &[0]).unwrap();
        sim.apply_gate(&Gate::H, &[1]).unwrap();
        sim.apply_gate(&Gate::CP(PI), &[0, 1]).unwrap();
        sim.apply_gate(&Gate::H, &[1]).unwrap();
        assert!(sim.measure(1, &mut rng));
    }

    #[test]
    fn non_clifford_gates_are_rejected() {
        let mut sim = StabilizerSimulator::new(2);
        assert!(matches!(
            sim.apply_gate(&Gate::T, &[0]),
            Err(SimulatorError::NotClifford { .. })
        ));
        assert!(sim.apply_gate(&Gate::RZ(0.3), &[0]).is_err());
        assert!(sim.apply_gate(&Gate::H, &[5]).is_err());
        assert!(sim.apply_gate(&Gate::Measure, &[0]).is_err());
    }

    #[test]
    fn apply_circuit_runs_clifford_library_circuits() {
        let mut rng = StdRng::seed_from_u64(17);
        let circuit = qrio_circuit::library::bernstein_vazirani(10, 0b1100110011).unwrap();
        let mut sim = StabilizerSimulator::new(10);
        sim.apply_circuit(&circuit).unwrap();
        let mut outcome = 0u64;
        for q in 0..10 {
            if sim.measure(q, &mut rng) {
                outcome |= 1 << q;
            }
        }
        assert_eq!(outcome, 0b1100110011);
    }
}
