//! # qrio-sim
//!
//! Quantum-device simulation for the QRIO quantum-cloud orchestrator
//! (reproduction of *Empowering the Quantum Cloud User with QRIO*, IISWC 2024).
//!
//! QRIO's evaluation runs entirely against simulated devices, and its
//! fidelity-ranking strategy depends on scalable classical simulation of
//! Clifford canary circuits. This crate provides both simulation engines and
//! the noise machinery that turns a backend's calibration data into an
//! executable error model:
//!
//! * [`StateVector`] — dense, exact simulation of arbitrary circuits (the
//!   Oracle baseline of §4.3), limited to a modest qubit count.
//! * [`StabilizerSimulator`] — Aaronson–Gottesman CHP tableau simulation of
//!   Clifford circuits (the Gottesman–Knill path behind Clifford canaries).
//! * [`NoiseModel`] — per-qubit/per-edge depolarizing Pauli errors plus
//!   readout flips, derived from a [`qrio_backend::Backend`].
//! * [`executor`] — shot execution with automatic engine selection,
//!   ideal-terminal-measurement fast paths, Pauli-frame batched shots for
//!   noisy Clifford circuits ([`FramePlan`]), deterministic sharded parallel
//!   execution ([`ParallelConfig`]), and the [`executor::fidelity_on_backend`]
//!   helper that compares noisy output to the noise-free reference with
//!   Hellinger fidelity.
//! * [`Counts`] — outcome histograms and distribution metrics.
//!
//! # Examples
//!
//! ```
//! use qrio_backend::{topology, Backend};
//! use qrio_circuit::library;
//! use qrio_sim::executor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = library::ghz(4)?;
//! let backend = Backend::uniform("demo", topology::line(4), 0.01, 0.05);
//! let fidelity = executor::fidelity_on_backend(&circuit, &backend, 512, 7)?;
//! assert!(fidelity > 0.0 && fidelity <= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod counts;
mod error;
pub mod executor;
pub mod frame;
mod noise;
mod stabilizer;
mod statevector;

pub use complex::Complex64;
pub use counts::Counts;
pub use error::SimulatorError;
pub use executor::{
    run_ideal, run_ideal_parallel, run_on_backend, run_on_backend_parallel, run_with_noise,
    run_with_noise_parallel, run_with_noise_path, Engine, ExecutionPath, ParallelConfig,
    DEFAULT_SHOTS, SEED_STREAM_STRIDE,
};
pub use frame::FramePlan;
pub use noise::{NoiseModel, PauliError};
pub use stabilizer::StabilizerSimulator;
pub use statevector::{
    fuse_circuit, single_qubit_matrix, u3_matrix, CumulativeDistribution, FusedOp, StateVector,
    MAX_STATEVECTOR_QUBITS,
};
