//! A minimal complex-number type for the statevector simulator.
//!
//! The workspace deliberately avoids pulling in a numerics crate for a single
//! 2×2 / 4×4 linear-algebra use case; `Complex64` implements exactly the
//! operations the simulator needs.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Construct from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex64 = Complex64::new(0.0, 0.0);
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64::new(1.0, 0.0);
    /// The imaginary unit.
    pub const I: Complex64 = Complex64::new(0.0, 1.0);

    /// Construct from polar form `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Whether the value is within `tol` of another.
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn polar_and_magnitude() {
        let z = Complex64::cis(PI / 2.0);
        assert!(z.approx_eq(Complex64::I, 1e-12));
        assert!((Complex64::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
        assert!((Complex64::new(3.0, 4.0).norm_sqr() - 25.0).abs() < 1e-12);
        assert_eq!(Complex64::new(1.0, -2.0).conj(), Complex64::new(1.0, 2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert!(Complex64::new(1.0, -1.0).to_string().contains('-'));
        assert!(Complex64::new(1.0, 1.0).to_string().contains('+'));
    }
}
