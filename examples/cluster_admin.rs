//! Vendor / cluster-administrator perspective: define devices with the
//! `backend.spec` text format, watch the event log, cordon and heal nodes, and
//! process a queue of jobs (the multi-job mode the paper lists as future work).
//!
//! Run with: `cargo run --example cluster_admin`

use qrio::{JobRequestBuilder, Qrio, SimJobRunner};
use qrio_backend::{spec, topology, Backend};
use qrio_circuit::library;
use qrio_cluster::framework;
use qrio_scheduler::MetaRankingPlugin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut qrio = Qrio::new();

    // Vendors describe devices as backend.spec files (the paper's backend.py).
    let handwritten_spec = spec::to_spec(&Backend::uniform(
        "lab-device-a",
        topology::heavy_square(9),
        0.01,
        0.06,
    ));
    println!("--- vendor backend.spec for lab-device-a ---\n{handwritten_spec}");
    let device_a = spec::from_spec(&handwritten_spec)?;
    qrio.add_device(device_a)?;
    qrio.add_device(Backend::uniform(
        "lab-device-b",
        topology::grid(3, 3),
        0.02,
        0.1,
    ))?;
    qrio.add_device(Backend::uniform(
        "lab-device-c",
        topology::ring(12),
        0.03,
        0.2,
    ))?;

    // A node fails; Kubernetes-style self-healing restarts it.
    qrio.cluster_mut()
        .node_mut("lab-device-c")
        .unwrap()
        .mark_not_ready();
    let healed = qrio.cluster_mut().heal_nodes();
    println!("healed nodes: {healed:?}");

    // Cordon a node for maintenance: the scheduler will skip it.
    qrio.cluster_mut()
        .node_mut("lab-device-b")
        .unwrap()
        .cordon();

    // Submit a couple of jobs through the normal user path.
    for (i, n) in [4usize, 5].iter().enumerate() {
        let request = JobRequestBuilder::new()
            .with_circuit(&library::ghz(*n)?)
            .job_name(format!("ghz-{i}"))
            .fidelity_target(0.85)
            .shots(256)
            .build()?;
        let outcome = qrio.submit(&request)?;
        println!("job ghz-{i} ran on {}", outcome.decision.node);
    }

    // Drain any remaining pending work with the FIFO queue API.
    let filters = framework::default_filters();
    let meta = qrio.meta().clone();
    let ranking = MetaRankingPlugin::new(&meta);
    let runner = SimJobRunner::new(1);
    let decisions = qrio
        .cluster_mut()
        .process_queue(&filters, &ranking, &runner);
    println!("queue drained: {} additional jobs", decisions.len());

    // Event log: the audit trail of everything that happened.
    println!("\n--- cluster events ---");
    for event in qrio.cluster().events() {
        println!("{:<16} {}", event.kind, event.message);
    }
    Ok(())
}
