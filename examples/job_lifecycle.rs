//! The non-blocking job lifecycle: enqueue a mixed-priority batch, drive the
//! service loop tick by tick, cancel a job mid-flight, and follow everything
//! through the Kubernetes-style watch stream.
//!
//! Run with: `cargo run --example job_lifecycle`

use qrio::{JobRequestBuilder, JobState, Qrio};
use qrio_backend::{topology, Backend};
use qrio_circuit::library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Vendor side: a two-device cloud of unequal quality. ----------------
    let mut qrio = Qrio::new();
    qrio.add_device(Backend::uniform("clean", topology::grid(2, 4), 0.002, 0.01))?;
    qrio.add_device(Backend::uniform("noisy", topology::line(10), 0.05, 0.3))?;

    // --- User side: a batch of jobs with mixed priorities. ------------------
    // Higher priority is admitted first; equal priorities keep FIFO order.
    let mut requests = Vec::new();
    for (name, qubits, priority) in [
        ("nightly-sweep", 4, 0u8),
        ("paper-deadline", 5, 9),
        ("smoke-check", 3, 5),
        ("background-scan", 4, 0),
    ] {
        let circuit = library::ghz(qubits)?;
        requests.push(
            JobRequestBuilder::new()
                .with_circuit(&circuit)
                .job_name(name)
                .fidelity_target(0.85)
                .shots(256)
                .priority(priority)
                .build()?,
        );
    }

    // --- Enqueue: returns immediately, nothing has been scheduled yet. ------
    let ids: Vec<_> = qrio
        .enqueue_all(&requests)
        .into_iter()
        .collect::<Result<_, _>>()?;
    for id in &ids {
        println!("enqueued '{id}' -> {}", qrio.status(id)?);
    }

    // --- Second thoughts: cancel the background scan before it runs. --------
    let background = &ids[3];
    qrio.cancel(background)?;
    println!("cancelled '{background}' -> {}", qrio.status(background)?);

    // --- Service loop: one tick = one admission pass + one job per device. --
    let mut watch_cursor = 0;
    loop {
        let report = qrio.tick();
        println!(
            "tick {}: scheduled {:?}, completed {:?}",
            report.tick,
            report
                .scheduled
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
            report
                .completed
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
        );
        // Follow the watch stream from where we left off, k8s-style.
        for event in qrio.watch(watch_cursor) {
            watch_cursor = event.seq + 1;
            println!(
                "  event #{:>2} t={} {:<15} {:?} -> {:?}{}",
                event.seq,
                event.at,
                event.job.to_string(),
                event.from,
                event.to,
                event
                    .node
                    .as_deref()
                    .map(|n| format!(" on '{n}'"))
                    .unwrap_or_default(),
            );
        }
        if report.is_idle() {
            break;
        }
    }

    // --- Outcomes: typed per-job results, failures and histories. -----------
    for id in &ids {
        match qrio.outcome(id) {
            Ok(outcome) => println!(
                "'{id}': Succeeded on '{}' (fidelity {:.3})",
                outcome.decision.node,
                outcome.achieved_fidelity.unwrap_or(f64::NAN),
            ),
            Err(err) => println!("'{id}': {} ({err})", qrio.status(id)?),
        }
    }

    // The deadline job outranked everything: it was scheduled first.
    let deadline_done = qrio.job_status(&ids[1])?;
    assert_eq!(deadline_done.state, JobState::Succeeded);
    let first_scheduled = qrio
        .watch(0)
        .iter()
        .find(|e| e.to == JobState::Scheduled)
        .expect("something was scheduled");
    assert_eq!(first_scheduled.job, ids[1], "priority 9 admits first");
    assert_eq!(qrio.status(background)?, JobState::Cancelled);
    println!("\nfull transition history of '{}':", ids[1]);
    for (at, state) in &deadline_done.history {
        println!("  t={at} {state}");
    }
    Ok(())
}
