//! Topology-requirement based resource allocation (use case 3 of the paper):
//! the user draws the interaction topology they want and QRIO selects the
//! device whose coupling map matches it best.
//!
//! Run with: `cargo run --example topology_workflow`

use qrio::{JobRequestBuilder, Qrio, TopologyDesigner};
use qrio_backend::{topology, Backend};
use qrio_circuit::library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three 10-qubit devices that differ only in topology (the Fig. 9 setup).
    let mut qrio = Qrio::new();
    qrio.add_device(Backend::uniform(
        "device-1-tree",
        topology::binary_tree(10),
        0.01,
        0.05,
    ))?;
    qrio.add_device(Backend::uniform(
        "device-2-ring",
        topology::ring(10),
        0.01,
        0.05,
    ))?;
    qrio.add_device(Backend::uniform(
        "device-3-line",
        topology::line(10),
        0.01,
        0.05,
    ))?;

    // The user draws a tree-like topology on the canvas.
    let mut designer = TopologyDesigner::new(10);
    for (a, b) in topology::binary_tree(10).edges() {
        designer.connect(a, b)?;
    }
    println!(
        "user drew {} edges over {} qubits",
        designer.edges().len(),
        designer.num_qubits()
    );

    // The job itself is a GHZ-10 circuit; the topology drives device choice.
    let request = JobRequestBuilder::new()
        .with_circuit(&library::ghz(10)?)
        .job_name("topology-demo")
        .topology(&designer)
        .shots(512)
        .build()?;

    let outcome = qrio.submit(&request)?;
    println!("QRIO selected: {}", outcome.decision.node);
    for (device, score) in &outcome.decision.candidates {
        println!("  {device:<16} topology score {score:.3}");
    }
    assert_eq!(outcome.decision.node, "device-1-tree");
    println!("\nthe tree-shaped device wins, as in Fig. 9 of the paper");
    Ok(())
}
