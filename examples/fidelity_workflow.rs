//! Fidelity-requirement based resource allocation (use case 2 of the paper):
//! schedule the §4.3 benchmark circuits over a realistic fleet and compare the
//! Clifford-canary choice against the oracle, random and fleet statistics.
//!
//! Run with: `cargo run --release --example fidelity_workflow`

use qrio::experiments::{fig7_for_circuit, paper_benchmark_circuits, ExperimentConfig};
use qrio_backend::fleet::{generate_fleet, FleetConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced Table-2 style fleet (9 devices) keeps this example fast; swap
    // in `qrio_backend::fleet::paper_fleet()?` for the full 100-device fleet.
    let fleet = generate_fleet(&FleetConfig::small(), 7)?;
    println!("fleet of {} simulated devices", fleet.len());

    let config = ExperimentConfig {
        shots: 192,
        seed: 21,
        repetitions: 5,
    };
    println!(
        "{:<8} {:>8} {:>10} {:>8} {:>9} {:>8}   chosen device",
        "circuit", "oracle", "clifford", "random", "average", "median"
    );
    for (name, circuit) in paper_benchmark_circuits()? {
        let row = fig7_for_circuit(&name, &circuit, &fleet, &config)?;
        println!(
            "{:<8} {:>8.3} {:>10.3} {:>8.3} {:>9.3} {:>8.3}   {}",
            row.circuit,
            row.oracle,
            row.clifford,
            row.random,
            row.average,
            row.median,
            row.clifford_device
        );
    }
    println!("\nthe table reports achieved fidelity (higher is better); QRIO's Clifford choice should track the oracle");
    Ok(())
}
