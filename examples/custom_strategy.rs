//! User-defined ranking strategy: the whole point of the open
//! `RankingStrategy` interface is that a cloud *user* (or operator) can ship
//! their own device-selection policy without touching QRIO itself.
//!
//! This example registers a "fewest two-qubit gates after transpile" strategy:
//! every candidate device transpiles the user's circuit and is scored by the
//! number of two-qubit gates the routed circuit ends up with — a proxy for
//! accumulated two-qubit error that directly rewards devices whose coupling
//! map matches the circuit's interaction structure (fewer SWAP insertions).
//! The job then flows through the exact same `JobRequest` → scheduler →
//! decision path as the built-in strategies.
//!
//! Run with: `cargo run --example custom_strategy`

use std::sync::Arc;

use qrio::{JobRequestBuilder, Qrio};
use qrio_backend::{topology, Backend};
use qrio_circuit::{library, Circuit};
use qrio_cluster::{StrategyParams, StrategySpec};
use qrio_meta::{JobContext, MetaError, RankingStrategy, Score};

/// Score a device by how many two-qubit gates the circuit needs once
/// transpiled to it (layout + routing + basis translation + optimization).
#[derive(Debug)]
struct FewestTwoQubitGates;

impl RankingStrategy for FewestTwoQubitGates {
    fn name(&self) -> &str {
        "fewest-2q-gates"
    }

    fn validate(
        &self,
        _params: &StrategyParams,
        circuit: Option<&Circuit>,
    ) -> Result<(), MetaError> {
        circuit.map(|_| ()).ok_or_else(|| {
            MetaError::InvalidMetadata("fewest-2q-gates requires a circuit upload".into())
        })
    }

    fn score(&self, job: &JobContext<'_>, backend: &Backend) -> Result<Score, MetaError> {
        let circuit = job
            .circuit
            .expect("validated at upload: a circuit is present");
        let transpiled = qrio_transpiler::transpile(circuit, backend)?;
        let two_qubit_gates = transpiled.circuit.two_qubit_gate_count();
        Ok(Score::new(backend.name(), two_qubit_gates as f64)
            .with_detail("swaps_inserted", transpiled.swaps_inserted as f64))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The two-device fleet: a ring and a line with identical calibration. A
    // GHZ-8 chain maps SWAP-free onto the line-like structure of the ring too,
    // so we use a circuit whose interaction graph is a ring: the ring device
    // hosts it natively, the line device must route the closing edge.
    let mut qrio = Qrio::new();
    qrio.add_device(Backend::uniform("ring-dev", topology::ring(8), 0.01, 0.05))?;
    qrio.add_device(Backend::uniform("line-dev", topology::line(8), 0.01, 0.05))?;

    // Register the user-defined strategy with the meta server's registry.
    qrio.register_strategy(Arc::new(FewestTwoQubitGates))?;
    println!(
        "registered strategies: {:?}",
        qrio.meta().registry().names()
    );

    // A circuit whose interaction graph is the 8-ring (one CNOT per edge).
    let ring_circuit = library::topology_circuit(8, &topology::ring(8).edges())?;

    // Select the custom strategy by name — the builder needs nothing special.
    let request = JobRequestBuilder::new()
        .with_circuit(&ring_circuit)
        .job_name("ring-chain")
        .strategy(StrategySpec::new("fewest-2q-gates"))
        .shots(256)
        .build()?;

    let outcome = qrio.submit(&request)?;
    println!("\ncandidates (score = two-qubit gates after transpile):");
    for (device, score) in &outcome.decision.candidates {
        println!("  {device:<10} {score:>5.0}");
    }
    println!("selected: {}", outcome.decision.node);
    assert_eq!(
        outcome.decision.node, "ring-dev",
        "the ring device hosts the ring circuit without SWAP overhead"
    );
    println!("\nthe user-defined policy drove the full pipeline end-to-end");
    Ok(())
}
