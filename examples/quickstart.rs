//! Quickstart: stand up a small quantum cloud, submit a Bernstein–Vazirani
//! job with a fidelity requirement, and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use qrio::{JobRequestBuilder, Qrio};
use qrio_backend::{topology, Backend};
use qrio_circuit::library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Vendor side: register three devices with different quality. --------
    let mut qrio = Qrio::new();
    qrio.add_device(Backend::uniform(
        "ibm-like-clean",
        topology::grid(2, 4),
        0.002,
        0.01,
    ))?;
    qrio.add_device(Backend::uniform("ring-mid", topology::ring(10), 0.02, 0.12))?;
    qrio.add_device(Backend::uniform(
        "line-noisy",
        topology::line(12),
        0.05,
        0.35,
    ))?;
    println!("cluster has {} nodes", qrio.cluster().node_count());

    // --- User side: pick a circuit and fill in the submission form. ---------
    let secret = 0b10110;
    let circuit = library::bernstein_vazirani(5, secret)?;
    let request = JobRequestBuilder::new()
        .with_circuit(&circuit)
        .job_name("bv-quickstart")
        .resources(500, 512)
        .fidelity_target(0.90)
        .shots(1024)
        .build()?;

    // --- Submit: QRIO filters, ranks via the meta server, schedules, runs. --
    let outcome = qrio.submit(&request)?;
    println!(
        "scheduled on '{}' (score {:.3})",
        outcome.decision.node, outcome.decision.score
    );
    println!("candidates considered:");
    for (device, score) in &outcome.decision.candidates {
        println!("  {device:<18} score {score:.3}");
    }
    if let Some(fidelity) = outcome.achieved_fidelity {
        println!("achieved fidelity: {fidelity:.4}");
    }
    let expected = format!("{secret:05b}");
    println!("top outcomes (expecting {expected}):");
    let mut counts = outcome.counts.clone();
    counts.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (bits, count) in counts.iter().take(5) {
        println!("  {bits}: {count}");
    }

    // --- Logs, as the visualizer's "check logs" button would show them. -----
    println!("\njob logs:");
    for line in qrio.job_logs("bv-quickstart")? {
        println!("  {line}");
    }
    Ok(())
}
